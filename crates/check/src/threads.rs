//! Bench-thread-containment rule: `fblas-bench` may only spawn threads
//! through the shared worker pool.
//!
//! The observatory's determinism argument (DESIGN.md §10) rests on every
//! parallel execution path going through `crates/bench/src/pool.rs`: the
//! pool's ordered reducer is what keeps `BENCH_<n>.json` byte-identical
//! across worker counts, and its `Send`-bounded job type is the
//! compile-time audit of shared state. A bench binary that called
//! `std::thread::spawn` on its own would bypass both. This rule scans the
//! bench crate's sources (comments and strings stripped, so prose about
//! threads is fine) and reports an [`Severity::Error`] for any
//! thread-creation call outside the allowed pool module; the pool's own
//! uses are reported as [`Severity::Info`] so the sweep shows the rule is
//! looking at live code.

use std::io;
use std::path::Path;

use crate::drc::{Diagnostic, Report, Severity};
use crate::source::{strip, walk_rs_files};

pub use crate::source::repo_root;

/// The one module allowed to create threads, relative to the repo root.
pub const ALLOWED_THREAD_SITES: &[&str] = &["crates/bench/src/pool.rs"];

/// The source tree the rule polices, relative to the repo root.
pub const BENCH_SRC: &str = "crates/bench/src";

/// Thread-creation constructs the scanner looks for. Substring match on
/// comment-/string-stripped source: `thread::spawn(`, `thread::scope(`
/// and `thread::Builder` cover `std::thread` whatever the import style
/// (`std::thread::spawn`, `thread::spawn` after `use std::thread`).
const THREAD_PATTERNS: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];

/// One thread-creation site found by the scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSite {
    /// Repo-root-relative path of the file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which pattern matched.
    pub pattern: &'static str,
    /// Whether the file is on the allowlist.
    pub allowed: bool,
}

/// Scan one source file (already labelled repo-relative) for
/// thread-creation constructs.
pub fn scan_source(file_label: &str, source: &str) -> Vec<ThreadSite> {
    let allowed = ALLOWED_THREAD_SITES.contains(&file_label);
    let stripped = strip(source);
    let mut sites = Vec::new();
    for (i, line) in stripped.lines().enumerate() {
        // Whitespace-insensitive: `thread :: spawn` still matches.
        let squeezed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        for pattern in THREAD_PATTERNS {
            if squeezed.contains(pattern) {
                sites.push(ThreadSite {
                    file: file_label.to_string(),
                    line: i + 1,
                    pattern,
                    allowed,
                });
            }
        }
    }
    sites
}

/// Scan the whole bench source tree under `repo_root`.
pub fn scan_bench_tree(repo_root: &Path) -> io::Result<Vec<ThreadSite>> {
    let root = repo_root.join(BENCH_SRC);
    if !root.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("bench source tree {} not found", root.display()),
        ));
    }
    let mut sites = Vec::new();
    for (label, source) in walk_rs_files(&root, repo_root)? {
        sites.extend(scan_source(&label, &source));
    }
    Ok(sites)
}

/// Turn scanned sites into rule diagnostics.
pub fn diagnostics(sites: &[ThreadSite]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for site in sites {
        if site.allowed {
            diags.push(Diagnostic {
                rule_id: "bench-thread-containment",
                severity: Severity::Info,
                message: format!(
                    "{}:{}: `{}` inside the shared pool (allowed site)",
                    site.file, site.line, site.pattern
                ),
                quantities: vec![],
            });
        } else {
            diags.push(Diagnostic {
                rule_id: "bench-thread-containment",
                severity: Severity::Error,
                message: format!(
                    "{}:{}: `{}` outside the shared worker pool — bench code must \
                     schedule work through crates/bench/src/pool.rs so the ordered \
                     reducer keeps BENCH output deterministic",
                    site.file, site.line, site.pattern
                ),
                quantities: vec![],
            });
        }
    }
    if !sites.iter().any(|s| s.allowed) {
        // The allowlisted file no longer spawning anything would mean the
        // pool was gutted or moved without updating this rule.
        diags.push(Diagnostic {
            rule_id: "bench-thread-containment",
            severity: Severity::Warning,
            message: format!(
                "no thread-creation site found in the allowed module(s) {ALLOWED_THREAD_SITES:?} \
                 — pool moved or rule stale?"
            ),
            quantities: vec![],
        });
    }
    diags
}

/// The containment report over the repository at `repo_root`.
pub fn bench_thread_report(repo_root: &Path) -> io::Result<Report> {
    Ok(Report {
        design: "bench thread containment".to_string(),
        diagnostics: diagnostics(&scan_bench_tree(repo_root)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spawn_is_allowed_foreign_spawn_is_not() {
        let pool = scan_source(
            "crates/bench/src/pool.rs",
            "fn f() { scope.spawn(|| {}); std::thread::scope(|s| {}); }",
        );
        assert!(pool.iter().all(|s| s.allowed), "{pool:?}");
        let rogue = scan_source(
            "crates/bench/src/bin/table9.rs",
            "fn main() { std::thread::spawn(|| {}); }",
        );
        assert_eq!(rogue.len(), 1);
        assert!(!rogue[0].allowed);
        let diags = diagnostics(&rogue);
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("table9.rs:1")));
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "// thread::spawn is forbidden here\nfn f() { let _ = \"thread::spawn\"; }";
        assert!(scan_source("crates/bench/src/bin/x.rs", src).is_empty());
    }

    #[test]
    fn whitespace_and_builder_forms_are_caught() {
        let src = "fn f() { std::thread :: spawn(|| {}); thread::Builder::new(); }";
        let sites = scan_source("crates/bench/src/bin/x.rs", src);
        assert_eq!(sites.len(), 2, "{sites:?}");
    }

    #[test]
    fn missing_allowed_site_is_a_warning() {
        let diags = diagnostics(&[]);
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Warning && d.message.contains("pool moved")));
    }

    /// The live tree must pass: the pool is the only thread site, and it
    /// actually contains one.
    #[test]
    fn shipped_bench_tree_is_contained() {
        let report = bench_thread_report(&repo_root()).expect("scan");
        assert!(
            report.is_feasible(),
            "thread containment errors:\n{}",
            report.render(true)
        );
        assert!(report.count(Severity::Info) > 0, "pool site not seen");
        assert_eq!(report.count(Severity::Warning), 0);
    }
}
