//! Channel-graph analyzer: deadlock-freedom proofs, sound throughput
//! bounds, and composed-bandwidth budgets over [`fblas_sim::Topology`].
//!
//! Every shipped design exports its architecture as a static channel
//! graph (`topology()`); this module proves three properties of that
//! graph without simulating a cycle:
//!
//! 1. **Deadlock freedom** (`graph-deadlock`). For every directed simple
//!    cycle, the elastic storage on the cycle (the sum of its FIFO
//!    depths) must cover the tokens in flight around it: with `L` total
//!    pipeline-delay stages and a minimum initiation interval `ii` among
//!    the cycle's nodes, at most `⌈L / ii⌉` tokens are in flight at once
//!    (at least one — a loop must hold the token it circulates). An
//!    undersized cycle is exactly the §4.2/§5.1 hazard: the column-major
//!    `MvM` needs `⌈n/k⌉ ≥ α` slots in its y-rotation and the linear-array
//!    MM needs `m²/k ≥ α` in its C′-rotation, or tokens re-arrive before
//!    the buffer can accept them and the array wedges. A cycle made only
//!    of [`EdgeKind::Wire`] edges is a combinational loop — always an
//!    error.
//! 2. **Throughput soundness** (`throughput-soundness`). The steady-state
//!    rate is cut twice: the compute cut (total FP issue capacity) and
//!    the I/O cut (input-channel words/cycle × FLOPs unlocked per word).
//!    `min(cuts) × clock` is a *sound upper bound*: no measured BENCH
//!    record may exceed it. [`bench_cross_validation_report`] checks every
//!    simulated record in the committed BENCH set against the bound built
//!    from the very same design parameters; a violation means the static
//!    model is wrong (unsound), a wide gap (`model-divergence`) means the
//!    model has drifted from what the simulator does.
//! 3. **Composed bandwidth** (`composition-bandwidth`). When topologies
//!    are chained ([`Topology::chain`]), the bridged junctions forward
//!    words between kernels; a junction whose outgoing channel capacity
//!    is below its incoming delivery rate under-provisions the link and
//!    silently degrades the composed pipeline below both kernels' own
//!    bounds.

use std::path::Path;

use fblas_core::dot::{DotParams, DotProductDesign};
use fblas_core::level1::{AsumDesign, AxpyDesign, Level1Params, ScalDesign};
use fblas_core::mm::{HierarchicalMm, HierarchicalParams, LinearArrayMm, MmParams};
use fblas_core::mvm::{ColMajorMvm, MvmParams, RowMajorMvm};
use fblas_core::reduce::SingleAdderReducer;
use fblas_fabric::{FabricMm, FabricMvm, MmShardPlan, MvmShardPlan, Orientation};
use fblas_metrics::{RecordKind, RecordSet, RunRecord};
use fblas_sim::{EdgeKind, NodeRole, Topology};
use fblas_sparse::{SpmvDesign, SpmvParams};

use crate::drc::{Diagnostic, Report, Severity};

/// Upper bound on enumerated simple cycles per topology; the shipped
/// graphs have a handful, so hitting this means a malformed export.
const CYCLE_CAP: usize = 10_000;

/// Relative slack for the soundness comparison: a measured rate may
/// exceed the static bound only by floating-point noise.
const SOUNDNESS_EPS: f64 = 1e-9;

/// A measured rate this far below the bound (as a fraction of the bound)
/// earns a `model-divergence` warning: the static model no longer
/// describes what the simulator does.
const DIVERGENCE_GAP: f64 = 0.40;

/// Proof obligations for one directed simple cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleProof {
    /// Node names around the cycle, starting from its smallest node id.
    pub path: Vec<String>,
    /// Total pipeline-delay stages on the cycle.
    pub delay_stages: usize,
    /// Smallest initiation interval among the cycle's nodes.
    pub min_initiation_interval: u64,
    /// Token storage on the cycle (sum of FIFO depths).
    pub capacity: usize,
    /// True if every edge on the cycle is a zero-latency wire.
    pub combinational: bool,
}

impl CycleProof {
    /// Tokens simultaneously in flight around the cycle: `⌈L / ii⌉`,
    /// never less than the one token the loop circulates.
    pub fn required_tokens(&self) -> usize {
        (self.delay_stages as u64)
            .div_ceil(self.min_initiation_interval)
            .max(1) as usize
    }

    /// True if the cycle can always drain: enough storage for its
    /// in-flight tokens and at least one real (non-wire) element.
    pub fn is_deadlock_free(&self) -> bool {
        !self.combinational && self.capacity >= self.required_tokens()
    }
}

/// The two cuts bounding a topology's steady-state rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputBound {
    /// Total FP issue capacity, FLOPs per cycle.
    pub compute_flops_per_cycle: f64,
    /// FLOPs per cycle the input channels can unlock.
    pub io_flops_per_cycle: f64,
    /// Clock the bound is evaluated at, MHz.
    pub clock_mhz: f64,
}

impl ThroughputBound {
    /// The binding cut in MFLOP/s: `min(compute, io) × clock`.
    pub fn mflops(&self) -> f64 {
        self.compute_flops_per_cycle.min(self.io_flops_per_cycle) * self.clock_mhz
    }

    /// Which cut binds, for diagnostics.
    pub fn binding_cut(&self) -> &'static str {
        if self.compute_flops_per_cycle <= self.io_flops_per_cycle {
            "compute"
        } else {
            "io"
        }
    }
}

/// The static throughput bound of `topology` at `clock_mhz`.
pub fn throughput_bound(topology: &Topology, clock_mhz: f64) -> ThroughputBound {
    ThroughputBound {
        compute_flops_per_cycle: topology.compute_flops_per_cycle(),
        io_flops_per_cycle: topology.input_flops_per_cycle(),
        clock_mhz,
    }
}

/// Enumerate every directed simple cycle of `topology` (capped at
/// [`CYCLE_CAP`]) with its proof obligations. Each cycle is reported
/// once, anchored at its smallest node id.
pub fn enumerate_cycles(topology: &Topology) -> Vec<CycleProof> {
    let n = topology.nodes.len();
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ei, e) in topology.edges.iter().enumerate() {
        out_edges[e.from.0].push(ei);
    }
    let mut proofs = Vec::new();
    // Anchored DFS: cycles through nodes < start were already reported
    // when those nodes anchored the search, so each simple cycle is
    // found exactly once.
    for start in 0..n {
        let mut stack: Vec<usize> = vec![start];
        let mut on_path = vec![false; n];
        on_path[start] = true;
        let mut edge_path: Vec<usize> = Vec::new();
        // Iterative DFS with an explicit iterator stack.
        let mut iters: Vec<usize> = vec![0];
        while let Some(&node) = stack.last() {
            let idx = *iters.last().expect("iterator per stack frame");
            if let Some(&ei) = out_edges[node].get(idx) {
                *iters.last_mut().expect("frame") += 1;
                let next = topology.edges[ei].to.0;
                if next == start {
                    edge_path.push(ei);
                    proofs.push(prove(topology, &stack, &edge_path));
                    edge_path.pop();
                    if proofs.len() >= CYCLE_CAP {
                        return proofs;
                    }
                } else if next > start && !on_path[next] {
                    on_path[next] = true;
                    stack.push(next);
                    edge_path.push(ei);
                    iters.push(0);
                }
            } else {
                iters.pop();
                stack.pop();
                on_path[node] = false;
                edge_path.pop();
            }
        }
    }
    proofs
}

/// Build the proof record for one cycle given its node and edge path.
fn prove(topology: &Topology, nodes: &[usize], edges: &[usize]) -> CycleProof {
    let mut delay_stages = 0usize;
    let mut capacity = 0usize;
    let mut combinational = true;
    for &ei in edges {
        match topology.edges[ei].kind {
            EdgeKind::Fifo { depth } => {
                capacity += depth;
                combinational = false;
            }
            EdgeKind::Delay { stages } => {
                delay_stages += stages;
                combinational = false;
            }
            // A channel in a loop would model a memory round-trip; it
            // contributes neither storage nor delay to the proof but is
            // not a zero-latency wire either.
            EdgeKind::Channel { .. } => combinational = false,
            EdgeKind::Wire => {}
        }
    }
    CycleProof {
        path: nodes
            .iter()
            .map(|&i| topology.nodes[i].name.clone())
            .collect(),
        delay_stages,
        min_initiation_interval: nodes
            .iter()
            .map(|&i| topology.nodes[i].initiation_interval)
            .min()
            .unwrap_or(1),
        capacity,
        combinational,
    }
}

/// Run the structural analyses (deadlock freedom, throughput cut,
/// composed bandwidth) over one topology.
pub fn analyze_topology(topology: &Topology, clock_mhz: f64) -> Report {
    let mut diagnostics = Vec::new();
    let cycles = enumerate_cycles(topology);
    if cycles.len() >= CYCLE_CAP {
        diagnostics.push(Diagnostic {
            rule_id: "graph-deadlock",
            severity: Severity::Error,
            message: format!(
                "cycle enumeration hit the {CYCLE_CAP}-cycle cap — the exported graph is \
                 malformed (shipped designs have a handful of feedback loops)"
            ),
            quantities: vec![("cycles", cycles.len() as f64)],
        });
    }
    if cycles.is_empty() {
        diagnostics.push(Diagnostic {
            rule_id: "graph-deadlock",
            severity: Severity::Info,
            message: "feed-forward graph (no cycles): deadlock-free by construction".to_string(),
            quantities: vec![],
        });
    }
    for c in &cycles {
        let loop_name = c.path.join(" -> ");
        if c.combinational {
            diagnostics.push(Diagnostic {
                rule_id: "graph-deadlock",
                severity: Severity::Error,
                message: format!("combinational loop (wire-only cycle): {loop_name}"),
                quantities: vec![],
            });
        } else if c.is_deadlock_free() {
            diagnostics.push(Diagnostic {
                rule_id: "graph-deadlock",
                severity: Severity::Info,
                message: format!(
                    "cycle {loop_name}: capacity {} >= {} tokens in flight",
                    c.capacity,
                    c.required_tokens()
                ),
                quantities: vec![
                    ("capacity", c.capacity as f64),
                    ("required", c.required_tokens() as f64),
                ],
            });
        } else {
            diagnostics.push(Diagnostic {
                rule_id: "graph-deadlock",
                severity: Severity::Error,
                message: format!(
                    "cycle {loop_name}: {} delay stages put {} tokens in flight but the \
                     loop buffers only {} — the array wedges once the FIFO fills \
                     (the §4.2/§5.1 rotation hazard)",
                    c.delay_stages,
                    c.required_tokens(),
                    c.capacity
                ),
                quantities: vec![
                    ("capacity", c.capacity as f64),
                    ("required", c.required_tokens() as f64),
                    ("delay_stages", c.delay_stages as f64),
                ],
            });
        }
    }
    let bound = throughput_bound(topology, clock_mhz);
    diagnostics.push(Diagnostic {
        rule_id: "throughput-bound",
        severity: Severity::Info,
        message: format!(
            "steady-state bound {:.3} MFLOP/s at {} MHz ({} cut binds)",
            bound.mflops(),
            clock_mhz,
            bound.binding_cut()
        ),
        quantities: vec![
            ("compute_flops_per_cycle", bound.compute_flops_per_cycle),
            ("io_flops_per_cycle", bound.io_flops_per_cycle),
            ("bound_mflops", bound.mflops()),
        ],
    });
    diagnostics.extend(composition_diagnostics(topology));
    Report {
        design: topology.name.clone(),
        diagnostics,
    }
}

/// Composed-bandwidth budget: every forwarding junction that bridges two
/// channels must have outgoing capacity covering its incoming delivery
/// rate, or the chained link throttles the composition.
fn composition_diagnostics(topology: &Topology) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (ni, node) in topology.nodes.iter().enumerate() {
        if node.role != NodeRole::Junction || node.flops_per_cycle > 0.0 {
            continue;
        }
        let rate = |filter: &dyn Fn(&fblas_sim::Edge) -> bool| -> f64 {
            topology
                .edges
                .iter()
                .filter(|e| filter(e))
                .filter_map(|e| match e.kind {
                    EdgeKind::Channel {
                        words_per_cycle, ..
                    } => Some(words_per_cycle),
                    _ => None,
                })
                .sum()
        };
        let inbound = rate(&|e| e.to.0 == ni);
        let outbound = rate(&|e| e.from.0 == ni);
        if inbound <= 0.0 || outbound <= 0.0 {
            continue; // not a channel-to-channel bridge
        }
        if outbound < inbound * (1.0 - SOUNDNESS_EPS) {
            diags.push(Diagnostic {
                rule_id: "composition-bandwidth",
                severity: Severity::Error,
                message: format!(
                    "junction {}: outgoing channel capacity {outbound:.3} words/cycle \
                     cannot carry the {inbound:.3} words/cycle delivered to it — the \
                     chained link under-provisions the composition",
                    node.name
                ),
                quantities: vec![("inbound", inbound), ("outbound", outbound)],
            });
        } else {
            diags.push(Diagnostic {
                rule_id: "composition-bandwidth",
                severity: Severity::Info,
                message: format!(
                    "junction {}: link capacity {outbound:.3} covers delivery {inbound:.3} \
                     words/cycle",
                    node.name
                ),
                quantities: vec![("inbound", inbound), ("outbound", outbound)],
            });
        }
    }
    diags
}

/// Every shipped design point's channel graph with the clock (MHz) its
/// BENCH record runs at — the set [`topology_report`] analyzes and the
/// tests prove deadlock-free. Beyond the single-FPGA designs the set
/// carries a chained composition (`scal` feeding `axpy`,
/// `y = β·(α·x) + z`) exercising the composed-bandwidth rule on a
/// bridged link, and four multi-FPGA fabric compositions whose ring and
/// trunk channels the analyzer must prove just like any on-chip FIFO.
pub fn shipped_topologies() -> Vec<(Topology, f64)> {
    let scal = ScalDesign::new(Level1Params::with_k(2)).topology();
    let axpy = AxpyDesign::new(Level1Params::with_k(2)).topology();
    let fused_rate = scal.output_words_per_cycle();
    let fused = scal.chain(
        &axpy,
        "out-stream",
        "x-stream",
        EdgeKind::Channel {
            words_per_cycle: fused_rate,
            flops_per_word: 0.0,
        },
    );
    vec![
        (
            DotProductDesign::standalone(DotParams::table3(), 170.0).topology(),
            170.0,
        ),
        (AxpyDesign::new(Level1Params::with_k(2)).topology(), 170.0),
        (ScalDesign::new(Level1Params::with_k(2)).topology(), 170.0),
        (AsumDesign::new(Level1Params::with_k(4)).topology(), 170.0),
        (
            RowMajorMvm::standalone(MvmParams::table3(), 170.0).topology(),
            170.0,
        ),
        (
            ColMajorMvm::standalone(MvmParams::with_k(4), 170.0).topology(512),
            170.0,
        ),
        (
            RowMajorMvm::standalone(MvmParams::table3(), 164.0).topology(),
            164.0,
        ),
        (LinearArrayMm::new(MmParams::test(4, 16)).topology(), 145.0),
        (
            HierarchicalMm::new(HierarchicalParams::xd1_single_node()).topology(),
            130.0,
        ),
        (SingleAdderReducer::new(14).topology(), 170.0),
        (SpmvDesign::new(SpmvParams::with_k(4)).topology(), 170.0),
        (fused, 170.0),
        // The multi-FPGA fabric compositions: a full six-FPGA chassis,
        // the two-chassis twelve-FPGA §6.4.1 point, and both sharded
        // MvM orientations.
        (
            FabricMm::on_xd1(MmShardPlan {
                n: 384,
                k: 8,
                m: 64,
                shards: 6,
                chassis: 1,
                clock_mhz: 130.0,
            })
            .topology(),
            130.0,
        ),
        (
            FabricMm::on_xd1(MmShardPlan {
                n: 384,
                k: 8,
                m: 64,
                shards: 12,
                chassis: 2,
                clock_mhz: 130.0,
            })
            .topology(),
            130.0,
        ),
        (
            FabricMvm::on_xd1(MvmShardPlan {
                orientation: Orientation::Row,
                n: 384,
                k: 4,
                shards: 4,
                clock_mhz: 164.0,
            })
            .topology(),
            164.0,
        ),
        (
            FabricMvm::on_xd1(MvmShardPlan {
                orientation: Orientation::Col,
                n: 384,
                k: 4,
                shards: 6,
                clock_mhz: 164.0,
            })
            .topology(),
            164.0,
        ),
    ]
}

/// Analyze every shipped topology; one report per design point.
pub fn topology_report() -> Vec<Report> {
    shipped_topologies()
        .iter()
        .map(|(t, clock)| analyze_topology(t, *clock))
        .collect()
}

/// Integer config value from a BENCH record.
fn cfg(record: &RunRecord, key: &str) -> Option<usize> {
    record
        .config
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| usize::try_from(*v).ok())
}

/// Rebuild the channel graph a simulated BENCH record measured, from the
/// record's own kernel name and config. Returns `None` for a kernel the
/// registry does not know (a coverage error for simulated records).
pub fn topology_for_record(record: &RunRecord) -> Option<Topology> {
    let k = cfg(record, "k");
    match record.kernel.as_str() {
        "dot" => {
            Some(DotProductDesign::standalone(DotParams::with_k(k?), record.clock_mhz).topology())
        }
        "axpy" => Some(AxpyDesign::new(Level1Params::with_k(k?)).topology()),
        "scal" => Some(ScalDesign::new(Level1Params::with_k(k?)).topology()),
        "asum" => Some(AsumDesign::new(Level1Params::with_k(k?)).topology()),
        "mvm/row" | "mvm/xd1-l2" => {
            Some(RowMajorMvm::standalone(MvmParams::with_k(k?), record.clock_mhz).topology())
        }
        "mvm/col" => Some(
            ColMajorMvm::standalone(MvmParams::with_k(k?), record.clock_mhz)
                .topology(cfg(record, "n")?),
        ),
        "mm/linear" => Some(LinearArrayMm::new(MmParams::test(k?, cfg(record, "m")?)).topology()),
        "mm/hierarchical" => {
            // The registry knows the one shipped hierarchical point; a
            // record with a different shape is unregistered (None).
            let hp = HierarchicalParams::xd1_single_node();
            (k? == hp.mm.k && cfg(record, "m")? == hp.mm.m && cfg(record, "b")? == hp.b)
                .then(|| HierarchicalMm::new(hp).topology())
        }
        "reduce/single-adder" => Some(SingleAdderReducer::new(cfg(record, "alpha")?).topology()),
        "spmv" => Some(SpmvDesign::new(SpmvParams::with_k(k?)).topology()),
        _ => None,
    }
}

/// Cross-validate every simulated record in a BENCH set against the
/// static throughput bound of the topology rebuilt from the record's own
/// parameters. `measured > bound` is a soundness error (the static model
/// is wrong); a gap wider than [`DIVERGENCE_GAP`] is a model-divergence
/// warning; modeled records carry no measurement and are skipped.
pub fn cross_validate(set: &RecordSet) -> Report {
    let mut diagnostics = Vec::new();
    let mut validated = 0usize;
    for record in &set.records {
        if record.kind != RecordKind::Simulated {
            continue;
        }
        let Some(topology) = topology_for_record(record) else {
            diagnostics.push(Diagnostic {
                rule_id: "throughput-soundness",
                severity: Severity::Error,
                message: format!(
                    "simulated record {} has no registered topology — every measured \
                     kernel must export a channel graph for the bound to be checked",
                    record.key()
                ),
                quantities: vec![],
            });
            continue;
        };
        // Deadlock freedom of the measured configuration rides along:
        // the record was produced by a run, so a failed proof here means
        // the static model (not the hardware) is wrong.
        for c in enumerate_cycles(&topology) {
            if !c.is_deadlock_free() {
                diagnostics.push(Diagnostic {
                    rule_id: "graph-deadlock",
                    severity: Severity::Error,
                    message: format!(
                        "record {}: cycle {} fails the storage proof (capacity {} < {})",
                        record.key(),
                        c.path.join(" -> "),
                        c.capacity,
                        c.required_tokens()
                    ),
                    quantities: vec![],
                });
            }
        }
        let bound = throughput_bound(&topology, record.clock_mhz).mflops();
        let measured = record.sustained_mflops;
        validated += 1;
        if measured > bound * (1.0 + SOUNDNESS_EPS) {
            diagnostics.push(Diagnostic {
                rule_id: "throughput-soundness",
                severity: Severity::Error,
                message: format!(
                    "record {}: measured {measured:.3} MFLOP/s exceeds the static bound \
                     {bound:.3} — the channel-graph model is unsound for this design",
                    record.key()
                ),
                quantities: vec![("measured_mflops", measured), ("bound_mflops", bound)],
            });
        } else if measured < bound * (1.0 - DIVERGENCE_GAP) {
            diagnostics.push(Diagnostic {
                rule_id: "model-divergence",
                severity: Severity::Warning,
                message: format!(
                    "record {}: measured {measured:.3} MFLOP/s is more than {:.0}% below \
                     the static bound {bound:.3} — the graph model has drifted from the \
                     simulator",
                    record.key(),
                    DIVERGENCE_GAP * 100.0
                ),
                quantities: vec![("measured_mflops", measured), ("bound_mflops", bound)],
            });
        } else {
            diagnostics.push(Diagnostic {
                rule_id: "throughput-soundness",
                severity: Severity::Info,
                message: format!(
                    "record {}: measured {measured:.3} <= bound {bound:.3} MFLOP/s \
                     (headroom {:.1}%)",
                    record.key(),
                    (1.0 - measured / bound) * 100.0
                ),
                quantities: vec![("measured_mflops", measured), ("bound_mflops", bound)],
            });
        }
    }
    if validated == 0 {
        diagnostics.push(Diagnostic {
            rule_id: "throughput-soundness",
            severity: Severity::Warning,
            message: "no simulated record was cross-validated — BENCH set empty or rule stale?"
                .to_string(),
            quantities: vec![],
        });
    }
    Report {
        design: format!("BENCH cross-validation ({})", set.generator),
        diagnostics,
    }
}

/// [`cross_validate`] over a BENCH JSON file on disk.
pub fn bench_cross_validation_report(path: &Path) -> Result<Report, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(cross_validate(&RecordSet::from_json_str(&text)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::repo_root;

    fn looped(depth: usize, stages: usize) -> Topology {
        let mut t = Topology::new("loop");
        let src = t.source("in");
        let pe = t.pe("acc", 1.0);
        t.edge(
            "feed",
            src,
            pe,
            EdgeKind::Channel {
                words_per_cycle: 1.0,
                flops_per_word: 1.0,
            },
        );
        let buf = t.junction("buf");
        t.edge("pipe", pe, buf, EdgeKind::Delay { stages });
        t.edge("store", buf, pe, EdgeKind::Fifo { depth });
        t
    }

    #[test]
    fn sized_loop_proves_undersized_loop_fails() {
        let ok = enumerate_cycles(&looped(14, 14));
        assert_eq!(ok.len(), 1);
        assert!(ok[0].is_deadlock_free());
        assert_eq!(ok[0].required_tokens(), 14);
        let bad = analyze_topology(&looped(13, 14), 100.0);
        assert!(!bad.is_feasible());
        assert!(
            bad.rule("graph-deadlock")[0]
                .message
                .contains("rotation hazard")
                || bad
                    .diagnostics
                    .iter()
                    .any(|d| d.severity == Severity::Error)
        );
    }

    #[test]
    fn wire_only_cycle_is_combinational() {
        let mut t = Topology::new("comb");
        let a = t.pe("a", 1.0);
        let b = t.pe("b", 1.0);
        t.edge("ab", a, b, EdgeKind::Wire);
        t.edge("ba", b, a, EdgeKind::Wire);
        let report = analyze_topology(&t, 100.0);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("combinational")));
    }

    #[test]
    fn zero_delay_fifo_loop_still_needs_one_slot() {
        let proofs = enumerate_cycles(&looped(0, 0));
        // A Fifo{0} loop with no delay still circulates one token.
        assert_eq!(proofs[0].required_tokens(), 1);
        assert!(!proofs[0].is_deadlock_free());
    }

    #[test]
    fn bound_takes_the_smaller_cut() {
        let t = looped(14, 14);
        let b = throughput_bound(&t, 100.0);
        assert_eq!(b.compute_flops_per_cycle, 1.0);
        assert_eq!(b.io_flops_per_cycle, 1.0);
        assert_eq!(b.mflops(), 100.0);
    }

    #[test]
    fn undersized_chain_link_is_flagged() {
        let scal = ScalDesign::new(Level1Params::with_k(2)).topology();
        let axpy = AxpyDesign::new(Level1Params::with_k(2)).topology();
        let starved = scal.chain(
            &axpy,
            "out-stream",
            "x-stream",
            EdgeKind::Channel {
                words_per_cycle: 0.5,
                flops_per_word: 0.0,
            },
        );
        let report = analyze_topology(&starved, 170.0);
        assert!(report
            .rule("composition-bandwidth")
            .iter()
            .any(|d| d.severity == Severity::Error));
    }

    /// The tentpole acceptance bar: every shipped design point's graph
    /// passes all three analyses with zero errors.
    #[test]
    fn shipped_topologies_all_pass() {
        let reports = topology_report();
        assert_eq!(reports.len(), 16);
        for report in &reports {
            assert!(
                report.is_feasible(),
                "{} fails:\n{}",
                report.design,
                report.render(true)
            );
        }
        // Every feedback design actually exercises the proof.
        let proven: usize = shipped_topologies()
            .iter()
            .map(|(t, _)| enumerate_cycles(t).len())
            .sum();
        assert!(
            proven >= 6,
            "expected the shipped loops to be proven, got {proven}"
        );
    }

    /// The committed BENCH set satisfies `measured <= bound` for every
    /// simulated record, with no divergence warnings.
    #[test]
    fn committed_bench_records_are_sound() {
        let report =
            bench_cross_validation_report(&repo_root().join("BENCH_0001.json")).expect("load");
        assert!(
            report.is_feasible(),
            "soundness errors:\n{}",
            report.render(true)
        );
        assert_eq!(
            report.count(Severity::Warning),
            0,
            "divergence warnings:\n{}",
            report.render(true)
        );
        assert!(
            report.count(Severity::Info) >= 11,
            "all sim records validated"
        );
    }

    #[test]
    fn inflated_measurement_is_caught_as_unsound() {
        let text = std::fs::read_to_string(repo_root().join("BENCH_0001.json")).expect("read");
        let mut set = RecordSet::from_json_str(&text).expect("parse");
        let rec = set
            .records
            .iter_mut()
            .find(|r| r.kind == RecordKind::Simulated)
            .expect("a simulated record");
        rec.sustained_mflops *= 100.0;
        let report = cross_validate(&set);
        assert!(!report.is_feasible());
        assert!(report
            .rule("throughput-soundness")
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("unsound")));
    }

    #[test]
    fn unknown_simulated_kernel_is_a_coverage_error() {
        let mut set = RecordSet::new("test");
        set.push(RunRecord::modeled("mystery", &[("k", 4)], 170.0, 0));
        set.records[0].kind = RecordKind::Simulated;
        set.records[0].sustained_mflops = 1.0;
        let report = cross_validate(&set);
        assert!(!report.is_feasible());
        assert!(report.diagnostics[0]
            .message
            .contains("no registered topology"));
    }

    #[test]
    fn empty_set_is_a_stale_warning() {
        let report = cross_validate(&RecordSet::new("empty"));
        assert!(report.is_feasible());
        assert_eq!(report.count(Severity::Warning), 1);
    }
}
