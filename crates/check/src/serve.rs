//! Serving-store conservation and soundness rules.
//!
//! The `SERVE_<n>.json` stores are commitments: an admission-control
//! record claiming "we completed C, rejected R and stranded F" must
//! actually balance against the A requests that arrived, or the honest
//! reject accounting is fiction. This module re-checks every committed
//! (or freshly generated) [`ServeSet`] from first principles:
//!
//! * **queue conservation** — for every tenant in every cell,
//!   `arrivals == completed + rejected_queue + rejected_tokens +
//!   in_flight`, and the windowed completion/rejection series sum to the
//!   counters they claim to observe;
//! * **digest sanity** — latency quantiles are monotone
//!   (`min <= p50 <= p95 <= p99 <= p999 <= max`), only non-empty digests
//!   carry quantiles, and sample counts equal completions;
//! * **timeline sanity** — modeled busy time (staging + compute) fits
//!   inside the elapsed makespan, and a draining cell strands nothing;
//! * **batch amortization** — wherever a campaign carries a
//!   batched/unbatched cell pair (same kernel, size, seed, horizon and
//!   drain mode, `max_batch > 1` vs `== 1`), the batched cell must pay
//!   strictly less staging and no more total busy time: the tentpole
//!   claim of the serving front end, re-derived from the committed
//!   numbers instead of trusted.

use fblas_metrics::{ServeRecord, ServeSet, TenantRecord};

use crate::drc::{Diagnostic, Report, Severity};

fn diag(
    rule_id: &'static str,
    severity: Severity,
    message: String,
    quantities: Vec<(&'static str, f64)>,
) -> Diagnostic {
    Diagnostic {
        rule_id,
        severity,
        message,
        quantities,
    }
}

fn check_tenant(cell: &str, t: &TenantRecord, out: &mut Vec<Diagnostic>) {
    let accounted = t.completed + t.rejected_queue + t.rejected_tokens + t.in_flight;
    if t.arrivals == accounted {
        out.push(diag(
            "serve-conservation",
            Severity::Info,
            format!(
                "{cell}/{}: {} arrivals = {} completed + {} rejected + {} in flight",
                t.name,
                t.arrivals,
                t.completed,
                t.rejected(),
                t.in_flight
            ),
            vec![("arrivals", t.arrivals as f64)],
        ));
    } else {
        out.push(diag(
            "serve-conservation",
            Severity::Error,
            format!(
                "{cell}/{}: {} arrivals but books account for {accounted}",
                t.name, t.arrivals
            ),
            vec![
                ("arrivals", t.arrivals as f64),
                ("accounted", accounted as f64),
            ],
        ));
    }
    let series_completed: u64 = t.completions.iter().sum();
    if series_completed != t.completed {
        out.push(diag(
            "serve-series",
            Severity::Error,
            format!(
                "{cell}/{}: completion series sums to {series_completed}, counter says {}",
                t.name, t.completed
            ),
            vec![],
        ));
    }
    let series_rejected: u64 = t.rejections.iter().sum();
    if series_rejected != t.rejected() {
        out.push(diag(
            "serve-series",
            Severity::Error,
            format!(
                "{cell}/{}: rejection series sums to {series_rejected}, counters say {}",
                t.name,
                t.rejected()
            ),
            vec![],
        ));
    }
    check_digest(&format!("{cell}/{}", t.name), &t.latency, t.completed, out);
}

fn check_digest(
    what: &str,
    d: &fblas_metrics::LatencyDigest,
    expected_samples: u64,
    out: &mut Vec<Diagnostic>,
) {
    if d.samples != expected_samples {
        out.push(diag(
            "serve-digest",
            Severity::Error,
            format!(
                "{what}: digest has {} samples, {expected_samples} requests completed",
                d.samples
            ),
            vec![],
        ));
    }
    match d.quantiles {
        None if d.samples != 0 => out.push(diag(
            "serve-digest",
            Severity::Error,
            format!("{what}: {} samples but no quantiles", d.samples),
            vec![],
        )),
        Some(q) if d.samples == 0 => out.push(diag(
            "serve-digest",
            Severity::Error,
            format!("{what}: empty digest carries quantiles {q:?}"),
            vec![],
        )),
        Some([p50, p95, p99, p999]) => {
            let chain = [d.min, p50, p95, p99, p999, d.max];
            if chain.windows(2).all(|w| w[0] <= w[1]) {
                out.push(diag(
                    "serve-digest",
                    Severity::Info,
                    format!("{what}: quantiles monotone (p50={p50} <= p999={p999} ns)"),
                    vec![("p99", p99 as f64)],
                ));
            } else {
                out.push(diag(
                    "serve-digest",
                    Severity::Error,
                    format!("{what}: quantile chain not monotone: {chain:?}"),
                    vec![],
                ));
            }
        }
        None => {}
    }
}

fn check_cell(r: &ServeRecord, out: &mut Vec<Diagnostic>) {
    for t in &r.tenants {
        check_tenant(&r.cell, t, out);
    }
    check_digest(&r.cell, &r.latency, r.completed(), out);
    if r.busy_ns() > r.elapsed_ns {
        out.push(diag(
            "serve-timeline",
            Severity::Error,
            format!(
                "{}: busy {} ns exceeds elapsed {} ns — the single fleet cannot overlap itself",
                r.cell,
                r.busy_ns(),
                r.elapsed_ns
            ),
            vec![
                ("busy_ns", r.busy_ns() as f64),
                ("elapsed_ns", r.elapsed_ns as f64),
            ],
        ));
    }
    if r.drain && r.in_flight() > 0 {
        out.push(diag(
            "serve-timeline",
            Severity::Error,
            format!(
                "{}: a draining cell stranded {} request(s) in flight",
                r.cell,
                r.in_flight()
            ),
            vec![],
        ));
    }
    if r.max_batch >= 1 && r.batches > 0 && r.completed() > r.batches * r.max_batch {
        out.push(diag(
            "serve-timeline",
            Severity::Error,
            format!(
                "{}: {} completions cannot fit in {} batches of at most {}",
                r.cell,
                r.completed(),
                r.batches,
                r.max_batch
            ),
            vec![],
        ));
    }
}

/// True when two cells form a batched/unbatched comparison pair.
fn paired(batched: &ServeRecord, unbatched: &ServeRecord) -> bool {
    batched.max_batch > 1
        && unbatched.max_batch == 1
        && batched.kernel == unbatched.kernel
        && batched.n == unbatched.n
        && batched.seed == unbatched.seed
        && batched.horizon_ns == unbatched.horizon_ns
        && batched.drain == unbatched.drain
}

fn check_amortization(set: &ServeSet, out: &mut Vec<Diagnostic>) {
    for b in &set.records {
        for u in &set.records {
            if !paired(b, u) {
                continue;
            }
            if b.staging_ns < u.staging_ns && b.busy_ns() <= u.busy_ns() {
                out.push(diag(
                    "serve-amortization",
                    Severity::Info,
                    format!(
                        "{} vs {}: batching cuts staging {} -> {} ns",
                        u.cell, b.cell, u.staging_ns, b.staging_ns
                    ),
                    vec![
                        ("batched_staging_ns", b.staging_ns as f64),
                        ("unbatched_staging_ns", u.staging_ns as f64),
                    ],
                ));
            } else {
                out.push(diag(
                    "serve-amortization",
                    Severity::Error,
                    format!(
                        "{} does not beat {}: staging {} vs {} ns, busy {} vs {} ns",
                        b.cell,
                        u.cell,
                        b.staging_ns,
                        u.staging_ns,
                        b.busy_ns(),
                        u.busy_ns()
                    ),
                    vec![],
                ));
            }
        }
    }
}

/// Re-check a serving store from first principles.
pub fn check_serve_set(set: &ServeSet) -> Report {
    let mut diagnostics = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for r in &set.records {
        if seen.contains(&r.cell.as_str()) {
            diagnostics.push(diag(
                "serve-identity",
                Severity::Error,
                format!("duplicate cell identity '{}'", r.cell),
                vec![],
            ));
        }
        seen.push(&r.cell);
        check_cell(r, &mut diagnostics);
    }
    check_amortization(set, &mut diagnostics);
    Report {
        design: format!("serve store ({} cells)", set.records.len()),
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_core::dot::{DotParams, DotProductDesign};
    use fblas_metrics::LatencyDigest;
    use fblas_sim::Harness;

    /// A tiny genuine campaign: one batched/unbatched dot pair produced
    /// by the real engine, so the rule set is exercised against the
    /// artifact it will meet in CI.
    fn real_set() -> ServeSet {
        use fblas_serve::{run_cell, CellSpec, KernelFamily, ShapeClass, TenantSpec};
        let base = CellSpec {
            name: String::new(),
            class: ShapeClass {
                family: KernelFamily::Dot,
                n: 64,
            },
            tenants: vec![
                TenantSpec::open("alpha", 4_000, 16),
                TenantSpec::open("beta", 9_000, 4).with_tokens(8, 20_000),
            ],
            seed: 7,
            max_batch: 1,
            drain: true,
            horizon_ns: 1_000_000,
            window_ns: 250_000,
            slo_p99_ns: 1_000_000,
        };
        let mut set = ServeSet::new("unit-test");
        let mut h = Harness::new();
        let mut b1 = base.clone();
        b1.name = "dot64/open/b1".to_string();
        set.records.push(run_cell(&mut h, &b1));
        let mut b8 = base;
        b8.name = "dot64/open/b8".to_string();
        b8.max_batch = 8;
        set.records.push(run_cell(&mut h, &b8));
        set
    }

    #[test]
    fn real_campaign_passes_all_rules() {
        let report = check_serve_set(&real_set());
        assert_eq!(report.count(Severity::Error), 0, "{}", report.render(true));
        // The amortization pair was found and verified.
        assert!(!report.rule("serve-amortization").is_empty());
        assert!(report
            .rule("serve-amortization")
            .iter()
            .all(|d| d.severity == Severity::Info));
    }

    #[test]
    fn broken_books_are_detected() {
        let mut set = real_set();
        set.records[0].tenants[0].completed += 1;
        let report = check_serve_set(&set);
        assert!(
            report
                .rule("serve-conservation")
                .iter()
                .any(|d| d.severity == Severity::Error),
            "{}",
            report.render(true)
        );
    }

    #[test]
    fn non_monotone_quantiles_are_detected() {
        let mut set = real_set();
        if let Some(q) = &mut set.records[1].latency.quantiles {
            q.swap(0, 3);
        }
        let report = check_serve_set(&set);
        assert!(report
            .rule("serve-digest")
            .iter()
            .any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn empty_digest_with_samples_is_detected() {
        let mut set = real_set();
        set.records[0].tenants[0].latency = LatencyDigest {
            samples: set.records[0].tenants[0].completed,
            min: 0,
            max: 0,
            quantiles: None,
        };
        let report = check_serve_set(&set);
        assert!(report
            .rule("serve-digest")
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("no quantiles")));
    }

    #[test]
    fn lost_amortization_is_detected() {
        let mut set = real_set();
        // Claim the batched cell paid *more* staging than the unbatched.
        let unbatched_staging = set.records[0].staging_ns;
        set.records[1].staging_ns = unbatched_staging + 1;
        let report = check_serve_set(&set);
        assert!(report
            .rule("serve-amortization")
            .iter()
            .any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn duplicate_cells_are_detected() {
        let mut set = real_set();
        let dup = set.records[0].clone();
        set.records.push(dup);
        let report = check_serve_set(&set);
        assert!(report
            .rule("serve-identity")
            .iter()
            .any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn overfull_batches_are_detected() {
        let mut set = real_set();
        set.records[1].batches = 1; // far fewer than completed/max_batch allows
        let report = check_serve_set(&set);
        assert!(report
            .rule("serve-timeline")
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("cannot fit")));
    }

    #[test]
    fn the_serve_crate_is_in_the_determinism_scan() {
        assert!(
            crate::determinism::DETERMINISM_ROOTS.contains(&"crates/serve/src"),
            "the serving front end writes committed records; it must be swept"
        );
        // And its calibration really runs the instrumented design.
        let d = DotProductDesign::standalone(DotParams::table3(), 170.0);
        let out = d.run_in(&mut Harness::new(), &[1.0, 2.0], &[3.0, 4.0]);
        assert!(out.report.cycles > 0);
    }
}
