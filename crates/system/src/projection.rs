//! Performance projections (paper §6.4, Figures 11 and 12).
//!
//! The paper projects chassis-level matrix-multiply performance as the PE
//! shrinks (1600–2000 slices) and speeds up (160–200 MHz), and onto the
//! larger XC2VP100 device. The projection formula is
//!
//! ```text
//! GFLOPS = 2 × (PEs per device) × PE clock × (FPGAs per chassis) × 0.75
//! ```
//!
//! where the 25 % deduction accounts for clock degradation caused by
//! routing. Each projection point also carries the bandwidth the design
//! would then require, which §6.4 checks against what XD1 provides:
//!
//! * DRAM / inter-FPGA:  `3·k·l/b` words per cycle (three m×m blocks per
//!   `m²b/(k·l)` cycles);
//! * SRAM: 2 words per cycle for C′ traffic plus `2·k·l/b` for C-block
//!   forwarding.

use crate::device::FpgaDevice;
use crate::rate::{rate_or_zero, units_per};
use fblas_mem::WORD_BYTES;

/// Fraction of projected performance retained after routing degradation
/// (§6.4: "25 % of the performance is deducted").
pub const ROUTING_DERATE: f64 = 0.75;

/// One point of the Figure 11/12 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectionPoint {
    /// Assumed PE area in slices.
    pub pe_slices: u32,
    /// Assumed PE clock in MHz.
    pub pe_clock_mhz: f64,
    /// PEs that fit per device at this area.
    pub pes_per_device: u32,
    /// Projected sustained chassis performance in GFLOPS.
    pub chassis_gflops: f64,
    /// SRAM bandwidth the design then requires, bytes/s per FPGA.
    pub required_sram_bytes_per_s: f64,
    /// DRAM (= inter-FPGA) bandwidth required, bytes/s.
    pub required_dram_bytes_per_s: f64,
}

/// The Figure 11/12 projection sweep for one device.
///
/// # Examples
///
/// ```
/// use fblas_system::{ChassisProjection, XC2VP50};
///
/// let p = ChassisProjection::xd1(XC2VP50).point(1600, 200.0);
/// assert_eq!(p.pes_per_device, 14);
/// assert!(p.chassis_gflops > 25.0); // Figure 11's best corner
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChassisProjection {
    /// Device the PEs are placed on.
    pub device: FpgaDevice,
    /// FPGAs per chassis (6 on XD1).
    pub fpgas_per_chassis: u32,
    /// SRAM block size b of the hierarchical design (§6.4: 2048).
    pub b: u64,
}

impl ChassisProjection {
    /// Projection for one chassis of XD1 with the given device.
    pub fn xd1(device: FpgaDevice) -> Self {
        Self {
            device,
            fpgas_per_chassis: 6,
            b: 2048,
        }
    }

    /// Evaluate one (area, clock) point. Uses k = m = PEs-per-device, as in
    /// §6.4's bandwidth accounting.
    pub fn point(&self, pe_slices: u32, pe_clock_mhz: f64) -> ProjectionPoint {
        let pes = units_per(self.device.slices, pe_slices);
        let l = f64::from(self.fpgas_per_chassis);
        let gflops = 2.0 * f64::from(pes) * pe_clock_mhz * 1e6 * l * ROUTING_DERATE / 1e9;
        let hz = pe_clock_mhz * 1e6;
        let k = f64::from(pes);
        let words = WORD_BYTES as f64;
        // C′ storage: one read + one write per cycle; C forwarding: two m×m
        // blocks per m²b/(k·l) cycles.
        let sram = (2.0 + rate_or_zero(2.0 * k * l, self.b as f64)) * words * hz;
        // A, B in and C out: three m×m blocks per m²b/(k·l) cycles.
        let dram = rate_or_zero(3.0 * k * l, self.b as f64) * words * hz;
        ProjectionPoint {
            pe_slices,
            pe_clock_mhz,
            pes_per_device: pes,
            chassis_gflops: gflops,
            required_sram_bytes_per_s: sram,
            required_dram_bytes_per_s: dram,
        }
    }

    /// The full Figure 11/12 grid: areas 1600..=2000 step 100 crossed with
    /// clocks 160..=200 MHz step 10.
    pub fn sweep(&self) -> Vec<ProjectionPoint> {
        let mut points = Vec::with_capacity(25);
        for pe_slices in (1600..=2000).step_by(100) {
            for clock in (160..=200).step_by(10) {
                points.push(self.point(pe_slices, f64::from(clock)));
            }
        }
        points
    }
}

/// §6.4.1/§6.4.2: sustained multi-FPGA performance by linear scaling of
/// the measured single-FPGA number (the linear array adds only k·l cycles
/// of fill latency, negligible for large n).
pub fn scaled_sustained_gflops(single_fpga_gflops: f64, total_fpgas: usize) -> f64 {
    single_fpga_gflops * total_fpgas as f64
}

/// Extra pipeline-fill latency in cycles when the linear array spans
/// `total_fpgas` FPGAs of `k` PEs each (§6.4: k × l cycles).
pub fn multi_fpga_fill_cycles(k: u32, total_fpgas: usize) -> u64 {
    u64::from(k) * total_fpgas as u64
}

/// DRAM / inter-FPGA bandwidth (bytes/s) required by the hierarchical
/// design: three m×m blocks per m²b/(k·l) cycles.
pub fn hierarchical_dram_bytes_per_s(k: u32, l: usize, b: u64, clock_mhz: f64) -> f64 {
    rate_or_zero(3.0 * f64::from(k) * l as f64, b as f64) * WORD_BYTES as f64 * clock_mhz * 1e6
}

/// SRAM bandwidth (bytes/s) required per FPGA by the hierarchical design:
/// C′ read+write every cycle plus C-block forwarding.
pub fn hierarchical_sram_bytes_per_s(k: u32, l: usize, b: u64, clock_mhz: f64) -> f64 {
    (2.0 + rate_or_zero(2.0 * f64::from(k) * l as f64, b as f64))
        * WORD_BYTES as f64
        * clock_mhz
        * 1e6
}

/// DRAM bandwidth (bytes/s) required by the *naive* multi-FPGA design —
/// the §5.1 linear array simply stretched across l FPGAs with no SRAM
/// blocking ("such an implementation does not utilize the SRAM attached
/// to the FPGAs", §5.2). The array then has k·l PEs sharing one m-sized
/// BRAM block, so the external requirement is 3·(k·l)/m words per cycle —
/// growing linearly with l, which is what makes the hierarchical design
/// necessary.
pub fn naive_multi_fpga_dram_bytes_per_s(k: u32, l: usize, m: u64, clock_mhz: f64) -> f64 {
    rate_or_zero(3.0 * f64::from(k) * l as f64, m as f64) * WORD_BYTES as f64 * clock_mhz * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{XC2VP100, XC2VP50};

    #[test]
    fn chassis_prediction_12_4_gflops() {
        // §6.4.1: 2.06 GFLOPS × 6 FPGAs ≈ 12.4 GFLOPS.
        let g = scaled_sustained_gflops(2.06, 6);
        assert!((g - 12.36).abs() < 0.01);
    }

    #[test]
    fn installation_prediction_148_3_gflops() {
        // §6.4.2: 2.06 × 6 × 12 ≈ 148.3 GFLOPS.
        let g = scaled_sustained_gflops(2.06, 72);
        assert!((g - 148.3).abs() < 0.05, "got {g}");
    }

    #[test]
    fn fill_latency_matches_paper() {
        assert_eq!(multi_fpga_fill_cycles(8, 6), 48); // §6.4.1
        assert_eq!(multi_fpga_fill_cycles(8, 72), 576); // §6.4.2
    }

    #[test]
    fn chassis_dram_bandwidth_73_mb_s() {
        // §6.4.1: k=m=8, l=6, b=2048 at 130 MHz ⇒ 73.1 MB/s.
        let bw = hierarchical_dram_bytes_per_s(8, 6, 2048, 130.0);
        assert!((bw / 1e6 - 73.1).abs() < 0.2, "got {bw}");
    }

    #[test]
    fn installation_dram_bandwidth_877_mb_s() {
        // §6.4.2: l = 72 ⇒ 877.5 MB/s.
        let bw = hierarchical_dram_bytes_per_s(8, 72, 2048, 130.0);
        assert!((bw / 1e6 - 877.5).abs() < 1.0, "got {bw}");
    }

    #[test]
    fn installation_sram_bandwidth_about_3_gb_s() {
        // §6.4.2 quotes 3.0 GB/s; the formula gives 2.7–3.2 GB/s depending
        // on the clock used — shape (additional ~0.6 GB/s of C traffic on
        // top of the 2.1 GB/s C′ stream) is what matters.
        let bw = hierarchical_sram_bytes_per_s(8, 72, 2048, 155.0);
        assert!((bw / 1e9 - 3.0).abs() < 0.3, "got {bw}");
    }

    #[test]
    fn naive_multi_fpga_motivates_hierarchy() {
        // §5.2's motivation quantified: at k = m = 8, the naive array's
        // DRAM demand grows with l while the hierarchical design's stays
        // tiny (divided by b instead of m).
        let naive1 = naive_multi_fpga_dram_bytes_per_s(8, 1, 8, 130.0);
        let naive72 = naive_multi_fpga_dram_bytes_per_s(8, 72, 8, 130.0);
        let hier72 = hierarchical_dram_bytes_per_s(8, 72, 2048, 130.0);
        assert!((naive72 / naive1 - 72.0).abs() < 1e-9);
        // 3·8·72/8 = 216 words/cycle ≈ 225 GB/s: wildly beyond XD1's
        // 3.2 GB/s DRAM path, while the hierarchical design needs <1 GB/s.
        assert!(naive72 > 100e9);
        assert!(hier72 < 1e9);
        assert!((naive72 / hier72 - 2048.0 / 8.0).abs() < 1e-6);
    }

    #[test]
    fn fig11_best_point_over_25_gflops() {
        // Smallest (1600-slice) and fastest (200 MHz) PE on XC2VP50:
        // paper says "more than 27 GFLOPS"; the flooring of PEs-per-device
        // gives 25.2 — same ballpark, same trend.
        let p = ChassisProjection::xd1(XC2VP50).point(1600, 200.0);
        assert_eq!(p.pes_per_device, 14);
        assert!(p.chassis_gflops > 25.0, "got {}", p.chassis_gflops);
    }

    #[test]
    fn fig12_doubles_fig11() {
        // XC2VP100 has about twice the slices, so roughly twice the PEs
        // and twice the projected performance (~50 GFLOPS).
        let p50 = ChassisProjection::xd1(XC2VP50).point(1600, 200.0);
        let p100 = ChassisProjection::xd1(XC2VP100).point(1600, 200.0);
        let ratio = p100.chassis_gflops / p50.chassis_gflops;
        assert!((ratio - 1.93).abs() < 0.1, "ratio {ratio}");
        assert!(p100.chassis_gflops > 45.0, "got {}", p100.chassis_gflops);
    }

    #[test]
    fn projection_monotone_in_clock_and_area() {
        let proj = ChassisProjection::xd1(XC2VP50);
        // Faster clock, same area: strictly better.
        assert!(proj.point(1800, 200.0).chassis_gflops > proj.point(1800, 160.0).chassis_gflops);
        // Smaller PE, same clock: at least as good (more PEs fit).
        assert!(proj.point(1600, 180.0).chassis_gflops >= proj.point(2000, 180.0).chassis_gflops);
    }

    #[test]
    fn sweep_covers_5x5_grid() {
        let pts = ChassisProjection::xd1(XC2VP50).sweep();
        assert_eq!(pts.len(), 25);
        // All points on XC2VP50 lie between ~14 and ~27 GFLOPS (Figure 11's
        // y-axis span).
        for p in &pts {
            assert!(p.chassis_gflops > 13.0 && p.chassis_gflops < 28.0);
        }
    }

    #[test]
    fn degenerate_operating_points_yield_zeros_not_nan() {
        // A zero-slice PE fits no PEs: everything collapses to honest
        // zeros instead of a divide-by-zero panic or inf.
        let p = ChassisProjection::xd1(XC2VP50).point(0, 200.0);
        assert_eq!(p.pes_per_device, 0);
        assert_eq!(p.chassis_gflops, 0.0);
        assert!(p.required_dram_bytes_per_s == 0.0);
        assert!(p.required_sram_bytes_per_s.is_finite());

        // Zero SRAM blocking: the per-block terms vanish finitely.
        let proj = ChassisProjection {
            device: XC2VP50,
            fpgas_per_chassis: 6,
            b: 0,
        };
        let p = proj.point(1600, 200.0);
        assert_eq!(p.required_dram_bytes_per_s, 0.0);
        assert!(p.required_sram_bytes_per_s.is_finite());

        // Zero FPGAs / zero blocking in the free functions.
        assert_eq!(hierarchical_dram_bytes_per_s(8, 0, 2048, 130.0), 0.0);
        assert_eq!(hierarchical_dram_bytes_per_s(8, 6, 0, 130.0), 0.0);
        assert!(hierarchical_sram_bytes_per_s(8, 6, 0, 130.0).is_finite());
        assert_eq!(naive_multi_fpga_dram_bytes_per_s(8, 6, 0, 130.0), 0.0);
        assert_eq!(scaled_sustained_gflops(2.06, 0), 0.0);
        // None of the degenerate values is NaN — NaN would sneak
        // through every `<=` gate downstream.
        for v in [
            hierarchical_dram_bytes_per_s(0, 0, 0, 0.0),
            hierarchical_sram_bytes_per_s(0, 0, 0, 0.0),
            naive_multi_fpga_dram_bytes_per_s(0, 0, 0, 0.0),
        ] {
            assert!(!v.is_nan());
        }
    }

    #[test]
    fn zero_interval_ring_demand_is_zero() {
        let mut cfg = crate::ring::RingConfig::xd1_chassis();
        cfg.interval_cycles = 0;
        assert_eq!(cfg.demand_words_per_cycle(), 0.0);
    }

    #[test]
    fn projected_bandwidths_met_by_xd1() {
        // §6.4.1: with the smallest/fastest PE the requirements stay within
        // XD1's provisioning (12.8 GB/s SRAM, 3.2 GB/s DRAM).
        let p = ChassisProjection::xd1(XC2VP50).point(1600, 200.0);
        assert!(p.required_sram_bytes_per_s < 12.8e9);
        assert!(p.required_dram_bytes_per_s < 3.2e9);
    }
}
