//! Cray XD1 platform topology (paper §3.1.2, Figure 2).
//!
//! * A **compute blade** pairs two AMD Opterons with one Virtex-II Pro
//!   FPGA; the FPGA owns four QDR-II SRAM banks and reaches the Opterons'
//!   DRAM through the `RapidArray` processors.
//! * A **chassis** holds six blades; their FPGAs form a circular array
//!   over RocketI/O multi-gigabit transceivers.
//! * A typical **installation** connects twelve chassis through `RapidArray`
//!   external switches with 4 GB/s inter-chassis links.

use crate::device::{FpgaDevice, XC2VP50};
use fblas_mem::{DmaModel, MemoryHierarchy};

/// One XD1 compute blade as seen from the FPGA design.
///
/// # Examples
///
/// ```
/// use fblas_system::Xd1Node;
///
/// let node = Xd1Node::default();
/// assert_eq!(node.sram_banks, 4);
/// // §6.2: 16 MB of SRAM bounds square matrices at n ≈ √2·1024.
/// assert_eq!(node.max_square_n_in_sram(), 1448);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Xd1Node {
    /// The FPGA on the blade.
    pub device: FpgaDevice,
    /// The Table 1 memory hierarchy visible to that FPGA.
    pub mem: MemoryHierarchy,
    /// Number of QDR-II SRAM banks attached to the FPGA.
    pub sram_banks: usize,
    /// Maximum SRAM→FPGA read bandwidth (§4.4: 6.4 GB/s; the 12.8 GB/s in
    /// Table 1 counts both directions of the QDR interface).
    pub sram_read_bytes_per_s: f64,
    /// The DRAM path as achieved in the paper's experiments (1.3 GB/s).
    pub dram: DmaModel,
}

impl Default for Xd1Node {
    fn default() -> Self {
        Self {
            device: XC2VP50,
            mem: MemoryHierarchy::cray_xd1(),
            sram_banks: 4,
            sram_read_bytes_per_s: 6.4e9,
            dram: DmaModel::xd1_dram(),
        }
    }
}

impl Xd1Node {
    /// Total SRAM capacity attached to this FPGA, in 64-bit words.
    pub fn sram_words(&self) -> u64 {
        self.mem.b.capacity_words()
    }

    /// Largest square matrix (n×n doubles) that fits in this node's SRAM.
    ///
    /// §6.2: with 16 MB of SRAM, n can be at most √2 × 1024 ≈ 1448.
    pub fn max_square_n_in_sram(&self) -> u64 {
        (self.sram_words() as f64).sqrt() as u64
    }

    /// Words per cycle the SRAM read path sustains at `clock_mhz`.
    pub fn sram_words_per_cycle(&self, clock_mhz: f64) -> f64 {
        self.sram_read_bytes_per_s / 8.0 / (clock_mhz * 1e6)
    }
}

/// One XD1 chassis: six blades, FPGAs in a RocketI/O ring.
#[derive(Debug, Clone, PartialEq)]
pub struct Xd1Chassis {
    /// The (identical) blades.
    pub node: Xd1Node,
    /// Blades per chassis.
    pub n_fpgas: usize,
    /// Bandwidth of one inter-FPGA RocketI/O link in bytes/s. The paper
    /// only requires that it exceed the design's 73.1 MB/s demand; XD1's
    /// MGTs provide on the order of 2 GB/s per FPGA-to-FPGA hop.
    pub inter_fpga_bytes_per_s: f64,
}

impl Default for Xd1Chassis {
    fn default() -> Self {
        Self {
            node: Xd1Node::default(),
            n_fpgas: 6,
            inter_fpga_bytes_per_s: 2.0e9,
        }
    }
}

impl Xd1Chassis {
    /// Total SRAM words across the chassis — the `2b²` budget of the §5.2
    /// hierarchical matrix multiplier.
    pub fn total_sram_words(&self) -> u64 {
        self.node.sram_words() * self.n_fpgas as u64
    }

    /// Largest SRAM block size b with 2b² ≤ total SRAM (§6.4.1: b = 2048).
    pub fn max_b(&self) -> u64 {
        // Largest power of two whose 2b² fits, matching the paper's choice.
        let mut b = 1u64;
        while 2 * (b * 2) * (b * 2) <= self.total_sram_words() {
            b *= 2;
        }
        b
    }
}

/// A full XD1 installation: several chassis over `RapidArray` switches.
#[derive(Debug, Clone, PartialEq)]
pub struct Xd1System {
    /// The (identical) chassis.
    pub chassis: Xd1Chassis,
    /// Number of chassis (typical installation: 12).
    pub n_chassis: usize,
    /// Inter-chassis link bandwidth (§6.4.2: 4 GB/s).
    pub inter_chassis_bytes_per_s: f64,
}

impl Default for Xd1System {
    fn default() -> Self {
        Self {
            chassis: Xd1Chassis::default(),
            n_chassis: 12,
            inter_chassis_bytes_per_s: 4.0e9,
        }
    }
}

impl Xd1System {
    /// Total FPGAs in the installation (§6.4.2: l = 72).
    pub fn total_fpgas(&self) -> usize {
        self.chassis.n_fpgas * self.n_chassis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_defaults_match_paper() {
        let n = Xd1Node::default();
        assert_eq!(n.sram_banks, 4);
        assert_eq!(n.device.slices, 23_616);
        assert_eq!(n.sram_words(), 2 * 1024 * 1024);
    }

    #[test]
    fn max_square_matrix_in_sram() {
        // §6.2: n at most √2 × 1024 ≈ 1448.
        let n = Xd1Node::default();
        assert_eq!(n.max_square_n_in_sram(), 1448);
    }

    #[test]
    fn sram_words_per_cycle_at_170mhz() {
        // 6.4 GB/s at 170 MHz ≈ 4.7 words/cycle: k=4 matrix words plus the
        // result stream fit, k=8 would not — the Table 3 design choice.
        let n = Xd1Node::default();
        let wpc = n.sram_words_per_cycle(170.0);
        assert!((wpc - 4.7).abs() < 0.01, "got {wpc}");
    }

    #[test]
    fn chassis_sram_budget_gives_b_2048() {
        // §6.4.1: 96 MB of chassis SRAM ⇒ b = 2048 (2b² = 8M words ≤ 12M).
        let c = Xd1Chassis::default();
        assert_eq!(c.total_sram_words(), 12 * 1024 * 1024);
        assert_eq!(c.max_b(), 2048);
    }

    #[test]
    fn installation_has_72_fpgas() {
        assert_eq!(Xd1System::default().total_fpgas(), 72);
    }

    #[test]
    fn interconnect_meets_design_demands() {
        // §6.4: the design needs 73.1 MB/s between FPGAs and 877.5 MB/s
        // between chassis; both links have headroom.
        let s = Xd1System::default();
        assert!(s.chassis.inter_fpga_bytes_per_s > 73.1e6);
        assert!(s.inter_chassis_bytes_per_s > 877.5e6);
    }
}
