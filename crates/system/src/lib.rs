//! Platform models for reconfigurable high-end computing systems.
//!
//! This crate captures everything about the *hardware platform* that the
//! architecture simulations in `fblas-core` need but cannot derive from
//! functional simulation:
//!
//! * [`device`] — FPGA device sheets (Xilinx Virtex-II Pro XC2VP50 and
//!   XC2VP100: slices, on-chip memory, I/O pins).
//! * [`area`] — the slice-count cost model calibrated to the paper's
//!   post-place-&-route results (Tables 2, 3, 4 and the PE size of §5.3).
//! * [`clock`] — the routing-degradation clock model calibrated to
//!   Figure 9 (155 MHz at k=1 falling to 125 MHz at k=10) and the measured
//!   design clocks (170 / 164 / 130 MHz).
//! * [`xd1`] — the Cray XD1 topology: compute node (Opterons + one FPGA +
//!   4 SRAM banks + DRAM over `RapidArray`), chassis of six blades with a
//!   RocketI/O FPGA ring, and the typical 12-chassis installation.
//! * [`src_station`] — the SRC `MAPstation` (two FPGAs + controller, six
//!   SRAM banks each), used for the Table 1 comparison.
//! * [`peak`] — peak-performance calculators: the I/O-bound bounds of
//!   §4.4 (dot peak = bw, matrix-vector peak = 2·bw) and the
//!   compute-bound device peak of §6.3 (4.42 GFLOPS for XC2VP50).
//! * [`projection`] — the §6.4 projections behind Figures 11 and 12 and
//!   the single/multi-chassis predictions (12.4 and 148.3 GFLOPS), with
//!   their bandwidth-requirement checks.
//! * [`rate`] — clamped-denominator rate helpers shared by the
//!   projection and interconnect formulas: a degenerate operating point
//!   (zero FPGAs, zero bandwidth, a zero-cycle interval) yields an
//!   honest zero rate, never a NaN that would sail through gates.

#![forbid(unsafe_code)]

pub mod area;
pub mod clock;
pub mod device;
pub mod peak;
pub mod projection;
pub mod rate;
pub mod ring;
pub mod src_station;
pub mod xd1;

pub use area::AreaModel;
pub use clock::ClockModel;
pub use device::{FpgaDevice, XC2VP100, XC2VP50};
pub use peak::{device_peak_flops, io_bound_peak_dot, io_bound_peak_mvm};
pub use projection::{ChassisProjection, ProjectionPoint};
pub use rate::{rate_or_zero, units_per};
pub use ring::{simulate_ring, RingConfig, RingStats};
pub use xd1::{Xd1Chassis, Xd1Node, Xd1System};
