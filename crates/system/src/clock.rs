//! Post-place-&-route clock model.
//!
//! Functional simulation yields cycle counts; this model supplies the MHz
//! that turn cycles into seconds. It is calibrated to the paper's measured
//! clocks:
//!
//! * floating-point units and the tree designs close at 170 MHz (Tables 2
//!   and 3);
//! * on XD1 the added RT core / memory controllers pull the Level-2 design
//!   down to 164 MHz (Table 4);
//! * the matrix-multiply linear array starts at 155 MHz for one PE and
//!   degrades to 125 MHz at ten PEs as routing congestion grows
//!   (Figure 9); the XD1 deployment at k=8 runs at 130 MHz (Table 4).

use fblas_sim::ClockDomain;

/// Clock model for the paper's designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    /// Clock of the floating-point units and the standalone tree designs.
    pub fp_unit_mhz: f64,
    /// Clock of the Level-2 design with XD1 infrastructure attached.
    pub xd1_l2_mhz: f64,
    /// Matrix-multiply PE clock with one PE configured.
    pub mm_base_mhz: f64,
    /// Matrix-multiply clock with the maximum ten PEs configured.
    pub mm_min_mhz: f64,
    /// Number of PEs at which `mm_min_mhz` is reached.
    pub mm_max_k: u32,
    /// Additional derate applied on XD1 (RT core sharing the fabric):
    /// Figure 9 would give ≈132 MHz at k=8, Table 4 measures 130.
    pub xd1_mm_derate: f64,
}

impl Default for ClockModel {
    fn default() -> Self {
        Self {
            fp_unit_mhz: 170.0,
            xd1_l2_mhz: 164.0,
            mm_base_mhz: 155.0,
            mm_min_mhz: 125.0,
            mm_max_k: 10,
            xd1_mm_derate: 130.0 / (155.0 - 30.0 * 7.0 / 9.0),
        }
    }
}

impl ClockModel {
    /// Clock of the standalone tree-based designs (Table 3).
    pub fn tree_design(&self) -> ClockDomain {
        ClockDomain::from_mhz(self.fp_unit_mhz)
    }

    /// Clock of the Level-2 design on XD1 (Table 4).
    pub fn xd1_l2(&self) -> ClockDomain {
        ClockDomain::from_mhz(self.xd1_l2_mhz)
    }

    /// Routing-degraded matrix-multiply clock as a function of PE count
    /// (linear interpolation through the Figure 9 endpoints).
    pub fn mm_mhz(&self, k: u32) -> f64 {
        assert!(k >= 1, "at least one PE");
        let k = k.min(self.mm_max_k);
        let span = (self.mm_base_mhz - self.mm_min_mhz) / f64::from(self.mm_max_k - 1);
        self.mm_base_mhz - span * f64::from(k - 1)
    }

    /// Matrix-multiply clock domain on a bare device.
    pub fn mm(&self, k: u32) -> ClockDomain {
        ClockDomain::from_mhz(self.mm_mhz(k))
    }

    /// Matrix-multiply clock domain on XD1 (Table 4: 130 MHz at k=8).
    pub fn xd1_mm(&self, k: u32) -> ClockDomain {
        ClockDomain::from_mhz(self.mm_mhz(k) * self.xd1_mm_derate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_endpoints() {
        let c = ClockModel::default();
        assert_eq!(c.mm_mhz(1), 155.0);
        assert_eq!(c.mm_mhz(10), 125.0);
    }

    #[test]
    fn fig9_monotonically_decreasing() {
        let c = ClockModel::default();
        for k in 1..10 {
            assert!(c.mm_mhz(k) > c.mm_mhz(k + 1));
        }
    }

    #[test]
    fn table4_mm_clock_at_k8() {
        let c = ClockModel::default();
        let mhz = c.xd1_mm(8).mhz();
        assert!((mhz - 130.0).abs() < 0.5, "got {mhz}");
    }

    #[test]
    fn table_clocks() {
        let c = ClockModel::default();
        assert_eq!(c.tree_design().mhz(), 170.0);
        assert_eq!(c.xd1_l2().mhz(), 164.0);
    }

    #[test]
    fn clock_clamps_beyond_max_k() {
        let c = ClockModel::default();
        assert_eq!(c.mm_mhz(12), c.mm_mhz(10));
    }
}
