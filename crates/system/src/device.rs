//! FPGA device sheets.
//!
//! The paper's experiments use the Xilinx Virtex-II Pro XC2VP50 (the device
//! in Cray XD1 compute blades); §6.4 projects performance onto the larger
//! XC2VP100. Both are "previous generation" parts even in 2005 — the paper
//! stresses that its designs scale with whatever device is plugged in.

/// Resources of one FPGA device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaDevice {
    /// Marketing name.
    pub name: &'static str,
    /// Logic capacity in slices.
    pub slices: u32,
    /// On-chip Block RAM in bits.
    pub bram_bits: u64,
    /// User I/O pins.
    pub io_pins: u32,
}

/// Xilinx Virtex-II Pro XC2VP50: 23616 slices, ≈4 Mb BRAM, 852 I/O pins.
pub const XC2VP50: FpgaDevice = FpgaDevice {
    name: "Xilinx Virtex-II Pro XC2VP50",
    slices: 23_616,
    bram_bits: 4_096 * 1024,
    io_pins: 852,
};

/// Xilinx Virtex-II Pro XC2VP100: 44096 slices, ≈8 Mb BRAM, 1164 I/O pins.
pub const XC2VP100: FpgaDevice = FpgaDevice {
    name: "Xilinx Virtex-II Pro XC2VP100",
    slices: 44_096,
    bram_bits: 8_192 * 1024,
    io_pins: 1164,
};

impl FpgaDevice {
    /// On-chip memory capacity in 64-bit words.
    pub fn bram_words(&self) -> u64 {
        self.bram_bits / 64
    }

    /// Fraction of the device a design of `slices` slices occupies.
    pub fn occupancy(&self, slices: u32) -> f64 {
        f64::from(slices) / f64::from(self.slices)
    }

    /// Whether a design of `slices` slices fits.
    pub fn fits(&self, slices: u32) -> bool {
        slices <= self.slices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xc2vp50_sheet() {
        assert_eq!(XC2VP50.slices, 23_616);
        assert_eq!(XC2VP50.io_pins, 852);
        // ~4 Mb of BRAM holds 64K doubles — enough for two 128×128 blocks
        // (2m² with m=128 is 32768 words), the §5.3 blocking choice.
        assert!(XC2VP50.bram_words() >= 2 * 128 * 128);
    }

    #[test]
    fn xc2vp100_roughly_doubles_vp50() {
        assert!(f64::from(XC2VP100.slices) / f64::from(XC2VP50.slices) > 1.8);
        assert_eq!(XC2VP100.bram_bits, 2 * XC2VP50.bram_bits);
    }

    #[test]
    fn occupancy_fraction() {
        // Table 3: the Level-2 design uses 9669 slices = 41% of XC2VP50.
        let occ = XC2VP50.occupancy(9669);
        assert!((occ - 0.41).abs() < 0.01, "got {occ}");
        assert!(XC2VP50.fits(9669));
        assert!(!XC2VP50.fits(30_000));
    }
}
