//! Peak-performance calculators (paper §4.4 and §6.3).
//!
//! Level 1 and Level 2 BLAS are I/O bound: with unlimited compute their
//! performance is capped by the rate at which operands arrive.
//!
//! * **Dot product** reads 2n words and performs 2n flops, so its peak is
//!   `bw` FLOPS where `bw` is the memory bandwidth in *words per second*.
//! * **Matrix-vector multiply** reads ≈n² words (the matrix; the vector is
//!   reused from on-chip storage) and performs 2n² flops, so its peak is
//!   `2·bw` FLOPS.
//!
//! Level 3 BLAS is compute bound; the §6.3 device peak assumes the fabric
//! holds nothing but adder/multiplier pairs running flat out.

use crate::area::AreaModel;
use crate::device::FpgaDevice;
use fblas_mem::WORD_BYTES;

/// §4.4: peak FLOPS of any dot-product design under a memory bandwidth of
/// `bandwidth_bytes_per_s` (one flop per word delivered).
pub fn io_bound_peak_dot(bandwidth_bytes_per_s: f64) -> f64 {
    bandwidth_bytes_per_s / WORD_BYTES as f64
}

/// §4.4: peak FLOPS of any matrix-vector design under a memory bandwidth
/// of `bandwidth_bytes_per_s` (two flops per matrix word delivered).
pub fn io_bound_peak_mvm(bandwidth_bytes_per_s: f64) -> f64 {
    2.0 * bandwidth_bytes_per_s / WORD_BYTES as f64
}

/// §6.3: compute-bound peak of a device: `2 × (adder+multiplier pairs that
/// fit) × unit clock`.
pub fn device_peak_flops(device: &FpgaDevice, area: &AreaModel, unit_clock_mhz: f64) -> f64 {
    2.0 * f64::from(area.max_fp_pairs(device)) * unit_clock_mhz * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::XC2VP50;

    #[test]
    fn dot_peak_at_table3_bandwidth() {
        // Table 3: 5.5 GB/s → peak 687.5 MFLOPS; sustained 557 is 80 %.
        let peak = io_bound_peak_dot(5.5e9);
        assert!((peak / 1e6 - 687.5).abs() < 1.0, "got {peak}");
        assert!((557e6 / peak - 0.80).abs() < 0.02);
    }

    #[test]
    fn mvm_peak_at_table3_bandwidth() {
        // Table 3: 5.6 GB/s → peak 1.4 GFLOPS; sustained 1355 is ~97 %.
        let peak = io_bound_peak_mvm(5.6e9);
        assert!((peak / 1e9 - 1.4).abs() < 0.01, "got {peak}");
        assert!((1355e6 / peak - 0.97).abs() < 0.01);
    }

    #[test]
    fn mvm_peak_at_dram_bandwidth() {
        // §6.2: 1.3 GB/s DRAM → 325 MFLOPS peak; sustained 262 is 80.6 %.
        let peak = io_bound_peak_mvm(1.3e9);
        assert!((peak / 1e6 - 325.0).abs() < 0.5, "got {peak}");
        assert!((262e6 / peak - 0.806).abs() < 0.01);
    }

    #[test]
    fn device_peak_is_4_42_gflops() {
        let peak = device_peak_flops(&XC2VP50, &AreaModel::default(), 170.0);
        assert!((peak / 1e9 - 4.42).abs() < 0.01, "got {peak}");
        // Table 4: the MM design sustains 2.06 GFLOPS, a bit under 50 %.
        let frac = 2.06e9 / peak;
        assert!((frac - 0.466).abs() < 0.01, "got {frac}");
    }
}
