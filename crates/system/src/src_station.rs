//! SRC `MAPstation` platform model (paper §3.1.1, Figure 3).
//!
//! A `MAPstation` pairs an Intel microprocessor with a *MAP processor*: two
//! user FPGAs plus an FPGA-based controller, each user FPGA with six banks
//! of on-board SRAM. It appears in the paper as the second column of
//! Table 1 and as evidence that the computational model of §3.2
//! generalizes beyond XD1.

use fblas_mem::MemoryHierarchy;

/// The SRC `MAPstation` as seen from one MAP processor.
#[derive(Debug, Clone, PartialEq)]
pub struct SrcMapStation {
    /// User FPGAs per MAP processor.
    pub fpgas: usize,
    /// SRAM banks per user FPGA.
    pub sram_banks_per_fpga: usize,
    /// The Table 1 memory hierarchy.
    pub mem: MemoryHierarchy,
    /// SRAM→FPGA read bandwidth (Table 1 Level B: 4.8 GB/s).
    pub sram_read_bytes_per_s: f64,
}

impl Default for SrcMapStation {
    fn default() -> Self {
        let mem = MemoryHierarchy::src_mapstation();
        Self {
            fpgas: 2,
            sram_banks_per_fpga: 6,
            sram_read_bytes_per_s: mem.b.bandwidth_bytes_per_s,
            mem,
        }
    }
}

impl SrcMapStation {
    /// Total SRAM words available to the MAP processor.
    pub fn sram_words(&self) -> u64 {
        self.mem.b.capacity_words()
    }

    /// Words per cycle the SRAM read path sustains at `clock_mhz`.
    ///
    /// At 170 MHz this is ≈3.5 words/cycle: the SRC platform supports a
    /// k = 2 tree design at full rate but not k = 4 — the kind of
    /// platform-driven k selection §4.4 describes for XD1.
    pub fn sram_words_per_cycle(&self, clock_mhz: f64) -> f64 {
        self.sram_read_bytes_per_s / 8.0 / (clock_mhz * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let s = SrcMapStation::default();
        assert_eq!(s.fpgas, 2);
        assert_eq!(s.sram_banks_per_fpga, 6);
        assert_eq!(s.mem.platform, "SRC MAPstation");
        assert_eq!(s.sram_words(), 3 * 1024 * 1024);
    }

    #[test]
    fn hierarchy_is_well_formed() {
        assert!(SrcMapStation::default().mem.is_well_formed());
    }

    #[test]
    fn sram_rate_supports_k2_not_k4() {
        let s = SrcMapStation::default();
        let wpc = s.sram_words_per_cycle(170.0);
        assert!((wpc - 3.53).abs() < 0.01, "got {wpc}");
        // k = 2 dot product needs 2k = 4 > 3.5: even k = 2 dot is
        // DRAM-starved on SRC, but k = 2 MvM (2 words/cycle) fits.
        assert!(wpc > 2.0 && wpc < 4.0);
    }
}
