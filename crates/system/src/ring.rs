//! Cycle-stepped model of the chassis interconnect ring.
//!
//! §6.4 argues feasibility analytically: the hierarchical design moves
//! three m×m blocks between neighbours every m²b/(k·l) cycles, needing
//! 73.1 MB/s against RocketI/O links that provide far more. This model
//! *measures* the same thing: blocks are injected at FPGA 0 on the
//! design's schedule, forwarded hop by hop through bandwidth-limited
//! links, and the simulation reports whether deliveries kept up with the
//! injection interval and how deep the per-hop queues grew.
//!
//! The model is generic over rates, so the tests also exercise the
//! infeasible regime (starved links ⇒ growing queues), demonstrating the
//! check is not vacuous.

use fblas_sim::Throttle;
use std::collections::VecDeque;

/// Configuration of one ring transfer pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingConfig {
    /// Number of FPGAs in the linear array (hops = l − 1).
    pub l: usize,
    /// Words per block transferred to the next neighbour.
    pub block_words: u64,
    /// Blocks injected at FPGA 0 per interval (the design's "three m×m
    /// blocks").
    pub blocks_per_interval: u64,
    /// Injection interval in cycles (m²b/(k·l) for the §5.2 schedule).
    pub interval_cycles: u64,
    /// Link bandwidth in words per cycle (RocketI/O rate at the design
    /// clock).
    pub link_words_per_cycle: f64,
}

impl RingConfig {
    /// The §6.4.1 chassis operating point: k = m = 8, b = 2048, l = 6 at
    /// 130 MHz with ~2 GB/s RocketI/O links.
    pub fn xd1_chassis() -> Self {
        let (k, m, b, l) = (8u64, 8u64, 2048u64, 6usize);
        Self {
            l,
            block_words: m * m,
            blocks_per_interval: 3,
            interval_cycles: m * m * b / (k * l as u64),
            link_words_per_cycle: 2.0e9 / 8.0 / 130.0e6,
        }
    }

    /// Demand in words per cycle (an honest zero for a degenerate
    /// zero-cycle interval, never a NaN — see [`crate::rate`]).
    pub fn demand_words_per_cycle(&self) -> f64 {
        crate::rate::rate_or_zero(
            (self.blocks_per_interval * self.block_words) as f64,
            self.interval_cycles as f64,
        )
    }
}

/// Measured outcome of a ring simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Blocks fully delivered to the last FPGA.
    pub blocks_delivered: u64,
    /// Deepest per-hop backlog observed, in words.
    pub max_queue_words: u64,
    /// Worst delivery lag of any block behind its ideal pipeline time,
    /// in cycles.
    pub worst_lag_cycles: u64,
    /// Whether the steady state kept up (no growing backlog).
    pub sustainable: bool,
}

/// Simulate `intervals` injection intervals through the ring.
pub fn simulate_ring(cfg: &RingConfig, intervals: u64) -> RingStats {
    assert!(cfg.l >= 2, "a ring transfer needs at least two FPGAs");
    let hops = cfg.l - 1;
    // Per-hop outgoing queues (words remaining of each in-flight block,
    // tagged with its injection cycle).
    let mut queues: Vec<VecDeque<(u64, u64)>> = vec![VecDeque::new(); hops];
    let mut links: Vec<Throttle> = (0..hops)
        .map(|_| Throttle::new(cfg.link_words_per_cycle))
        .collect();
    let mut delivered = 0u64;
    let mut max_queue = 0u64;
    let mut worst_lag = 0u64;

    let total_cycles = cfg.interval_cycles * intervals + cfg.interval_cycles;
    // Ideal pipeline time for one block through all hops at full link rate.
    let ideal = (hops as f64 * cfg.block_words as f64 / cfg.link_words_per_cycle).ceil() as u64;

    for cycle in 0..total_cycles {
        // Inject at the interval boundary.
        if cycle % cfg.interval_cycles == 0 && cycle / cfg.interval_cycles < intervals {
            for _ in 0..cfg.blocks_per_interval {
                queues[0].push_back((cfg.block_words, cycle));
            }
        }
        // Move words across each hop.
        for h in 0..hops {
            links[h].tick();
            let budget = links[h].grant_up_to(cfg.block_words);
            let mut remaining = budget;
            while remaining > 0 {
                match queues[h].front_mut() {
                    None => break,
                    Some((words, injected)) => {
                        let moved = remaining.min(*words);
                        *words -= moved;
                        remaining -= moved;
                        if *words == 0 {
                            let (_, injected) = (*words, *injected);
                            queues[h].pop_front();
                            if h + 1 < hops {
                                queues[h + 1].push_back((cfg.block_words, injected));
                            } else {
                                delivered += 1;
                                let lag = (cycle + 1 - injected).saturating_sub(ideal);
                                worst_lag = worst_lag.max(lag);
                            }
                        }
                    }
                }
            }
        }
        let depth: u64 = queues
            .iter()
            .map(|q| q.iter().map(|(w, _)| *w).sum::<u64>())
            .max()
            .unwrap_or(0);
        max_queue = max_queue.max(depth);
    }

    let expected = cfg.blocks_per_interval * intervals;
    RingStats {
        cycles: total_cycles,
        blocks_delivered: delivered,
        max_queue_words: max_queue,
        worst_lag_cycles: worst_lag,
        // Sustainable if everything injected was delivered and no hop is
        // holding more than one interval's worth of traffic.
        sustainable: delivered == expected
            && max_queue <= cfg.blocks_per_interval * cfg.block_words * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xd1_chassis_links_keep_up() {
        // §6.4.1's feasibility claim, measured: demand 0.047 words/cycle
        // against 1.9 words/cycle of link capacity.
        let cfg = RingConfig::xd1_chassis();
        assert!(cfg.demand_words_per_cycle() < 0.1);
        let stats = simulate_ring(&cfg, 20);
        assert!(stats.sustainable, "{stats:?}");
        assert_eq!(stats.blocks_delivered, 60);
        // Queues never hold more than the burst being forwarded.
        assert!(stats.max_queue_words <= 3 * cfg.block_words, "{stats:?}");
    }

    #[test]
    fn starved_links_detected_as_unsustainable() {
        // Cut the link rate below the demand: the backlog must grow and
        // the check must fail — the model is falsifiable.
        let mut cfg = RingConfig::xd1_chassis();
        cfg.link_words_per_cycle = cfg.demand_words_per_cycle() * 0.5;
        let stats = simulate_ring(&cfg, 20);
        assert!(!stats.sustainable, "{stats:?}");
    }

    #[test]
    fn exactly_critical_rate_is_marginal_but_delivers() {
        let mut cfg = RingConfig::xd1_chassis();
        cfg.link_words_per_cycle = cfg.demand_words_per_cycle() * 1.25;
        let stats = simulate_ring(&cfg, 10);
        assert_eq!(stats.blocks_delivered, 30, "{stats:?}");
    }

    #[test]
    fn two_fpga_ring_minimal() {
        let cfg = RingConfig {
            l: 2,
            block_words: 16,
            blocks_per_interval: 1,
            interval_cycles: 64,
            link_words_per_cycle: 1.0,
        };
        let stats = simulate_ring(&cfg, 5);
        assert!(stats.sustainable);
        assert_eq!(stats.blocks_delivered, 5);
        assert_eq!(stats.worst_lag_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_fpga_rejected() {
        simulate_ring(
            &RingConfig {
                l: 1,
                block_words: 1,
                blocks_per_interval: 1,
                interval_cycles: 1,
                link_words_per_cycle: 1.0,
            },
            1,
        );
    }
}
