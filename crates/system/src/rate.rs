//! Clamped-denominator rate arithmetic shared by the platform models.
//!
//! The projection and interconnect formulas are ratios — words per
//! cycle, bytes per second, PEs per device — and a degenerate operating
//! point (zero FPGAs, a zero-cycle interval, a zero-slice PE) turns a
//! naive division into `NaN` or `±inf`. Those values then leak into
//! JSON records (where the canonical writer spells non-finite numbers
//! as `null`) and comparisons (where every `NaN` ordering is false), so
//! a nonsense configuration would *pass* gates instead of failing them.
//! The helpers here pin the convention once: a rate over a degenerate
//! denominator is an honest zero, never a NaN.

/// `numer / denom`, clamped: zero when the denominator is zero,
/// negative or non-finite, or when the numerator is non-finite. A
/// degenerate operating point has no sustained rate, so the honest
/// answer is 0, not `NaN`/`inf`.
pub fn rate_or_zero(numer: f64, denom: f64) -> f64 {
    if !numer.is_finite() || !denom.is_finite() || denom <= 0.0 {
        return 0.0;
    }
    let rate = numer / denom;
    if rate.is_finite() {
        rate
    } else {
        0.0
    }
}

/// Integer capacity division: how many units of size `per` fit in
/// `total`, zero when `per` is zero (a zero-size unit fits nowhere
/// meaningful, and the projection treats it as "no PEs fit").
pub fn units_per(total: u32, per: u32) -> u32 {
    total.checked_div(per).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_rates_divide() {
        assert!((rate_or_zero(6.0, 3.0) - 2.0).abs() < 1e-15);
        assert!((rate_or_zero(0.0, 5.0)).abs() < 1e-15);
    }

    #[test]
    fn degenerate_denominators_are_honest_zeros() {
        assert_eq!(rate_or_zero(1.0, 0.0), 0.0);
        assert_eq!(rate_or_zero(1.0, -2.0), 0.0);
        assert_eq!(rate_or_zero(1.0, f64::NAN), 0.0);
        assert_eq!(rate_or_zero(1.0, f64::INFINITY), 0.0);
        assert_eq!(rate_or_zero(f64::NAN, 1.0), 0.0);
        // The result is pinned finite even for extreme ratios.
        assert!(rate_or_zero(f64::MAX, f64::MIN_POSITIVE).is_finite());
    }

    #[test]
    fn units_per_clamps_zero_divisors() {
        assert_eq!(units_per(23_616, 1_600), 14);
        assert_eq!(units_per(100, 0), 0);
        assert_eq!(units_per(0, 7), 0);
    }
}
