//! Slice-count area model, calibrated to the paper's place-&-route results.
//!
//! The model composes unit areas (Table 2) with a per-multiplier control
//! overhead calibrated against the Table 3 design areas:
//!
//! * dot product, k=2: model 5220 slices vs paper 5210 (+0.2 %)
//! * matrix-vector, k=4: model 9674 slices vs paper 9669 (+0.05 %)
//!
//! The XD1 infrastructure (RT core, four SRAM memory controllers, status
//! registers) is calibrated to the Table 3 → Table 4 area jump of the
//! Level-2 design (13772 − 9669 = 4103 slices); with that value the model
//! also predicts the paper's "at most 8 PEs with the RT core" and "at most
//! 10 PEs without it" capacity limits exactly. (The paper's §6.2 text says
//! "approximately 3000 slices"; its own tables imply 4103 — we follow the
//! tables.)

use crate::device::FpgaDevice;
use fblas_fpu::{FP_ADDER, FP_MULTIPLIER};

/// Area cost model for the paper's designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Slices of one floating-point adder.
    pub adder_slices: u32,
    /// Slices of one floating-point multiplier.
    pub multiplier_slices: u32,
    /// Slices of the reduction circuit (Table 2: 1658, dominated by
    /// control logic around the single adder).
    pub reduction_slices: u32,
    /// Control/datapath overhead per multiplier lane in the tree designs
    /// (calibrated to Table 3).
    pub control_per_lane: u32,
    /// Slices of one matrix-multiply PE (adder + multiplier + registers +
    /// local-store addressing; §5.3: 2158).
    pub pe_slices: u32,
    /// XD1 infrastructure: RT core + SRAM controllers + status registers
    /// (calibrated to Tables 3/4: 4103).
    pub xd1_infra_slices: u32,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            adder_slices: FP_ADDER.area_slices,
            multiplier_slices: FP_MULTIPLIER.area_slices,
            reduction_slices: 1658,
            control_per_lane: 500,
            pe_slices: 2158,
            xd1_infra_slices: 4103,
        }
    }
}

impl AreaModel {
    /// Area of the tree-based dot-product design with `k` multipliers:
    /// k multipliers, a (k−1)-adder tree, the reduction circuit, control.
    pub fn dot_design(&self, k: u32) -> u32 {
        assert!(k >= 1);
        k * self.multiplier_slices
            + (k - 1) * self.adder_slices
            + self.reduction_slices
            + k * self.control_per_lane
    }

    /// Area of the tree-based matrix-vector design with `k` multipliers
    /// (same structure as dot product plus per-lane x storage addressing,
    /// absorbed in the control constant).
    pub fn mvm_design(&self, k: u32) -> u32 {
        self.dot_design(k)
    }

    /// Area of the single-FPGA matrix-multiply design: a linear array of
    /// `k` PEs (Figure 9 shows the linear growth).
    pub fn mm_design(&self, k: u32) -> u32 {
        k * self.pe_slices
    }

    /// Area of the hierarchical matrix-multiply node on XD1: k PEs, the
    /// extra accumulating adder of Figure 8, and the XD1 infrastructure.
    pub fn mm_design_xd1(&self, k: u32) -> u32 {
        self.mm_design(k) + self.adder_slices + self.xd1_infra_slices
    }

    /// Area of the Level-2 design as deployed on XD1 (Table 4).
    pub fn mvm_design_xd1(&self, k: u32) -> u32 {
        self.mvm_design(k) + self.xd1_infra_slices
    }

    /// Maximum number of matrix-multiply PEs configurable on a bare device
    /// (no XD1 infrastructure) — the Figure 9 limit.
    pub fn max_pes(&self, device: &FpgaDevice) -> u32 {
        device.slices / self.pe_slices
    }

    /// Maximum PEs on XD1, after the RT core, memory controllers and the
    /// hierarchical design's extra adder take their share (§6.3 limit).
    pub fn max_pes_xd1(&self, device: &FpgaDevice) -> u32 {
        (device.slices - self.xd1_infra_slices - self.adder_slices) / self.pe_slices
    }

    /// Maximum number of adder+multiplier pairs on a device, the basis of
    /// the §6.3 device-peak calculation.
    pub fn max_fp_pairs(&self, device: &FpgaDevice) -> u32 {
        device.slices / (self.adder_slices + self.multiplier_slices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{XC2VP100, XC2VP50};

    #[test]
    fn table3_dot_area_within_half_percent() {
        let m = AreaModel::default();
        let a = m.dot_design(2);
        assert!(
            (f64::from(a) - 5210.0).abs() / 5210.0 < 0.005,
            "model {a} vs paper 5210"
        );
    }

    #[test]
    fn table3_mvm_area_within_half_percent() {
        let m = AreaModel::default();
        let a = m.mvm_design(4);
        assert!(
            (f64::from(a) - 9669.0).abs() / 9669.0 < 0.005,
            "model {a} vs paper 9669"
        );
    }

    #[test]
    fn table4_mvm_xd1_area_within_ten_slices() {
        let m = AreaModel::default();
        let a = m.mvm_design_xd1(4);
        assert!(
            (i64::from(a) - 13772).abs() <= 10,
            "model {a} vs paper 13772"
        );
    }

    #[test]
    fn fig9_area_linear_in_k() {
        let m = AreaModel::default();
        for k in 1..=10 {
            assert_eq!(m.mm_design(k), k * 2158);
        }
    }

    #[test]
    fn max_pes_matches_paper_limits() {
        let m = AreaModel::default();
        // §5.3: at most 10 PEs on a bare XC2VP50.
        assert_eq!(m.max_pes(&XC2VP50), 10);
        // §6.3: at most 8 PEs once the RT core and controllers are in.
        assert_eq!(m.max_pes_xd1(&XC2VP50), 8);
        // §6.4: XC2VP100 has about twice the slices.
        assert_eq!(m.max_pes(&XC2VP100), 20);
    }

    #[test]
    fn max_fp_pairs_gives_device_peak_basis() {
        let m = AreaModel::default();
        // §6.3: 13 pairs × 2 flops × 170 MHz = 4.42 GFLOPS.
        assert_eq!(m.max_fp_pairs(&XC2VP50), 13);
    }

    #[test]
    fn occupancy_fractions_match_table3() {
        let m = AreaModel::default();
        let dot_frac = XC2VP50.occupancy(m.dot_design(2));
        let mvm_frac = XC2VP50.occupancy(m.mvm_design(4));
        assert!((dot_frac - 0.22).abs() < 0.01, "dot {dot_frac}");
        assert!((mvm_frac - 0.41).abs() < 0.01, "mvm {mvm_frac}");
    }

    #[test]
    fn mm_xd1_area_near_table4() {
        // Table 4 reports 21029 slices (89 %) for k=8; the model's
        // composition gives the same occupancy to within a few percent.
        let m = AreaModel::default();
        let a = m.mm_design_xd1(8);
        assert!(
            (f64::from(a) - 21029.0).abs() / 21029.0 < 0.07,
            "model {a} vs paper 21029"
        );
        assert!(XC2VP50.fits(a));
    }
}
