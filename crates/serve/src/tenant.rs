//! Tenants: arrival processes and admission control.
//!
//! Each campaign cell serves one or more named tenants. A tenant owns a
//! FIFO request queue and two independent admission-control knobs:
//!
//! * a **queue-depth limit** — arrivals finding the queue full are
//!   rejected immediately (`rejected_queue` in the record), and
//! * an optional **token bucket** — a classic integer-rate limiter;
//!   arrivals finding the bucket empty are rejected
//!   (`rejected_tokens`).
//!
//! Rejections are *honest*: every turned-away request stays on the
//! books, and the `fblas-check` conservation rule proves that arrivals
//! = completed + rejected + in-flight for every tenant in every
//! committed store.

use crate::rng::{sample_exp_ns, SplitMix64};

/// How a tenant generates load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Open loop: a Poisson-like stream with exponential gaps of the
    /// given mean, independent of service progress (models external
    /// traffic; overload is possible and is the interesting regime).
    Open {
        /// Mean interarrival gap in ns.
        mean_gap_ns: u64,
    },
    /// Closed loop: a fixed population of clients, each thinking for an
    /// exponential gap after its previous request resolves (completes
    /// *or* is rejected) before issuing the next. Concurrency is
    /// bounded by `clients`, so offered load self-throttles.
    Closed {
        /// Number of concurrent clients.
        clients: u64,
        /// Mean think time between a resolution and the next request, ns.
        mean_think_ns: u64,
    },
}

impl ArrivalProcess {
    /// The gap before a tenant's next request, sampled from its stream.
    pub fn next_gap_ns(&self, rng: &mut SplitMix64) -> u64 {
        match *self {
            ArrivalProcess::Open { mean_gap_ns } => sample_exp_ns(rng, mean_gap_ns),
            ArrivalProcess::Closed { mean_think_ns, .. } => sample_exp_ns(rng, mean_think_ns),
        }
    }
}

/// An integer-rate token bucket.
///
/// Credits accrue one token per `ns_per_token` nanoseconds up to
/// `capacity`; [`TokenBucket::try_take`] refreshes lazily from the
/// event clock, so no refill events are needed and the arithmetic is
/// exact (the un-credited remainder is carried in `last_credit_ns`).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: u64,
    ns_per_token: u64,
    tokens: u64,
    last_credit_ns: u64,
}

impl TokenBucket {
    /// A bucket starting full.
    ///
    /// # Panics
    /// Panics if `capacity` or `ns_per_token` is zero.
    pub fn new(capacity: u64, ns_per_token: u64) -> Self {
        assert!(capacity >= 1, "a zero-capacity bucket admits nothing");
        assert!(ns_per_token >= 1, "token refill interval must be positive");
        Self {
            capacity,
            ns_per_token,
            tokens: capacity,
            last_credit_ns: 0,
        }
    }

    /// Take one token at time `now`, crediting lazily first.
    ///
    /// # Panics
    /// Panics if `now` moves backwards — the event clock is monotone.
    pub fn try_take(&mut self, now: u64) -> bool {
        assert!(
            now >= self.last_credit_ns,
            "token bucket clock went backwards"
        );
        let credits = (now - self.last_credit_ns) / self.ns_per_token;
        self.tokens = (self.tokens + credits).min(self.capacity);
        self.last_credit_ns += credits * self.ns_per_token;
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }
}

/// Static description of one tenant in a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant name, unique within the cell.
    pub name: String,
    /// Load generator.
    pub arrival: ArrivalProcess,
    /// Maximum queued (admitted, not yet dispatched) requests.
    pub queue_limit: usize,
    /// Optional token bucket as `(capacity, ns_per_token)`.
    pub tokens: Option<(u64, u64)>,
}

impl TenantSpec {
    /// An open-loop tenant with the given mean gap and queue limit, no
    /// token bucket.
    pub fn open(name: &str, mean_gap_ns: u64, queue_limit: usize) -> Self {
        Self {
            name: name.to_string(),
            arrival: ArrivalProcess::Open { mean_gap_ns },
            queue_limit,
            tokens: None,
        }
    }

    /// A closed-loop tenant with the given population and think time.
    pub fn closed(name: &str, clients: u64, mean_think_ns: u64, queue_limit: usize) -> Self {
        Self {
            name: name.to_string(),
            arrival: ArrivalProcess::Closed {
                clients,
                mean_think_ns,
            },
            queue_limit,
            tokens: None,
        }
    }

    /// Attach a token bucket (`capacity` tokens, one credit per
    /// `ns_per_token` ns).
    #[must_use]
    pub fn with_tokens(mut self, capacity: u64, ns_per_token: u64) -> Self {
        self.tokens = Some((capacity, ns_per_token));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_starts_full_and_refills_lazily() {
        let mut b = TokenBucket::new(2, 100);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "capacity 2 is exhausted");
        assert!(!b.try_take(99), "no full refill interval has elapsed");
        assert!(b.try_take(100), "one credit at t=100");
        assert!(!b.try_take(100));
        // Credits cap at capacity: a long idle stretch grants 2, not 10.
        assert!(b.try_take(10_000));
        assert!(b.try_take(10_000));
        assert!(!b.try_take(10_000));
    }

    #[test]
    fn bucket_carries_the_fractional_remainder() {
        let mut b = TokenBucket::new(1, 100);
        assert!(b.try_take(0));
        // 150 ns grants one credit and banks 50 ns toward the next.
        assert!(b.try_take(150));
        assert!(!b.try_take(199), "only 49 more ns accrued");
        assert!(b.try_take(200), "the banked remainder completes at 200");
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_bucket_rejected() {
        TokenBucket::new(0, 100);
    }

    #[test]
    fn arrival_gaps_follow_the_process() {
        let mut rng = SplitMix64::new(3);
        let open = ArrivalProcess::Open { mean_gap_ns: 1_000 };
        let closed = ArrivalProcess::Closed {
            clients: 4,
            mean_think_ns: 1_000,
        };
        // Both sample from the same exponential table; gaps are finite
        // and occasionally exceed the mean (heavy right tail).
        let gaps: Vec<u64> = (0..64).map(|_| open.next_gap_ns(&mut rng)).collect();
        assert!(gaps.iter().any(|&g| g > 1_000));
        assert!(gaps.iter().any(|&g| g < 1_000));
        let _ = closed.next_gap_ns(&mut rng);
    }
}
