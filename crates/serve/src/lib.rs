//! BLAS-as-a-service: a deterministic request front end over the
//! simulated FPGA fleet.
//!
//! The SC'05 designs are evaluated one kernel invocation at a time, but
//! a reconfigurable node in a real machine room is *shared*: multiple
//! tenants submit streams of BLAS requests and the node must decide
//! what to admit, how to batch and what latency it can promise. This
//! crate models that front end without sacrificing the workspace's
//! determinism contract:
//!
//! * [`rng`] — seeded `SplitMix64` streams and a fixed-point
//!   exponential quantile table (no libm, bit-identical everywhere).
//! * [`profile`] — batchable [`ShapeClass`]es calibrated against the
//!   real instrumented designs; service times in integer nanoseconds at
//!   each design's own clock, so the 170 MHz dot tree and the 164 MHz
//!   Level-2 `MvM` share one timeline.
//! * [`tenant`] — open- and closed-loop arrival generators plus
//!   admission control: FIFO queue-depth limits and integer token
//!   buckets, with honest reject accounting.
//! * [`engine`] — the discrete-event loop on
//!   [`fblas_sim::EventQueue`]: batches pack same-class requests so the
//!   DRAM->SRAM staging (the 8.0 ms vs 1.6 ms split of paper Table 4)
//!   is paid once per batch instead of once per request.
//!
//! Output is a [`fblas_metrics::ServeRecord`] per cell — counters that
//! conserve (`arrivals = completed + rejected + in-flight`, proven by
//! `fblas-check`), latency digests with p50/p95/p99/p999, throughput
//! and an SLO verdict — persisted to `SERVE_<n>.json` by `observatory
//! serve` and byte-identical at any worker count and under every
//! execution backend.

#![forbid(unsafe_code)]

pub mod engine;
pub mod profile;
pub mod rng;
pub mod tenant;

pub use engine::{run_cell, CellSpec};
pub use profile::{calibrate, cycles_to_ns, KernelFamily, ServiceProfile, ShapeClass};
pub use rng::{sample_exp_ns, SplitMix64, EXP_ICDF_MICRO};
pub use tenant::{ArrivalProcess, TenantSpec, TokenBucket};
