//! Seeded integer randomness for the arrival generators.
//!
//! The serving front end must be byte-deterministic across platforms,
//! so it cannot sample exponential interarrival gaps the usual way
//! (`-mean * ln(u)`): `f64::ln` goes through libm and is not guaranteed
//! bit-identical everywhere. Instead the exponential inverse CDF is
//! baked in as a 64-point fixed-point quantile table ([`EXP_ICDF_MICRO`])
//! and the generator draws table indices from a [`SplitMix64`] stream —
//! integer arithmetic end to end, identical on every host.

/// `SplitMix64`: the tiny, well-mixed 64-bit generator (Steele et al.),
/// used here both as the arrival stream and to derive per-tenant seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }
}

/// The exponential(1) inverse CDF sampled at the 64 stratum midpoints
/// `(i + 0.5) / 64`, in micro-units: entry `i` is
/// `round(-ln((i + 0.5) / 64) * 1e6)`. Drawing a uniform index and
/// scaling by the mean yields exponential variates with relative mean
/// error under 1 % — ample fidelity for arrival modeling — without any
/// floating-point transcendental.
pub const EXP_ICDF_MICRO: [u64; 64] = [
    4852030, 3753418, 3242592, 2906120, 2654806, 2454135, 2287081, 2143980, 2018817, 1907591,
    1807508, 1716536, 1633154, 1556193, 1484734, 1418043, 1355523, 1296682, 1241112, 1188469,
    1138458, 1090830, 1045368, 1001883, 960210, 920205, 881738, 844697, 808979, 774493, 741156,
    708896, 677643, 647338, 617924, 589350, 561571, 534542, 508225, 482582, 457581, 433190, 409379,
    386122, 363394, 341171, 319431, 298153, 277319, 256910, 236910, 217301, 198070, 179201, 160682,
    142500, 124642, 107098, 89856, 72907, 56240, 39846, 23717, 7843,
];

/// An exponential gap with the given mean, in integer nanoseconds.
pub fn sample_exp_ns(rng: &mut SplitMix64, mean_ns: u64) -> u64 {
    let q = EXP_ICDF_MICRO[rng.below(EXP_ICDF_MICRO.len() as u64) as usize];
    ((u128::from(mean_ns) * u128::from(q)) / 1_000_000) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Adjacent seeds must not produce adjacent streams.
        let mut c = SplitMix64::new(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn exp_table_mean_is_close_to_unity() {
        // The stratified table's mean is the midpoint-quadrature estimate
        // of E[exp(1)] = 1; it must land within 1 %.
        let sum: u64 = EXP_ICDF_MICRO.iter().sum();
        let mean_micro = sum / EXP_ICDF_MICRO.len() as u64;
        assert!(
            (994_000..=1_001_000).contains(&mean_micro),
            "table mean {mean_micro} micro-units is off"
        );
        // And it is strictly decreasing (it is an inverse survival
        // function evaluated left to right).
        assert!(EXP_ICDF_MICRO.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn sampled_gaps_scale_with_the_mean() {
        let mut rng = SplitMix64::new(11);
        let n = 4096;
        let sum: u128 = (0..n)
            .map(|_| u128::from(sample_exp_ns(&mut rng, 10_000)))
            .sum();
        let mean = (sum / n as u128) as u64;
        assert!(
            (9_000..=11_000).contains(&mean),
            "empirical mean {mean} ns is not near 10000 ns"
        );
    }
}
