//! The discrete-event serving engine.
//!
//! One [`CellSpec`] describes a campaign cell: a batchable request
//! class, a set of tenants, a batch limit, an arrival horizon and an
//! SLO target. [`run_cell`] calibrates the class against the real
//! design on the worker's harness, then replays seeded arrivals through
//! a single-fleet discrete-event simulation on
//! [`fblas_sim::EventQueue`] — whose `(time, seq)` ordering makes the
//! loop FIFO-among-equals and therefore fully deterministic — and
//! distills the run into a [`ServeRecord`].
//!
//! Scheduling model: the fleet serves one batch at a time. When it goes
//! idle it packs up to `max_batch` queued requests, oldest first across
//! tenants (ties broken by tenant order), pays the class's DRAM->SRAM
//! staging **once** for the batch (shared operand + per-request
//! operands, burst-granular), then serves the requests back to back at
//! the calibrated service time. A request admitted at time `a` and
//! finishing service at time `f` contributes latency `f - a`.
//!
//! After the arrival horizon the generators stop. A *draining* cell
//! keeps dispatching until the queues empty; a non-draining cell stops
//! dispatching at the horizon and reports whatever is still queued as
//! `in_flight` — the third leg of the conservation identity.

use std::collections::VecDeque;

use fblas_mem::BatchStaging;
use fblas_metrics::{LatencyDigest, ServeRecord, TenantRecord};
use fblas_sim::{EventQueue, Harness, LogHistogram};

use crate::profile::{calibrate, ShapeClass};
use crate::rng::SplitMix64;
use crate::tenant::{ArrivalProcess, TenantSpec, TokenBucket};

/// Static description of one serving-campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Cell identity, unique within a campaign, e.g. `mvm128/open/b8`.
    pub name: String,
    /// The batchable request class every tenant submits.
    pub class: ShapeClass,
    /// The tenants, in book-keeping order.
    pub tenants: Vec<TenantSpec>,
    /// Arrival-stream seed.
    pub seed: u64,
    /// Maximum requests per batch (1 disables batching).
    pub max_batch: u64,
    /// Whether to keep dispatching after the horizon until empty.
    pub drain: bool,
    /// Arrival horizon in ns.
    pub horizon_ns: u64,
    /// Window width for the per-tenant completion/rejection series, ns.
    pub window_ns: u64,
    /// p99 completion-latency target, ns.
    pub slo_p99_ns: u64,
}

/// Events on the cell timeline.
enum Ev {
    /// A request from tenant `usize` arrives at the front door.
    Arrival(usize),
    /// The in-flight batch finishes; the fleet goes idle.
    BatchDone,
}

/// Mutable per-tenant books during a run.
struct TenantState {
    rng: SplitMix64,
    bucket: Option<TokenBucket>,
    queue: VecDeque<u64>,
    arrivals: u64,
    rejected_queue: u64,
    rejected_tokens: u64,
    completed: u64,
    latency: LogHistogram,
}

/// What happened to one request, stamped for the windowed series.
enum Outcome {
    Completed(u64),
    Rejected(u64),
}

/// Run one cell on the worker's harness and return its record.
///
/// # Panics
/// Panics on degenerate specs: no tenants, `max_batch == 0`,
/// `window_ns == 0` or `horizon_ns == 0`.
pub fn run_cell(harness: &mut Harness, spec: &CellSpec) -> ServeRecord {
    assert!(
        !spec.tenants.is_empty(),
        "{}: a cell needs tenants",
        spec.name
    );
    assert!(
        spec.max_batch >= 1,
        "{}: max_batch must be at least 1",
        spec.name
    );
    assert!(
        spec.window_ns >= 1,
        "{}: window must be at least 1 ns",
        spec.name
    );
    assert!(
        spec.horizon_ns >= 1,
        "{}: horizon must be at least 1 ns",
        spec.name
    );

    let profile = calibrate(harness, &spec.class);
    let staging = BatchStaging::xd1();

    let mut states: Vec<TenantState> = spec
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| TenantState {
            // Mix the tenant index into the cell seed through the
            // generator itself so tenant streams are independent.
            rng: SplitMix64::new(
                SplitMix64::new(spec.seed ^ (i as u64).wrapping_mul(0x9E37_79B9)).next_u64(),
            ),
            bucket: t.tokens.map(|(cap, ns)| TokenBucket::new(cap, ns)),
            queue: VecDeque::new(),
            arrivals: 0,
            rejected_queue: 0,
            rejected_tokens: 0,
            completed: 0,
            latency: LogHistogram::default(),
        })
        .collect();

    let mut q: EventQueue<Ev> = EventQueue::new();
    for (i, t) in spec.tenants.iter().enumerate() {
        match t.arrival {
            ArrivalProcess::Open { .. } => {
                let gap = t.arrival.next_gap_ns(&mut states[i].rng);
                if gap <= spec.horizon_ns {
                    q.push(gap, Ev::Arrival(i));
                }
            }
            ArrivalProcess::Closed { clients, .. } => {
                for _ in 0..clients {
                    let gap = t.arrival.next_gap_ns(&mut states[i].rng);
                    if gap <= spec.horizon_ns {
                        q.push(gap, Ev::Arrival(i));
                    }
                }
            }
        }
    }

    let mut fleet_latency = LogHistogram::default();
    let mut outcomes: Vec<(usize, Outcome)> = Vec::new();
    let mut busy_until = 0u64;
    let mut elapsed = 0u64;
    let mut batches = 0u64;
    let mut staging_total = 0u64;
    let mut compute_total = 0u64;

    while let Some((now, ev)) = q.pop() {
        elapsed = elapsed.max(now);
        match ev {
            Ev::Arrival(i) => {
                let t = &spec.tenants[i];
                let st = &mut states[i];
                st.arrivals += 1;
                let admitted = if st.queue.len() >= t.queue_limit {
                    st.rejected_queue += 1;
                    false
                } else if st.bucket.as_mut().is_some_and(|b| !b.try_take(now)) {
                    st.rejected_tokens += 1;
                    false
                } else {
                    st.queue.push_back(now);
                    true
                };
                if !admitted {
                    outcomes.push((i, Outcome::Rejected(now)));
                }
                match t.arrival {
                    ArrivalProcess::Open { .. } => {
                        // Open loop: the stream ticks regardless of fate.
                        let next = now + t.arrival.next_gap_ns(&mut st.rng);
                        if next <= spec.horizon_ns {
                            q.push(next, Ev::Arrival(i));
                        }
                    }
                    ArrivalProcess::Closed { .. } => {
                        // Closed loop: a rejected client thinks and
                        // retries; an admitted one reissues on
                        // completion (scheduled at dispatch below).
                        if !admitted {
                            let next = now + t.arrival.next_gap_ns(&mut st.rng);
                            if next <= spec.horizon_ns {
                                q.push(next, Ev::Arrival(i));
                            }
                        }
                    }
                }
            }
            Ev::BatchDone => {}
        }

        // Dispatch whenever the fleet is idle and work may proceed.
        if now >= busy_until && (spec.drain || now < spec.horizon_ns) {
            let mut batch: Vec<(usize, u64)> = Vec::new();
            while (batch.len() as u64) < spec.max_batch {
                // Oldest queued head across tenants, ties to the lower
                // tenant index — deterministic and starvation-free for
                // FIFO queues.
                let next = (0..states.len())
                    .filter_map(|i| states[i].queue.front().map(|&at| (at, i)))
                    .min();
                match next {
                    Some((at, i)) => {
                        states[i].queue.pop_front();
                        batch.push((i, at));
                    }
                    None => break,
                }
            }
            if !batch.is_empty() {
                let stage_ns = staging.batch_ns(
                    profile.shared_bytes,
                    profile.per_request_bytes,
                    batch.len() as u64,
                );
                let mut finish = now + stage_ns;
                for &(i, at) in &batch {
                    finish += profile.service_ns;
                    let lat = finish - at;
                    states[i].latency.record(lat);
                    fleet_latency.record(lat);
                    states[i].completed += 1;
                    outcomes.push((i, Outcome::Completed(finish)));
                    if let ArrivalProcess::Closed { .. } = spec.tenants[i].arrival {
                        let next = finish + spec.tenants[i].arrival.next_gap_ns(&mut states[i].rng);
                        if next <= spec.horizon_ns {
                            q.push(next, Ev::Arrival(i));
                        }
                    }
                }
                batches += 1;
                staging_total += stage_ns;
                compute_total += profile.service_ns * batch.len() as u64;
                busy_until = finish;
                q.push(finish, Ev::BatchDone);
            }
        }
    }

    elapsed = elapsed.max(busy_until);
    let windows = elapsed.div_ceil(spec.window_ns).max(1);

    let mut completions_w: Vec<Vec<u64>> = vec![vec![0; windows as usize]; spec.tenants.len()];
    let mut rejections_w: Vec<Vec<u64>> = vec![vec![0; windows as usize]; spec.tenants.len()];
    for (i, outcome) in &outcomes {
        match *outcome {
            Outcome::Completed(at) => {
                completions_w[*i][((at / spec.window_ns).min(windows - 1)) as usize] += 1;
            }
            Outcome::Rejected(at) => {
                rejections_w[*i][((at / spec.window_ns).min(windows - 1)) as usize] += 1;
            }
        }
    }

    let tenants: Vec<TenantRecord> = spec
        .tenants
        .iter()
        .zip(states.iter())
        .zip(completions_w.into_iter().zip(rejections_w))
        .map(|((t, st), (completions, rejections))| TenantRecord {
            name: t.name.clone(),
            arrivals: st.arrivals,
            rejected_queue: st.rejected_queue,
            rejected_tokens: st.rejected_tokens,
            completed: st.completed,
            in_flight: st.queue.len() as u64,
            latency: LatencyDigest::from_histogram(&st.latency),
            completions,
            rejections,
        })
        .collect();

    let completed: u64 = tenants.iter().map(|t| t.completed).sum();
    let throughput_milli_rps = if elapsed == 0 {
        0
    } else {
        (u128::from(completed) * 1_000_000_000_000u128 / u128::from(elapsed)) as u64
    };
    let latency = LatencyDigest::from_histogram(&fleet_latency);
    ServeRecord {
        cell: spec.name.clone(),
        kernel: spec.class.family.name().to_string(),
        n: spec.class.n as u64,
        seed: spec.seed,
        max_batch: spec.max_batch,
        drain: spec.drain,
        horizon_ns: spec.horizon_ns,
        window_ns: spec.window_ns,
        windows,
        batches,
        staging_ns: staging_total,
        compute_ns: compute_total,
        elapsed_ns: elapsed,
        throughput_milli_rps,
        slo_pass: latency.p99().is_some_and(|p| p <= spec.slo_p99_ns),
        latency,
        slo_p99_ns: spec.slo_p99_ns,
        tenants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::KernelFamily;
    use fblas_sim::ExecBackend;

    fn quick_class() -> ShapeClass {
        ShapeClass {
            family: KernelFamily::Dot,
            n: 64,
        }
    }

    fn open_cell(name: &str, max_batch: u64, drain: bool) -> CellSpec {
        CellSpec {
            name: name.to_string(),
            class: quick_class(),
            tenants: vec![
                TenantSpec::open("alpha", 4_000, 16),
                TenantSpec::open("beta", 9_000, 4).with_tokens(8, 20_000),
            ],
            seed: 2025,
            max_batch,
            drain,
            horizon_ns: 2_000_000,
            window_ns: 250_000,
            slo_p99_ns: 500_000,
        }
    }

    #[test]
    fn every_tenant_conserves_requests() {
        let rec = run_cell(&mut Harness::new(), &open_cell("t/conserve", 8, true));
        for t in &rec.tenants {
            assert_eq!(
                t.arrivals,
                t.completed + t.rejected_queue + t.rejected_tokens + t.in_flight,
                "{}: books do not balance",
                t.name
            );
            // Windowed series must sum to the counters they observe.
            assert_eq!(t.completions.iter().sum::<u64>(), t.completed);
            assert_eq!(t.rejections.iter().sum::<u64>(), t.rejected());
        }
        assert!(rec.offered() > 0);
        assert!(rec.completed() > 0);
        // A drained open-loop cell finishes all admitted work.
        assert_eq!(rec.in_flight(), 0);
    }

    #[test]
    fn batching_amortizes_staging() {
        let unbatched = run_cell(&mut Harness::new(), &open_cell("t/b1", 1, true));
        let batched = run_cell(&mut Harness::new(), &open_cell("t/b8", 8, true));
        // Identical seeds and drain: both serve every offered request.
        assert_eq!(unbatched.offered(), batched.offered());
        assert!(batched.batches < unbatched.batches);
        assert!(
            batched.staging_ns < unbatched.staging_ns,
            "batched staging {} ns should beat unbatched {} ns",
            batched.staging_ns,
            unbatched.staging_ns
        );
        assert!(batched.busy_ns() < unbatched.busy_ns());
        assert!(batched.elapsed_ns <= unbatched.elapsed_ns);
    }

    #[test]
    fn no_drain_overload_leaves_requests_in_flight() {
        let mut spec = open_cell("t/inflight", 1, false);
        // Arrivals far faster than an mvm-free service can absorb.
        spec.tenants = vec![TenantSpec::open("storm", 500, 1_000)];
        let rec = run_cell(&mut Harness::new(), &spec);
        assert!(
            rec.in_flight() > 0,
            "overloaded no-drain cell must strand work"
        );
        let t = &rec.tenants[0];
        assert_eq!(
            t.arrivals,
            t.completed + t.rejected_queue + t.rejected_tokens + t.in_flight
        );
    }

    #[test]
    fn tight_limits_reject_honestly() {
        let mut spec = open_cell("t/reject", 1, true);
        spec.tenants = vec![
            TenantSpec::open("queue-bound", 1_000, 2),
            TenantSpec::open("token-bound", 1_000, 1_000).with_tokens(1, 1_000_000),
        ];
        let rec = run_cell(&mut Harness::new(), &spec);
        assert!(
            rec.tenants[0].rejected_queue > 0,
            "depth limit never tripped"
        );
        assert!(
            rec.tenants[1].rejected_tokens > 0,
            "token bucket never tripped"
        );
    }

    #[test]
    fn closed_loop_bounds_concurrency() {
        let mut spec = open_cell("t/closed", 4, true);
        spec.tenants = vec![TenantSpec::closed("think", 3, 10_000, 16)];
        let rec = run_cell(&mut Harness::new(), &spec);
        let t = &rec.tenants[0];
        assert!(t.arrivals > 3, "clients should cycle more than once");
        assert_eq!(
            t.arrivals,
            t.completed + t.rejected_queue + t.rejected_tokens
        );
        // With 3 clients no batch can ever hold more than 3 requests,
        // so staging amortization is capped by the population.
        assert!(rec.batches * 3 >= rec.completed());
    }

    #[test]
    fn records_are_identical_across_runs_and_backends() {
        let spec = open_cell("t/det", 8, true);
        let a = run_cell(&mut Harness::new(), &spec);
        let b = run_cell(&mut Harness::new(), &spec);
        assert_eq!(a, b);
        let c = run_cell(&mut Harness::with_backend(ExecBackend::FastForward), &spec);
        assert_eq!(a, c, "fast-forward calibration changed the record");
        let d = run_cell(&mut Harness::with_backend(ExecBackend::Native), &spec);
        assert_eq!(a, d, "native calibration changed the record");
    }

    #[test]
    fn slo_verdict_tracks_the_target() {
        let mut spec = open_cell("t/slo", 8, true);
        spec.slo_p99_ns = u64::MAX;
        let pass = run_cell(&mut Harness::new(), &spec);
        assert!(pass.slo_pass);
        spec.slo_p99_ns = 1;
        let fail = run_cell(&mut Harness::new(), &spec);
        assert!(!fail.slo_pass);
    }
}
