//! Shape classes and calibrated service profiles.
//!
//! The front end does not re-simulate every request cycle by cycle —
//! that would make a million-request campaign intractable. Instead each
//! campaign cell *calibrates* its (kernel family, problem size) class
//! once against the real instrumented design on the worker's
//! [`Harness`], converts the measured cycle count into nanoseconds at
//! the design's own post-place-&-route clock, and replays that service
//! time through the discrete-event engine. Because the execution
//! backends are cycle-identical by contract (the PR-7 parity suites),
//! the calibrated profile — and therefore the whole `SERVE_*.json`
//! store — is byte-identical under `cycle`, `fast-forward` and `native`
//! execution.
//!
//! The staging split mirrors the paper's Table 4 story: the Level-2
//! design spends 8.0 ms end to end on a 1024x1024 `MvM` of which only
//! 1.6 ms is compute — the rest is DRAM->SRAM data movement. Serving
//! makes that movement *shareable*: the matrix (dot: the fixed operand
//! vector; axpy: the resident accumulator) is the per-batch operand
//! staged once, while each request contributes only its private
//! vectors.

use fblas_core::dot::{DotParams, DotProductDesign};
use fblas_core::level1::{AxpyDesign, Level1Params};
use fblas_core::mvm::{ColMajorMvm, DenseMatrix, MvmParams};
use fblas_mem::WORD_BYTES;
use fblas_sim::{ClockDomain, Harness};

use crate::rng::SplitMix64;

/// Kernel families the front end serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFamily {
    /// Level-1 tree dot product (§4.1, 170 MHz).
    Dot,
    /// Level-2 column-major matrix-vector multiply (§4.2, 164 MHz).
    Mvm,
    /// Level-1 streaming axpy.
    Axpy,
}

impl KernelFamily {
    /// Stable name used in record JSON and cell identities.
    pub fn name(self) -> &'static str {
        match self {
            KernelFamily::Dot => "dot",
            KernelFamily::Mvm => "mvm",
            KernelFamily::Axpy => "axpy",
        }
    }
}

/// A batchable request class: kernel family plus problem size.
///
/// Two requests are batch-compatible exactly when their classes are
/// equal — the scheduler never mixes families or sizes in one batch,
/// so the staged shared operand is valid for every request it serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeClass {
    /// Kernel family.
    pub family: KernelFamily,
    /// Vector length (dot/axpy) or matrix order (mvm).
    pub n: usize,
}

impl ShapeClass {
    /// Identity string, e.g. `mvm1024`.
    pub fn key(&self) -> String {
        format!("{}{}", self.family.name(), self.n)
    }
}

/// Calibrated per-class costs, all in integer nanoseconds / bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceProfile {
    /// Compute time of one request at the design's clock.
    pub service_ns: u64,
    /// Bytes of the shared operand staged once per batch.
    pub shared_bytes: u64,
    /// Private bytes staged per request in the batch.
    pub per_request_bytes: u64,
}

/// Convert a cycle count to nanoseconds at `clock`, rounding up so a
/// partial nanosecond of work still occupies the timeline.
pub fn cycles_to_ns(cycles: u64, clock: &ClockDomain) -> u64 {
    // The workspace clocks are integral MHz, so hz is exact in u64 and
    // the conversion is pure integer arithmetic.
    let hz = clock.hz() as u64;
    assert!(hz > 0, "clock must tick");
    (u128::from(cycles) * 1_000_000_000u128).div_ceil(u128::from(hz)) as u64
}

/// Deterministic synthetic operand in `[0, 1)` (bit-exact everywhere:
/// one integer shift and one power-of-two division).
fn synth(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Run the class's design once on `harness` and distill its profile.
///
/// The harness keeps whatever backend it was constructed with, so a
/// campaign calibrated under fast-forward replay must agree with one
/// calibrated cycle by cycle — the serve determinism suite checks
/// exactly that.
pub fn calibrate(harness: &mut Harness, class: &ShapeClass) -> ServiceProfile {
    let n = class.n;
    let nb = n as u64 * WORD_BYTES;
    let mut rng = SplitMix64::new(0xCA11_B8A7 ^ n as u64);
    match class.family {
        KernelFamily::Dot => {
            let design = DotProductDesign::standalone(DotParams::table3(), 170.0);
            let u: Vec<f64> = (0..n).map(|_| synth(&mut rng)).collect();
            let v: Vec<f64> = (0..n).map(|_| synth(&mut rng)).collect();
            let out = design.run_in(harness, &u, &v);
            ServiceProfile {
                service_ns: cycles_to_ns(out.report.cycles, &out.clock),
                // The fixed operand u is the shared batch stage; each
                // request ships its own v and reads back one scalar.
                shared_bytes: nb,
                per_request_bytes: nb + WORD_BYTES,
            }
        }
        KernelFamily::Mvm => {
            let design = ColMajorMvm::standalone(MvmParams::table3(), 164.0);
            let a = DenseMatrix::from_fn(n, n, |_, _| synth(&mut rng));
            let x: Vec<f64> = (0..n).map(|_| synth(&mut rng)).collect();
            let out = design.run_in(harness, &a, &x);
            ServiceProfile {
                service_ns: cycles_to_ns(out.report.cycles, &out.clock),
                // The matrix dominates staging and is shared; requests
                // ship x in and y out.
                shared_bytes: n as u64 * nb,
                per_request_bytes: 2 * nb,
            }
        }
        KernelFamily::Axpy => {
            let design = AxpyDesign::new(Level1Params::with_k(4));
            let a = synth(&mut rng);
            let x: Vec<f64> = (0..n).map(|_| synth(&mut rng)).collect();
            let y: Vec<f64> = (0..n).map(|_| synth(&mut rng)).collect();
            let out = design.run_in(harness, a, &x, &y);
            ServiceProfile {
                service_ns: cycles_to_ns(out.report.cycles, &out.clock),
                // The accumulator block y stays resident; requests ship
                // x in and the updated y back.
                shared_bytes: nb,
                per_request_bytes: 2 * nb,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_sim::ExecBackend;

    #[test]
    fn cycles_to_ns_rounds_up() {
        let c170 = ClockDomain::from_mhz(170.0);
        // One 170 MHz cycle is 5.88.. ns -> must round to 6, not 5.
        assert_eq!(cycles_to_ns(1, &c170), 6);
        assert_eq!(cycles_to_ns(0, &c170), 0);
        // 170 cycles is exactly 1000 ns.
        assert_eq!(cycles_to_ns(170, &c170), 1000);
    }

    #[test]
    fn class_keys_are_stable() {
        let c = ShapeClass {
            family: KernelFamily::Mvm,
            n: 1024,
        };
        assert_eq!(c.key(), "mvm1024");
        assert_eq!(KernelFamily::Dot.name(), "dot");
        assert_eq!(KernelFamily::Axpy.name(), "axpy");
    }

    #[test]
    fn calibration_is_deterministic_and_backend_invariant() {
        let class = ShapeClass {
            family: KernelFamily::Dot,
            n: 64,
        };
        let mut h1 = Harness::new();
        let mut h2 = Harness::new();
        let p1 = calibrate(&mut h1, &class);
        let p2 = calibrate(&mut h2, &class);
        assert_eq!(p1, p2);
        let mut ff = Harness::with_backend(ExecBackend::FastForward);
        assert_eq!(
            calibrate(&mut ff, &class),
            p1,
            "backend changed the profile"
        );
        assert!(p1.service_ns > 0);
        assert_eq!(p1.shared_bytes, 64 * 8);
    }

    #[test]
    fn mvm_staging_dwarfs_its_compute_like_table4() {
        // The serving premise: for the Level-2 design the shared-matrix
        // stage is the dominant cost (paper: 8.0 ms total vs 1.6 ms
        // compute at n = 1024). Verify the calibrated shape at n = 128.
        let class = ShapeClass {
            family: KernelFamily::Mvm,
            n: 128,
        };
        let p = calibrate(&mut Harness::new(), &class);
        let staging =
            fblas_mem::BatchStaging::xd1().batch_ns(p.shared_bytes, p.per_request_bytes, 1);
        assert!(
            staging > p.service_ns,
            "staging {staging} ns should exceed compute {} ns",
            p.service_ns
        );
    }
}
