//! Bit-accurate IEEE-754 binary64 division and square root.
//!
//! The floating-point core library the paper draws on (Govindu et al.,
//! ERSA'05 — "a library of parameterizable floating-point cores") also
//! provides dividers and square-root units; the Jacobi solver needs D⁻¹
//! and nrm2 needs √. These routines complete the datapath set with the
//! same guarantee as add/mul: round-to-nearest-even results bit-exact
//! against the host FPU, verified by proptest.

use crate::softfloat::{
    exp_of, frac_of, is_inf, is_nan, is_zero, pack, round_pack, sign_of, BIAS, EXP_MAX, FRAC_BITS,
    QNAN,
};

/// Significand with explicit leading bit and effective biased exponent;
/// subnormals are renormalized (their exponent goes below 1).
#[inline]
fn normalized_sig_exp(bits: u64) -> (u64, i32) {
    let e = exp_of(bits);
    if e == 0 {
        let f = frac_of(bits);
        debug_assert!(f != 0);
        let lz = f.leading_zeros() - (64 - FRAC_BITS - 1);
        (f << lz, 1 - lz as i32)
    } else {
        (frac_of(bits) | (1 << FRAC_BITS), e as i32)
    }
}

/// IEEE-754 binary64 division `a / b` on raw bit patterns
/// (round-to-nearest-even).
pub fn sf_div(a: u64, b: u64) -> u64 {
    let sign = sign_of(a) ^ sign_of(b);
    if is_nan(a) || is_nan(b) {
        return QNAN;
    }
    match (is_inf(a), is_inf(b)) {
        (true, true) => return QNAN,
        (true, false) => return pack(sign, EXP_MAX, 0),
        (false, true) => return pack(sign, 0, 0),
        _ => {}
    }
    match (is_zero(a), is_zero(b)) {
        (true, true) => return QNAN,
        (true, false) => return pack(sign, 0, 0),
        (false, true) => return pack(sign, EXP_MAX, 0), // x/0 = ±inf
        _ => {}
    }

    let (mut sig_a, e_a) = normalized_sig_exp(a);
    let (sig_b, e_b) = normalized_sig_exp(b);
    let mut e = e_a - e_b + BIAS;
    // Pre-normalize so the quotient lands in [1, 2).
    if sig_a < sig_b {
        sig_a <<= 1;
        e -= 1;
    }
    // 54 extra quotient bits: 53 significand + guard + round; the
    // remainder folds into the sticky bit.
    let num = u128::from(sig_a) << 54;
    let q = (num / u128::from(sig_b)) as u64;
    let rem = num % u128::from(sig_b);
    debug_assert!(q >> 54 == 1, "quotient normalized to [2^54, 2^55)");
    let sig = (q << 1) | u64::from(rem != 0);
    // sig: leading bit at 55 = FRAC_BITS + 3 → guard/round/sticky low bits.
    round_pack(sign, e, sig, 3)
}

/// Integer square root of a u128 (binary digit recurrence).
fn isqrt_u128(n: u128) -> u128 {
    if n == 0 {
        return 0;
    }
    let mut x = 0u128;
    let mut bit = 1u128 << ((127 - n.leading_zeros()) & !1);
    let mut rem = n;
    while bit != 0 {
        if rem >= x + bit {
            rem -= x + bit;
            x = (x >> 1) + bit;
        } else {
            x >>= 1;
        }
        bit >>= 2;
    }
    x
}

/// IEEE-754 binary64 square root on a raw bit pattern
/// (round-to-nearest-even).
pub fn sf_sqrt(a: u64) -> u64 {
    if is_nan(a) {
        return QNAN;
    }
    if is_zero(a) {
        return a; // √±0 = ±0
    }
    if sign_of(a) == 1 {
        return QNAN; // √negative
    }
    if is_inf(a) {
        return a;
    }

    let (sig, e) = normalized_sig_exp(a);
    // value = sig · 2^d with d = e − BIAS − 52.
    let d = e - BIAS - FRAC_BITS as i32;
    // Shift so that (d − k) is even and the integer root has 54 bits
    // (53 significand + 1 guard).
    let k = 54 + ((d - 54).rem_euclid(2)) as u32;
    let m = u128::from(sig) << k;
    let s = isqrt_u128(m) as u64;
    let sticky = u128::from(s) * u128::from(s) != m;
    debug_assert!(s >> 53 == 1, "root normalized to [2^53, 2^54)");
    let t = (d - k as i32) / 2;
    let er = t + 53 + BIAS;
    round_pack(0, er, (s << 1) | u64::from(sticky), 2)
}

/// Convenience wrapper: divide two `f64`s through the softfloat core.
#[inline]
pub fn div_f64(a: f64, b: f64) -> f64 {
    f64::from_bits(sf_div(a.to_bits(), b.to_bits()))
}

/// Convenience wrapper: square root through the softfloat core.
#[inline]
pub fn sqrt_f64(a: f64) -> f64 {
    f64::from_bits(sf_sqrt(a.to_bits()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn same(ours: u64, native: f64) -> bool {
        if is_nan(ours) {
            native.is_nan()
        } else {
            ours == native.to_bits()
        }
    }

    fn check_div(a: f64, b: f64) {
        let ours = sf_div(a.to_bits(), b.to_bits());
        assert!(
            same(ours, a / b),
            "div({a:e}, {b:e}): ours {ours:#018x} native {:#018x}",
            (a / b).to_bits()
        );
    }

    fn check_sqrt(a: f64) {
        let ours = sf_sqrt(a.to_bits());
        assert!(
            same(ours, a.sqrt()),
            "sqrt({a:e}): ours {ours:#018x} native {:#018x}",
            a.sqrt().to_bits()
        );
    }

    fn interesting() -> Vec<f64> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            2.0,
            0.5,
            3.0,
            10.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 2.0,
            f64::from_bits(1),
            f64::from_bits((1 << 52) - 1),
            f64::EPSILON,
            1e308,
            1e-308,
            0.1,
            1.0 / 3.0,
            4503599627370496.0,
        ]
    }

    #[test]
    fn div_directed_edge_cases() {
        let vals = interesting();
        for &a in &vals {
            for &b in &vals {
                check_div(a, b);
            }
        }
    }

    #[test]
    fn sqrt_directed_edge_cases() {
        for &a in &interesting() {
            check_sqrt(a);
        }
        check_sqrt(4.0);
        check_sqrt(2.0);
        check_sqrt(1e300);
        check_sqrt(1e-300);
    }

    #[test]
    fn div_special_values() {
        assert!(is_nan(sf_div(0.0f64.to_bits(), 0.0f64.to_bits())));
        assert!(is_nan(sf_div(
            f64::INFINITY.to_bits(),
            f64::INFINITY.to_bits()
        )));
        // x/0 = ±inf with the XOR sign.
        assert_eq!(
            sf_div(1.0f64.to_bits(), (-0.0f64).to_bits()),
            f64::NEG_INFINITY.to_bits()
        );
    }

    #[test]
    fn sqrt_special_values() {
        assert_eq!(sf_sqrt((-0.0f64).to_bits()), (-0.0f64).to_bits());
        assert!(is_nan(sf_sqrt((-1.0f64).to_bits())));
        assert_eq!(sf_sqrt(f64::INFINITY.to_bits()), f64::INFINITY.to_bits());
    }

    #[test]
    fn div_underflow_gradual() {
        check_div(f64::MIN_POSITIVE, 2.0);
        check_div(f64::MIN_POSITIVE, 1e10);
        check_div(f64::from_bits(123), 7.0);
        check_div(1e-300, 1e300);
    }

    #[test]
    fn div_overflow_to_inf() {
        check_div(1e308, 1e-308);
        check_div(f64::MAX, 0.5);
    }

    #[test]
    fn sqrt_of_subnormals() {
        check_sqrt(f64::from_bits(1));
        check_sqrt(f64::from_bits(12345));
        check_sqrt(f64::MIN_POSITIVE / 4.0);
    }

    #[test]
    fn isqrt_exact_squares() {
        for v in [0u128, 1, 4, 9, 1 << 100, (1u128 << 53) * (1 << 53)] {
            let r = isqrt_u128(v);
            assert_eq!(r * r, v);
        }
        assert_eq!(isqrt_u128(2), 1);
        assert_eq!(isqrt_u128(8), 2);
        assert_eq!(isqrt_u128(99), 9);
    }

    #[test]
    fn perfect_square_roots_are_exact() {
        for i in 1..100u32 {
            let v = f64::from(i * i);
            assert_eq!(sqrt_f64(v), f64::from(i));
        }
    }
}
