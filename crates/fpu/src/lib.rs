//! Floating-point substrate: bit-accurate IEEE-754 binary64 arithmetic and
//! pipelined FPGA floating-point unit models.
//!
//! The SC'05 paper uses hand-written double-precision floating-point cores
//! (Govindu et al., ERSA'05) with the following post-place-&-route
//! characteristics (paper Table 2):
//!
//! | unit       | pipeline stages | area (slices) | clock (MHz) |
//! |------------|-----------------|---------------|-------------|
//! | adder      | 14              | 892           | 170         |
//! | multiplier | 11              | 835           | 170         |
//!
//! This crate reproduces both aspects of those cores:
//!
//! * **Numerics** ([`softfloat`]): a from-scratch implementation of IEEE-754
//!   binary64 addition, subtraction and multiplication with
//!   round-to-nearest-even, gradual underflow (subnormals) and full
//!   NaN/infinity semantics. It is verified bit-exact against the host FPU
//!   (both implement the same standard), which is precisely the guarantee
//!   the paper's VHDL cores give.
//! * **Timing** ([`pipelined`]): wrapper units that issue at most one
//!   operation per cycle and deliver the result exactly α cycles later,
//!   reproducing the read-after-write hazard window that motivates the
//!   paper's reduction circuit.
//! * **Cost** ([`cost`]): the Table 2 area/latency/clock sheet used by the
//!   area and clock models in `fblas-system`.

#![forbid(unsafe_code)]

pub mod cost;
pub mod pipelined;
pub mod softfloat;
pub mod softfloat_ext;

pub use cost::{UnitCost, FP_ADDER, FP_MULTIPLIER};
pub use pipelined::{
    PipelinedAdder, PipelinedDivider, PipelinedMultiplier, PipelinedSqrt, ADDER_STAGES,
    DIVIDER_STAGES, MULTIPLIER_STAGES, SQRT_STAGES,
};
pub use softfloat::{sf_add, sf_mul, sf_sub};
pub use softfloat_ext::{sf_div, sf_sqrt};
