//! Pipelined floating-point unit models.
//!
//! The paper's adder has α = 14 pipeline stages and its multiplier 11
//! (Table 2): one operation may be issued per cycle and the result emerges
//! exactly α cycles later. These wrappers combine the bit-accurate
//! [`softfloat`](crate::softfloat) datapath with a
//! [`DelayLine`] timing model, and carry an arbitrary
//! `Tag` alongside each operation so architectures can route results
//! (e.g. "this sum belongs to output row 17").

use crate::softfloat::{sf_add, sf_mul};
use fblas_sim::DelayLine;

/// Pipeline depth of the paper's double-precision adder (α in the paper).
pub const ADDER_STAGES: usize = 14;
/// Pipeline depth of the paper's double-precision multiplier.
pub const MULTIPLIER_STAGES: usize = 11;

/// A result emerging from a pipelined unit, with its routing tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tagged<T> {
    /// The floating-point result.
    pub value: f64,
    /// Caller-supplied routing information.
    pub tag: T,
}

/// A pipelined floating-point unit computing `op(a, b)` with fixed latency.
#[derive(Debug, Clone)]
struct PipelinedUnit<T> {
    pipe: DelayLine<Tagged<T>>,
    ops_issued: u64,
    /// Operation staged for the next clock edge (see [`PipelinedUnit::stage`]).
    staged: Option<(f64, f64, T)>,
}

impl<T> PipelinedUnit<T> {
    fn new(stages: usize) -> Self {
        Self {
            pipe: DelayLine::new(stages),
            ops_issued: 0,
            staged: None,
        }
    }

    /// Stage an operation for the upcoming clock edge. The unit has one
    /// issue port: staging twice between edges is a double issue — two
    /// drivers on the same port — and a scheduling bug in the caller.
    fn stage(&mut self, a: f64, b: f64, tag: T) {
        debug_assert!(
            self.staged.is_none(),
            "double issue: a single-issue floating-point unit was given two \
             operations in the same cycle"
        );
        self.staged = Some((a, b, tag));
    }

    fn step(&mut self, input: Option<(f64, f64, T)>, op: fn(u64, u64) -> u64) -> Option<Tagged<T>> {
        debug_assert!(
            !(input.is_some() && self.staged.is_some()),
            "double issue: step(Some(..)) while another operation is staged \
             for this cycle"
        );
        let input = input.or_else(|| self.staged.take());
        let computed = input.map(|(a, b, tag)| {
            self.ops_issued += 1;
            Tagged {
                value: f64::from_bits(op(a.to_bits(), b.to_bits())),
                tag,
            }
        });
        self.pipe.step(computed)
    }
}

/// Pipelined IEEE-754 binary64 adder (α-stage, one issue per cycle).
///
/// # Examples
///
/// ```
/// use fblas_fpu::{PipelinedAdder, ADDER_STAGES};
///
/// let mut adder = PipelinedAdder::<u32>::new();
/// adder.step(Some((1.5, 2.25, 42))); // issue, tagged 42
/// let mut out = None;
/// for _ in 0..ADDER_STAGES {
///     out = adder.step(None); // result emerges after α cycles
/// }
/// let out = out.expect("after α cycles");
/// assert_eq!(out.value, 3.75);
/// assert_eq!(out.tag, 42);
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedAdder<T = ()> {
    unit: PipelinedUnit<T>,
}

impl<T> PipelinedAdder<T> {
    /// Create an adder with the paper's default depth of [`ADDER_STAGES`].
    pub fn new() -> Self {
        Self::with_stages(ADDER_STAGES)
    }

    /// Create an adder with an explicit pipeline depth.
    pub fn with_stages(stages: usize) -> Self {
        Self {
            unit: PipelinedUnit::new(stages),
        }
    }

    /// Advance one cycle, optionally issuing `a + b` tagged with `tag`.
    /// Returns the operation issued `latency` cycles ago, if any.
    pub fn step(&mut self, input: Option<(f64, f64, T)>) -> Option<Tagged<T>> {
        self.unit.step(input, sf_add)
    }

    /// Stage `a + b` for the upcoming clock edge without advancing the
    /// clock; the next [`PipelinedAdder::step`]`(None)` issues it. Control
    /// logic with several candidate producers can use this split form —
    /// staging twice in one cycle trips a debug assertion, catching
    /// schedules that double-issue a single-issue unit.
    pub fn issue(&mut self, a: f64, b: f64, tag: T) {
        self.unit.stage(a, b, tag);
    }

    /// True if an operation is already staged for the upcoming edge.
    pub fn issue_pending(&self) -> bool {
        self.unit.staged.is_some()
    }

    /// The result that will emerge on the next [`PipelinedAdder::step`],
    /// visible on the same clock edge so the control logic can route it
    /// before choosing the next operation to issue.
    pub fn peek(&self) -> Option<&Tagged<T>> {
        self.unit.pipe.peek()
    }

    /// Pipeline depth in cycles.
    pub fn latency(&self) -> usize {
        self.unit.pipe.latency()
    }

    /// Number of additions currently in flight.
    pub fn in_flight(&self) -> usize {
        self.unit.pipe.in_flight()
    }

    /// True if the pipeline holds no in-flight additions.
    pub fn is_empty(&self) -> bool {
        self.unit.pipe.is_empty()
    }

    /// Total additions issued.
    pub fn ops_issued(&self) -> u64 {
        self.unit.ops_issued
    }

    /// Fraction of cycles in which an addition was issued.
    pub fn utilization(&self) -> f64 {
        self.unit.pipe.utilization()
    }

    /// Fault-injection hook: flip one bit of the result in flight at
    /// pipeline stage `stage` (0 = emerging next; reduced modulo the
    /// depth), modelling an SEU in an adder pipeline register. Returns
    /// false if that stage holds a bubble. Only call from a
    /// `Design::inject` implementation (`fault-hook-purity` DRC rule).
    pub fn fault_flip_in_flight(&mut self, stage: usize, bit: u32) -> bool {
        self.unit
            .pipe
            .fault_mutate(stage, |t| t.value = fblas_sim::flip_f64_bit(t.value, bit))
    }
}

impl<T> Default for PipelinedAdder<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Pipelined IEEE-754 binary64 multiplier (one issue per cycle).
#[derive(Debug, Clone)]
pub struct PipelinedMultiplier<T = ()> {
    unit: PipelinedUnit<T>,
}

impl<T> PipelinedMultiplier<T> {
    /// Create a multiplier with the paper's default depth of
    /// [`MULTIPLIER_STAGES`].
    pub fn new() -> Self {
        Self::with_stages(MULTIPLIER_STAGES)
    }

    /// Create a multiplier with an explicit pipeline depth.
    pub fn with_stages(stages: usize) -> Self {
        Self {
            unit: PipelinedUnit::new(stages),
        }
    }

    /// Advance one cycle, optionally issuing `a × b` tagged with `tag`.
    /// Returns the operation issued `latency` cycles ago, if any.
    pub fn step(&mut self, input: Option<(f64, f64, T)>) -> Option<Tagged<T>> {
        self.unit.step(input, sf_mul)
    }

    /// Stage `a × b` for the upcoming clock edge; see
    /// [`PipelinedAdder::issue`]. Double-staging trips a debug assertion.
    pub fn issue(&mut self, a: f64, b: f64, tag: T) {
        self.unit.stage(a, b, tag);
    }

    /// True if an operation is already staged for the upcoming edge.
    pub fn issue_pending(&self) -> bool {
        self.unit.staged.is_some()
    }

    /// The result that will emerge on the next
    /// [`PipelinedMultiplier::step`] (same-edge visibility; see
    /// [`PipelinedAdder::peek`]).
    pub fn peek(&self) -> Option<&Tagged<T>> {
        self.unit.pipe.peek()
    }

    /// Pipeline depth in cycles.
    pub fn latency(&self) -> usize {
        self.unit.pipe.latency()
    }

    /// Number of multiplications currently in flight.
    pub fn in_flight(&self) -> usize {
        self.unit.pipe.in_flight()
    }

    /// True if the pipeline holds no in-flight multiplications.
    pub fn is_empty(&self) -> bool {
        self.unit.pipe.is_empty()
    }

    /// Total multiplications issued.
    pub fn ops_issued(&self) -> u64 {
        self.unit.ops_issued
    }

    /// Fraction of cycles in which a multiplication was issued.
    pub fn utilization(&self) -> f64 {
        self.unit.pipe.utilization()
    }

    /// Fault-injection hook: flip one bit of the product in flight at
    /// pipeline stage `stage` (see
    /// [`PipelinedAdder::fault_flip_in_flight`]). Only call from a
    /// `Design::inject` implementation (`fault-hook-purity` DRC rule).
    pub fn fault_flip_in_flight(&mut self, stage: usize, bit: u32) -> bool {
        self.unit
            .pipe
            .fault_mutate(stage, |t| t.value = fblas_sim::flip_f64_bit(t.value, bit))
    }
}

impl<T> Default for PipelinedMultiplier<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Pipeline depth of a double-precision divider of the era (digit
/// recurrence, ~2 stages per quotient bit group). Not from the paper's
/// Table 2 — the paper's designs need no divider — but the Govindu core
/// library provides one; this depth is representative.
pub const DIVIDER_STAGES: usize = 32;
/// Representative pipeline depth of a double-precision square-root core.
pub const SQRT_STAGES: usize = 32;

/// Pipelined IEEE-754 binary64 divider (one issue per cycle).
#[derive(Debug, Clone)]
pub struct PipelinedDivider<T = ()> {
    unit: PipelinedUnit<T>,
}

impl<T> PipelinedDivider<T> {
    /// Create a divider with the representative depth [`DIVIDER_STAGES`].
    pub fn new() -> Self {
        Self::with_stages(DIVIDER_STAGES)
    }

    /// Create a divider with an explicit pipeline depth.
    pub fn with_stages(stages: usize) -> Self {
        Self {
            unit: PipelinedUnit::new(stages),
        }
    }

    /// Advance one cycle, optionally issuing `a / b` tagged with `tag`.
    pub fn step(&mut self, input: Option<(f64, f64, T)>) -> Option<Tagged<T>> {
        self.unit.step(input, crate::softfloat_ext::sf_div)
    }

    /// Pipeline depth in cycles.
    pub fn latency(&self) -> usize {
        self.unit.pipe.latency()
    }

    /// True if no divisions are in flight.
    pub fn is_empty(&self) -> bool {
        self.unit.pipe.is_empty()
    }
}

impl<T> Default for PipelinedDivider<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Pipelined IEEE-754 binary64 square-root unit (one issue per cycle).
#[derive(Debug, Clone)]
pub struct PipelinedSqrt<T = ()> {
    pipe: DelayLine<Tagged<T>>,
    ops_issued: u64,
}

impl<T> PipelinedSqrt<T> {
    /// Create a square-root unit with the representative depth
    /// [`SQRT_STAGES`].
    pub fn new() -> Self {
        Self::with_stages(SQRT_STAGES)
    }

    /// Create a unit with an explicit pipeline depth.
    pub fn with_stages(stages: usize) -> Self {
        Self {
            pipe: DelayLine::new(stages),
            ops_issued: 0,
        }
    }

    /// Advance one cycle, optionally issuing `√a` tagged with `tag`.
    pub fn step(&mut self, input: Option<(f64, T)>) -> Option<Tagged<T>> {
        let computed = input.map(|(a, tag)| {
            self.ops_issued += 1;
            Tagged {
                value: f64::from_bits(crate::softfloat_ext::sf_sqrt(a.to_bits())),
                tag,
            }
        });
        self.pipe.step(computed)
    }

    /// Pipeline depth in cycles.
    pub fn latency(&self) -> usize {
        self.pipe.latency()
    }

    /// True if no operations are in flight.
    pub fn is_empty(&self) -> bool {
        self.pipe.is_empty()
    }

    /// Total operations issued.
    pub fn ops_issued(&self) -> u64 {
        self.ops_issued
    }
}

impl<T> Default for PipelinedSqrt<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_result_after_exactly_alpha_cycles() {
        let mut add = PipelinedAdder::<u32>::new();
        assert_eq!(add.latency(), ADDER_STAGES);
        assert_eq!(add.step(Some((1.5, 2.25, 7))), None);
        for _ in 0..ADDER_STAGES - 1 {
            assert_eq!(add.step(None), None);
        }
        let out = add.step(None).expect("result after α cycles");
        assert_eq!(out.value, 3.75);
        assert_eq!(out.tag, 7);
    }

    #[test]
    fn multiplier_result_after_exactly_its_depth() {
        let mut mul = PipelinedMultiplier::<()>::new();
        assert_eq!(mul.latency(), MULTIPLIER_STAGES);
        mul.step(Some((3.0, 4.0, ())));
        for _ in 0..MULTIPLIER_STAGES - 1 {
            assert_eq!(mul.step(None), None);
        }
        assert_eq!(mul.step(None).unwrap().value, 12.0);
    }

    #[test]
    fn fully_pipelined_issue_one_result_per_cycle() {
        let mut add = PipelinedAdder::<usize>::with_stages(5);
        let mut results = Vec::new();
        for i in 0..20 {
            if let Some(r) = add.step(Some((i as f64, 1.0, i))) {
                results.push(r);
            }
        }
        while let Some(r) = add.step(None) {
            results.push(r);
            if add.is_empty() {
                break;
            }
        }
        assert_eq!(results.len(), 20);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.tag, i);
            assert_eq!(r.value, i as f64 + 1.0);
        }
    }

    #[test]
    fn utilization_reflects_issue_density() {
        let mut add = PipelinedAdder::<()>::with_stages(4);
        for i in 0..100 {
            let input = (i % 4 == 0).then_some((1.0, 1.0, ()));
            add.step(input);
        }
        assert!((add.utilization() - 0.25).abs() < 1e-12);
        assert_eq!(add.ops_issued(), 25);
    }

    #[test]
    fn divider_and_sqrt_units() {
        let mut div = PipelinedDivider::<u8>::with_stages(3);
        div.step(Some((1.0, 3.0, 9)));
        div.step(None);
        div.step(None);
        let out = div.step(None).expect("after 3 cycles");
        assert_eq!(out.value.to_bits(), (1.0f64 / 3.0f64).to_bits());
        assert_eq!(out.tag, 9);
        assert!(div.is_empty());

        let mut sq = PipelinedSqrt::<()>::with_stages(2);
        sq.step(Some((2.0, ())));
        sq.step(None);
        let out = sq.step(None).expect("after 2 cycles");
        assert_eq!(out.value.to_bits(), 2.0f64.sqrt().to_bits());
        assert_eq!(sq.ops_issued(), 1);
    }

    #[test]
    fn default_div_sqrt_depths() {
        assert_eq!(PipelinedDivider::<()>::new().latency(), DIVIDER_STAGES);
        assert_eq!(PipelinedSqrt::<()>::new().latency(), SQRT_STAGES);
    }

    #[test]
    fn results_are_bit_accurate_ieee754() {
        let mut mul = PipelinedMultiplier::<()>::with_stages(2);
        mul.step(Some((0.1, 0.2, ())));
        mul.step(None);
        let r = mul.step(None);
        // drained on the 2nd step after issue
        let r = r.or_else(|| mul.step(None)).unwrap();
        assert_eq!(r.value.to_bits(), (0.1f64 * 0.2f64).to_bits());
    }

    #[test]
    fn staged_issue_computes_like_direct_issue() {
        let mut adder = PipelinedAdder::<u8>::with_stages(3);
        adder.issue(1.5, 2.25, 7);
        assert!(adder.issue_pending());
        let mut out = adder.step(None); // the staged op enters the pipe here
        assert!(!adder.issue_pending());
        for _ in 0..3 {
            out = adder.step(None);
        }
        let out = out.expect("after the 3-stage latency");
        assert_eq!(out.value, 3.75);
        assert_eq!(out.tag, 7);
        assert!(!adder.issue_pending());
        assert_eq!(adder.ops_issued(), 1);
    }

    #[test]
    fn fault_flip_corrupts_exactly_one_in_flight_bit() {
        let mut add = PipelinedAdder::<u8>::with_stages(4);
        add.step(Some((1.0, 2.0, 1)));
        add.step(Some((4.0, 8.0, 2)));
        // Two results in flight: the older emerges at stage 2 (two more
        // steps of bubbles first), the younger right behind it at stage
        // 3. Flip the older result's sign bit.
        assert!(add.fault_flip_in_flight(2, 63));
        let mut out = Vec::new();
        for _ in 0..4 {
            if let Some(r) = add.step(None) {
                out.push(r);
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, -3.0, "sign bit flipped");
        assert_eq!(out[1].value, 12.0, "younger result untouched");
        // An empty pipeline masks the fault.
        let mut idle = PipelinedMultiplier::<()>::with_stages(3);
        assert!(!idle.fault_flip_in_flight(0, 51));
    }

    #[test]
    #[should_panic(expected = "double issue")]
    fn double_staging_in_one_cycle_is_caught() {
        let mut adder = PipelinedAdder::<()>::new();
        adder.issue(1.0, 2.0, ());
        adder.issue(3.0, 4.0, ());
    }

    #[test]
    #[should_panic(expected = "double issue")]
    fn step_some_over_a_staged_op_is_caught() {
        let mut mul = PipelinedMultiplier::<()>::new();
        mul.issue(1.0, 2.0, ());
        mul.step(Some((3.0, 4.0, ())));
    }
}
