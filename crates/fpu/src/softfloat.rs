//! Bit-accurate IEEE-754 binary64 (double precision) software arithmetic.
//!
//! These routines mirror what the paper's VHDL floating-point cores compute:
//! IEEE-754 double precision with round-to-nearest-even, gradual underflow,
//! and standard NaN/infinity handling. They operate purely on the `u64` bit
//! patterns, never falling back to the host FPU, so they serve as an
//! executable specification of the hardware datapath — the adder's
//! align/add/normalize/round structure is exactly the stage decomposition a
//! 14-stage pipelined hardware adder implements.
//!
//! NaN results are canonicalized to the quiet NaN `0x7FF8_0000_0000_0000`;
//! hardware and host FPUs may propagate NaN payloads differently, so tests
//! compare NaNs as a class.

/// Number of fraction (mantissa) bits in binary64.
pub const FRAC_BITS: u32 = 52;
/// Exponent field width in binary64.
pub const EXP_BITS: u32 = 11;
/// Maximum (all-ones) exponent field value: infinity/NaN marker.
pub const EXP_MAX: u64 = (1 << EXP_BITS) - 1;
/// Exponent bias.
pub const BIAS: i32 = 1023;
/// Mask of the fraction field.
pub const FRAC_MASK: u64 = (1 << FRAC_BITS) - 1;
/// Mask of the sign bit.
pub const SIGN_MASK: u64 = 1 << 63;
/// The canonical quiet NaN produced by these routines.
pub const QNAN: u64 = 0x7FF8_0000_0000_0000;

/// Extract the sign bit (0 or 1).
#[inline]
pub fn sign_of(bits: u64) -> u64 {
    bits >> 63
}

/// Extract the raw (biased) exponent field.
#[inline]
pub fn exp_of(bits: u64) -> u64 {
    (bits >> FRAC_BITS) & EXP_MAX
}

/// Extract the fraction field.
#[inline]
pub fn frac_of(bits: u64) -> u64 {
    bits & FRAC_MASK
}

/// True if the bit pattern encodes any NaN.
#[inline]
pub fn is_nan(bits: u64) -> bool {
    exp_of(bits) == EXP_MAX && frac_of(bits) != 0
}

/// True if the bit pattern encodes ±infinity.
#[inline]
pub fn is_inf(bits: u64) -> bool {
    exp_of(bits) == EXP_MAX && frac_of(bits) == 0
}

/// True if the bit pattern encodes ±0.
#[inline]
pub fn is_zero(bits: u64) -> bool {
    bits & !SIGN_MASK == 0
}

/// Pack sign/exponent/fraction fields into a bit pattern.
#[inline]
pub(crate) fn pack(sign: u64, exp: u64, frac: u64) -> u64 {
    debug_assert!(sign <= 1 && exp <= EXP_MAX && frac <= FRAC_MASK);
    (sign << 63) | (exp << FRAC_BITS) | frac
}

/// Significand with the implicit bit made explicit, plus the *effective*
/// biased exponent (subnormals are treated as exponent 1 with no implicit
/// bit, which makes alignment arithmetic uniform).
#[inline]
fn sig_and_exp(bits: u64) -> (u64, i32) {
    let e = exp_of(bits);
    if e == 0 {
        (frac_of(bits), 1)
    } else {
        (frac_of(bits) | (1 << FRAC_BITS), e as i32)
    }
}

/// Shift `sig` right by `n`, `ORing` every shifted-out bit into bit 0
/// (the "sticky" bit). This models the hardware alignment shifter.
#[inline]
fn shift_right_sticky(sig: u64, n: u32) -> u64 {
    if n == 0 {
        sig
    } else if n >= 64 {
        u64::from(sig != 0)
    } else {
        let lost = sig & ((1u64 << n) - 1);
        (sig >> n) | u64::from(lost != 0)
    }
}

/// 128-bit variant of [`shift_right_sticky`] for wide intermediate
/// products (kept alongside the 64-bit shifter; the multiplier collapses
/// its sticky computation inline but tests exercise this form too).
#[inline]
#[allow(dead_code)]
fn shift_right_sticky_u128(sig: u128, n: u32) -> u128 {
    if n == 0 {
        sig
    } else if n >= 128 {
        u128::from(sig != 0)
    } else {
        let lost = sig & ((1u128 << n) - 1);
        (sig >> n) | u128::from(lost != 0)
    }
}

/// Round-to-nearest-even decision for a significand whose lowest `grs_bits`
/// bits are guard/round/sticky information and whose true LSB sits just
/// above them.
#[inline]
fn rne_round_up(sig: u64, grs_bits: u32) -> bool {
    debug_assert!(grs_bits >= 2);
    let guard = (sig >> (grs_bits - 1)) & 1;
    let rest = sig & ((1 << (grs_bits - 1)) - 1);
    let lsb = (sig >> grs_bits) & 1;
    guard == 1 && (rest != 0 || lsb == 1)
}

/// IEEE-754 binary64 addition on raw bit patterns (round-to-nearest-even).
///
/// # Examples
///
/// ```
/// use fblas_fpu::softfloat::sf_add;
///
/// let sum = sf_add(0.1f64.to_bits(), 0.2f64.to_bits());
/// // Bit-exact agreement with the host FPU, rounding error included.
/// assert_eq!(sum, (0.1f64 + 0.2f64).to_bits());
/// ```
pub fn sf_add(a: u64, b: u64) -> u64 {
    // Special values -------------------------------------------------------
    if is_nan(a) || is_nan(b) {
        return QNAN;
    }
    if is_inf(a) {
        return if is_inf(b) && sign_of(a) != sign_of(b) {
            QNAN // (+inf) + (-inf)
        } else {
            a
        };
    }
    if is_inf(b) {
        return b;
    }
    if is_zero(a) && is_zero(b) {
        // (+0)+(+0)=+0, (-0)+(-0)=-0, mixed = +0 under round-to-nearest.
        return pack(sign_of(a) & sign_of(b), 0, 0);
    }
    if is_zero(a) {
        return b;
    }
    if is_zero(b) {
        return a;
    }

    // Order by magnitude: for finite doubles, magnitude order is integer
    // order of the sign-stripped bit pattern.
    let (big, small) = if (a & !SIGN_MASK) >= (b & !SIGN_MASK) {
        (a, b)
    } else {
        (b, a)
    };
    let (sig_b, e_b) = sig_and_exp(big);
    let (sig_s, e_s) = sig_and_exp(small);
    let sign_big = sign_of(big);
    let effective_sub = sign_of(a) != sign_of(b);

    // Three extra low-order bits: guard, round, sticky.
    const GRS: u32 = 3;
    let big_sig = sig_b << GRS;
    let small_sig = shift_right_sticky(sig_s << GRS, (e_b - e_s) as u32);
    let mut e = e_b;

    let mut sig;
    if effective_sub {
        sig = big_sig - small_sig;
        if sig == 0 {
            // Exact cancellation rounds to +0 under round-to-nearest-even.
            return pack(0, 0, 0);
        }
        // At most one lossy alignment bit exists when the shift distance was
        // ≥ 2, in which case normalization moves left by at most one place;
        // otherwise the subtraction was exact and arbitrary left shifts are
        // safe. Either way the loop below is exact.
        let top = 1u64 << (FRAC_BITS + GRS); // normalized leading-bit position
        while sig < top && e > 1 {
            sig <<= 1;
            e -= 1;
        }
    } else {
        sig = big_sig + small_sig;
        let top_plus = 1u64 << (FRAC_BITS + GRS + 1);
        if sig >= top_plus {
            sig = shift_right_sticky(sig, 1);
            e += 1;
        }
    }

    round_pack(sign_big, e, sig, GRS)
}

/// IEEE-754 binary64 subtraction on raw bit patterns: `a - b`.
pub fn sf_sub(a: u64, b: u64) -> u64 {
    // NaN must not have its "sign flipped" semantics confused; sf_add
    // handles NaN before looking at signs, so flipping b's sign is safe.
    sf_add(a, b ^ SIGN_MASK)
}

/// IEEE-754 binary64 multiplication on raw bit patterns
/// (round-to-nearest-even).
pub fn sf_mul(a: u64, b: u64) -> u64 {
    let sign = sign_of(a) ^ sign_of(b);
    // Special values -------------------------------------------------------
    if is_nan(a) || is_nan(b) {
        return QNAN;
    }
    if is_inf(a) || is_inf(b) {
        return if is_zero(a) || is_zero(b) {
            QNAN // 0 × inf
        } else {
            pack(sign, EXP_MAX, 0)
        };
    }
    if is_zero(a) || is_zero(b) {
        return pack(sign, 0, 0);
    }

    // Normalize subnormal inputs so both significands carry an explicit
    // leading one; track the exponent adjustment.
    let (mut sig_a, mut e_a) = sig_and_exp(a);
    let (mut sig_b, mut e_b) = sig_and_exp(b);
    if exp_of(a) == 0 {
        let lz = sig_a.leading_zeros() - (64 - FRAC_BITS - 1);
        sig_a <<= lz;
        e_a -= lz as i32;
    }
    if exp_of(b) == 0 {
        let lz = sig_b.leading_zeros() - (64 - FRAC_BITS - 1);
        sig_b <<= lz;
        e_b -= lz as i32;
    }

    // Significands are in [2^52, 2^53); the product is in [2^104, 2^106).
    let mut prod = u128::from(sig_a) * u128::from(sig_b);
    let mut e = e_a + e_b - BIAS;
    if prod >> 105 != 0 {
        e += 1;
    } else {
        prod <<= 1;
    }
    // Leading bit now at position 105; keep 53 significand bits plus a
    // guard at bit 52 and fold everything below into a sticky bit.
    let sticky = (prod & ((1u128 << 52) - 1)) != 0;
    let sig = ((prod >> 52) as u64) << 1 | u64::from(sticky);
    // sig: 53 significand bits, then guard at bit 1 and sticky at bit 0.
    round_pack(sign, e, sig, 2)
}

/// Shared normalize-subnormal / round / overflow / pack tail.
///
/// `sig` carries the significand with its leading bit (for a normal result)
/// at position `FRAC_BITS + grs`, and `grs` low bits of rounding
/// information. `e` is the effective biased exponent (1 ⇒ may be
/// subnormal).
pub(crate) fn round_pack(sign: u64, mut e: i32, mut sig: u64, grs: u32) -> u64 {
    debug_assert!(sig != 0);
    // Gradual underflow: align to the subnormal window, folding lost bits
    // into the sticky position before rounding.
    if e < 1 {
        sig = shift_right_sticky(sig, (1 - e) as u32);
        e = 1;
    }

    let mut sig_main = sig >> grs;
    if rne_round_up(sig, grs) {
        sig_main += 1;
        if sig_main >> (FRAC_BITS + 1) != 0 {
            sig_main >>= 1;
            e += 1;
        }
    }

    if sig_main >> FRAC_BITS == 0 {
        // Subnormal (or zero after rounding): exponent field is 0.
        debug_assert!(e == 1, "unnormalized significand with e={e}");
        return pack(sign, 0, sig_main);
    }
    if e >= EXP_MAX as i32 {
        return pack(sign, EXP_MAX, 0); // overflow → ±inf
    }
    pack(sign, e as u64, sig_main & FRAC_MASK)
}

/// Convenience wrapper: add two `f64`s through the softfloat core.
#[inline]
pub fn add_f64(a: f64, b: f64) -> f64 {
    f64::from_bits(sf_add(a.to_bits(), b.to_bits()))
}

/// Convenience wrapper: subtract two `f64`s through the softfloat core.
#[inline]
pub fn sub_f64(a: f64, b: f64) -> f64 {
    f64::from_bits(sf_sub(a.to_bits(), b.to_bits()))
}

/// Convenience wrapper: multiply two `f64`s through the softfloat core.
#[inline]
pub fn mul_f64(a: f64, b: f64) -> f64 {
    f64::from_bits(sf_mul(a.to_bits(), b.to_bits()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-exact equality, treating all NaNs as one equivalence class.
    fn same(ours: u64, native: f64) -> bool {
        if is_nan(ours) {
            native.is_nan()
        } else {
            ours == native.to_bits()
        }
    }

    fn check_add(a: f64, b: f64) {
        let ours = sf_add(a.to_bits(), b.to_bits());
        let native = a + b;
        assert!(
            same(ours, native),
            "add({a:e} [{:#018x}], {b:e} [{:#018x}]): ours {:#018x} native {:#018x}",
            a.to_bits(),
            b.to_bits(),
            ours,
            native.to_bits()
        );
    }

    fn check_mul(a: f64, b: f64) {
        let ours = sf_mul(a.to_bits(), b.to_bits());
        let native = a * b;
        assert!(
            same(ours, native),
            "mul({a:e} [{:#018x}], {b:e} [{:#018x}]): ours {:#018x} native {:#018x}",
            a.to_bits(),
            b.to_bits(),
            ours,
            native.to_bits()
        );
    }

    /// The directed edge-case operand set used across the tests.
    fn interesting() -> Vec<f64> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            2.0,
            0.5,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,         // smallest normal
            f64::MIN_POSITIVE / 2.0,   // subnormal
            f64::from_bits(1),         // smallest subnormal
            f64::from_bits(FRAC_MASK), // largest subnormal
            f64::EPSILON,
            1.0 + f64::EPSILON,
            1e308,
            -1e308,
            1e-308,
            #[allow(clippy::approx_constant)]
            3.141592653589793,
            #[allow(clippy::approx_constant)]
            -2.718281828459045,
            6.02214076e23,
            1.0 / 3.0,
            9007199254740993.0, // 2^53 + 1 (not representable; rounds)
            4503599627370496.0, // 2^52
        ]
    }

    #[test]
    fn add_directed_edge_cases() {
        let vals = interesting();
        for &a in &vals {
            for &b in &vals {
                check_add(a, b);
            }
        }
    }

    #[test]
    fn mul_directed_edge_cases() {
        let vals = interesting();
        for &a in &vals {
            for &b in &vals {
                check_mul(a, b);
            }
        }
    }

    #[test]
    fn sub_matches_native_on_edge_cases() {
        let vals = interesting();
        for &a in &vals {
            for &b in &vals {
                let ours = sf_sub(a.to_bits(), b.to_bits());
                assert!(same(ours, a - b), "sub({a:e},{b:e})");
            }
        }
    }

    #[test]
    fn add_rounds_to_nearest_even_at_tie() {
        // 2^53 is exactly representable; 2^53 + 1 ties between 2^53 and
        // 2^53 + 2 and must round to the even significand (2^53).
        let big = (1u64 << 53) as f64;
        check_add(big, 1.0);
        // 2^53 + 3 ties between +2 and +4 and must round up to +4.
        check_add(big, 3.0);
    }

    #[test]
    fn add_exact_cancellation_is_positive_zero() {
        let r = sf_add(1.5f64.to_bits(), (-1.5f64).to_bits());
        assert_eq!(r, 0.0f64.to_bits());
        assert_eq!(sign_of(r), 0);
    }

    #[test]
    fn add_signed_zero_rules() {
        assert_eq!(
            sf_add((-0.0f64).to_bits(), (-0.0f64).to_bits()),
            (-0.0f64).to_bits()
        );
        assert_eq!(
            sf_add((-0.0f64).to_bits(), 0.0f64.to_bits()),
            0.0f64.to_bits()
        );
        assert_eq!(sf_add(0.0f64.to_bits(), 0.0f64.to_bits()), 0.0f64.to_bits());
    }

    #[test]
    fn inf_minus_inf_is_nan() {
        assert!(is_nan(sf_add(
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits()
        )));
        assert!(is_nan(sf_sub(
            f64::INFINITY.to_bits(),
            f64::INFINITY.to_bits()
        )));
    }

    #[test]
    fn zero_times_inf_is_nan() {
        assert!(is_nan(sf_mul(0.0f64.to_bits(), f64::INFINITY.to_bits())));
        assert!(is_nan(sf_mul(
            f64::NEG_INFINITY.to_bits(),
            (-0.0f64).to_bits()
        )));
    }

    #[test]
    fn mul_overflow_saturates_to_infinity() {
        check_mul(1e308, 10.0);
        check_mul(-1e308, 10.0);
        check_mul(f64::MAX, f64::MAX);
    }

    #[test]
    fn mul_underflow_is_gradual() {
        check_mul(f64::MIN_POSITIVE, 0.5);
        check_mul(f64::MIN_POSITIVE, 0.25);
        check_mul(f64::from_bits(1), 0.5);
        check_mul(1e-200, 1e-200);
    }

    #[test]
    fn mul_subnormal_times_large_renormalizes() {
        check_mul(f64::from_bits(1), 1e300);
        check_mul(f64::from_bits(12345), 2.0f64.powi(700));
    }

    #[test]
    fn add_with_huge_exponent_gap_is_absorbing() {
        check_add(1e300, 1e-300);
        check_add(1e300, -1e-300);
        check_add(-1.0, f64::from_bits(1));
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        // Sterbenz: subtraction of nearby values is exact.
        check_add(1.0000000000000002, -1.0);
        check_add(1.0, -0.9999999999999999);
    }

    #[test]
    fn subnormal_plus_subnormal() {
        let a = f64::from_bits(123456789);
        let b = f64::from_bits(987654321);
        check_add(a, b);
        check_add(a, -b);
    }

    #[test]
    fn field_extractors() {
        let x = (-1.5f64).to_bits();
        assert_eq!(sign_of(x), 1);
        assert_eq!(exp_of(x), BIAS as u64);
        assert_eq!(frac_of(x), 1 << (FRAC_BITS - 1));
    }

    #[test]
    fn classification_predicates() {
        assert!(is_nan(QNAN));
        assert!(is_inf(f64::INFINITY.to_bits()));
        assert!(is_inf(f64::NEG_INFINITY.to_bits()));
        assert!(is_zero(0.0f64.to_bits()));
        assert!(is_zero((-0.0f64).to_bits()));
        assert!(!is_nan(1.0f64.to_bits()));
        assert!(!is_inf(f64::MAX.to_bits()));
    }

    #[test]
    fn shift_right_sticky_collects_lost_bits() {
        assert_eq!(shift_right_sticky(0b1000, 3), 0b1);
        assert_eq!(shift_right_sticky(0b1001, 3), 0b11 >> 1 | 1); // 0b1 | sticky
        assert_eq!(shift_right_sticky(0b1010_0000, 5), 0b101);
        assert_eq!(shift_right_sticky(1, 64), 1);
        assert_eq!(shift_right_sticky(0, 64), 0);
        assert_eq!(shift_right_sticky_u128(1 << 100, 100), 1);
        assert_eq!(shift_right_sticky_u128((0b10 << 100) | 1, 100), 0b11);
    }
}
