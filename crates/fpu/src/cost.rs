//! Post-place-&-route cost sheet for the floating-point units (paper Table 2).
//!
//! The paper's units are not engineered for area or speed; §6.4 projects
//! performance for improved units, so [`UnitCost`] is a value type the
//! projection sweeps can vary.

/// Area/latency/clock characteristics of one hardware unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitCost {
    /// Human-readable unit name.
    pub name: &'static str,
    /// Pipeline depth in cycles (0 for purely combinational blocks).
    pub pipeline_stages: usize,
    /// Area in Virtex-II Pro slices.
    pub area_slices: u32,
    /// Maximum clock rate in MHz after place & route.
    pub clock_mhz: f64,
}

/// The paper's 64-bit floating-point adder: 14 stages, 892 slices, 170 MHz.
pub const FP_ADDER: UnitCost = UnitCost {
    name: "64-bit FP adder",
    pipeline_stages: 14,
    area_slices: 892,
    clock_mhz: 170.0,
};

/// The paper's 64-bit floating-point multiplier: 11 stages, 835 slices,
/// 170 MHz.
pub const FP_MULTIPLIER: UnitCost = UnitCost {
    name: "64-bit FP multiplier",
    pipeline_stages: 11,
    area_slices: 835,
    clock_mhz: 170.0,
};

impl UnitCost {
    /// Slices used by `n` copies of this unit.
    pub fn area_of(&self, n: u32) -> u32 {
        self.area_slices * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        assert_eq!(FP_ADDER.pipeline_stages, 14);
        assert_eq!(FP_ADDER.area_slices, 892);
        assert_eq!(FP_MULTIPLIER.pipeline_stages, 11);
        assert_eq!(FP_MULTIPLIER.area_slices, 835);
        assert_eq!(FP_ADDER.clock_mhz, 170.0);
        assert_eq!(FP_MULTIPLIER.clock_mhz, 170.0);
    }

    #[test]
    fn area_scales_linearly() {
        assert_eq!(FP_ADDER.area_of(3), 2676);
    }

    #[test]
    fn device_peak_matches_paper_section_63() {
        // §6.3: peak of XC2VP50 = 2 × (pairs of add+mul that fit) × 170 MHz
        // = 4.42 GFLOPS.
        let pair = FP_ADDER.area_slices + FP_MULTIPLIER.area_slices;
        let pairs = 23_616 / pair;
        let peak = 2.0 * f64::from(pairs) * 170.0e6;
        assert_eq!(pairs, 13);
        assert!((peak / 1e9 - 4.42).abs() < 0.01, "peak {peak}");
    }
}
