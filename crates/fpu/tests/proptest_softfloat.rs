//! Property-based verification of the softfloat core against the host FPU.
//!
//! Both the softfloat routines and the host implement IEEE-754 binary64
//! with round-to-nearest-even, so every finite-input operation must agree
//! bit for bit; NaNs are compared as a class because payload propagation is
//! implementation-defined.

use fblas_fpu::softfloat::{self, sf_add, sf_mul, sf_sub};
use fblas_fpu::softfloat_ext::{sf_div, sf_sqrt};
use proptest::prelude::*;

/// Bit-exact equality with NaNs treated as one class.
fn same(ours: u64, native: f64) -> bool {
    if softfloat::is_nan(ours) {
        native.is_nan()
    } else {
        ours == native.to_bits()
    }
}

/// Arbitrary *bit patterns*, not arbitrary values: this covers NaN payloads,
/// subnormals and infinities far more densely than sampling by value.
fn any_bits() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Uniform over the full pattern space.
        any::<u64>(),
        // Clustered near exponent-field boundaries where rounding and
        // underflow/overflow corner cases live.
        (0u64..=1, 0u64..=4, any::<u64>())
            .prop_map(|(s, e, f)| { (s << 63) | (e << 52) | (f & ((1 << 52) - 1)) }),
        (0u64..=1, 2043u64..=2047, any::<u64>())
            .prop_map(|(s, e, f)| { (s << 63) | (e << 52) | (f & ((1 << 52) - 1)) }),
        // Pairs of nearby magnitudes (catastrophic-cancellation region).
        any::<i64>().prop_map(|x| (x.unsigned_abs()) % (1 << 60)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn add_matches_native(a in any_bits(), b in any_bits()) {
        let ours = sf_add(a, b);
        let native = f64::from_bits(a) + f64::from_bits(b);
        prop_assert!(
            same(ours, native),
            "add({a:#018x}, {b:#018x}) = {ours:#018x}, native {:#018x}",
            native.to_bits()
        );
    }

    #[test]
    fn sub_matches_native(a in any_bits(), b in any_bits()) {
        let ours = sf_sub(a, b);
        let native = f64::from_bits(a) - f64::from_bits(b);
        prop_assert!(
            same(ours, native),
            "sub({a:#018x}, {b:#018x}) = {ours:#018x}, native {:#018x}",
            native.to_bits()
        );
    }

    #[test]
    fn mul_matches_native(a in any_bits(), b in any_bits()) {
        let ours = sf_mul(a, b);
        let native = f64::from_bits(a) * f64::from_bits(b);
        prop_assert!(
            same(ours, native),
            "mul({a:#018x}, {b:#018x}) = {ours:#018x}, native {:#018x}",
            native.to_bits()
        );
    }

    #[test]
    fn add_is_commutative(a in any_bits(), b in any_bits()) {
        let ab = sf_add(a, b);
        let ba = sf_add(b, a);
        prop_assert!(ab == ba || (softfloat::is_nan(ab) && softfloat::is_nan(ba)));
    }

    #[test]
    fn mul_is_commutative(a in any_bits(), b in any_bits()) {
        let ab = sf_mul(a, b);
        let ba = sf_mul(b, a);
        prop_assert!(ab == ba || (softfloat::is_nan(ab) && softfloat::is_nan(ba)));
    }

    #[test]
    fn add_identity_zero(a in any_bits()) {
        prop_assume!(!softfloat::is_nan(a) && !softfloat::is_zero(a));
        prop_assert_eq!(sf_add(a, 0.0f64.to_bits()), a);
    }

    #[test]
    fn mul_identity_one(a in any_bits()) {
        prop_assume!(!softfloat::is_nan(a));
        prop_assert_eq!(sf_mul(a, 1.0f64.to_bits()), a);
    }

    #[test]
    fn div_matches_native(a in any_bits(), b in any_bits()) {
        let ours = sf_div(a, b);
        let native = f64::from_bits(a) / f64::from_bits(b);
        prop_assert!(
            same(ours, native),
            "div({a:#018x}, {b:#018x}) = {ours:#018x}, native {:#018x}",
            native.to_bits()
        );
    }

    #[test]
    fn sqrt_matches_native(a in any_bits()) {
        let ours = sf_sqrt(a);
        let native = f64::from_bits(a).sqrt();
        prop_assert!(
            same(ours, native),
            "sqrt({a:#018x}) = {ours:#018x}, native {:#018x}",
            native.to_bits()
        );
    }

    #[test]
    fn div_by_self_is_one(a in any_bits()) {
        let v = f64::from_bits(a);
        prop_assume!(v.is_finite() && v != 0.0);
        prop_assert_eq!(sf_div(a, a), 1.0f64.to_bits());
    }

    #[test]
    fn sqrt_then_square_round_trips_within_two_ulp(v in 1e-300f64..1e300) {
        let r = f64::from_bits(sf_sqrt(v.to_bits()));
        let back = f64::from_bits(sf_mul(r.to_bits(), r.to_bits()));
        let ulp = (v.to_bits() as i64 - back.to_bits() as i64).abs();
        prop_assert!(ulp <= 2, "√ then square drifted {ulp} ulp for {v:e}");
    }

    #[test]
    fn sterbenz_subtraction_is_exact(m in 1u64..(1 << 52), e in 1u64..2046) {
        // For b/2 <= a <= b, a - b is exactly representable, so the
        // softfloat result must equal the mathematically exact difference.
        let a = f64::from_bits((e << 52) | m);
        let b = f64::from_bits(((e) << 52) | (m / 2));
        let ours = f64::from_bits(sf_sub(a.to_bits(), b.to_bits()));
        prop_assert_eq!(ours, a - b);
    }
}
