//! Fault-mask edge cases: single-bit sign/exponent flips crossing the
//! subnormal/Inf/NaN boundaries must round-trip correctly through the
//! softfloat add/mul datapath.
//!
//! The fault-injection subsystem (`fblas-faults`) XORs single bits into
//! values travelling through the simulated FPUs. A flipped *sign* bit
//! negates; a flipped *exponent* bit can catapult a value across the
//! subnormal boundary (gradual underflow), to infinity, or into NaN
//! space. The softfloat core must handle every such corrupted operand
//! exactly as a hardware IEEE-754 unit would — these are property tests
//! over deterministically seeded operand streams (xorshift, fixed seeds:
//! same failures on every run, no persistence files needed).

use fblas_fpu::softfloat::{self, sf_add, sf_mul, EXP_MAX, FRAC_BITS, SIGN_MASK};

/// The deterministic generator used across the workspace (same xorshift
/// idiom as `fblas-bench::synth`).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Bit-exact equality with NaNs compared as a class (payload propagation
/// is implementation-defined).
fn same(ours: u64, native: f64) -> bool {
    if softfloat::is_nan(ours) {
        native.is_nan()
    } else {
        ours == native.to_bits()
    }
}

fn assert_ops_match_native(a: u64, b: u64, context: &str) {
    let add = sf_add(a, b);
    let native_add = f64::from_bits(a) + f64::from_bits(b);
    assert!(
        same(add, native_add),
        "{context}: add({a:#018x}, {b:#018x}) = {add:#018x}, native {:#018x}",
        native_add.to_bits()
    );
    let mul = sf_mul(a, b);
    let native_mul = f64::from_bits(a) * f64::from_bits(b);
    assert!(
        same(mul, native_mul),
        "{context}: mul({a:#018x}, {b:#018x}) = {mul:#018x}, native {:#018x}",
        native_mul.to_bits()
    );
}

const CASES: usize = 4096;

#[test]
fn sign_flips_round_trip_through_add_and_mul() {
    let mut rng = XorShift::new(7);
    for i in 0..CASES {
        let a = rng.next();
        let b = rng.next();
        let flipped = a ^ SIGN_MASK;
        assert_ops_match_native(flipped, b, "sign flip");
        assert_eq!(flipped ^ SIGN_MASK, a, "double flip restores, case {i}");
    }
}

#[test]
fn exponent_flips_crossing_the_subnormal_boundary_match_native() {
    let mut rng = XorShift::new(11);
    for _ in 0..CASES {
        // Operands with tiny exponents: flipping any exponent bit lands
        // in (or leaves) the subnormal range, exercising gradual
        // underflow in both directions.
        let raw = rng.next();
        let small_exp = raw >> 62; // 0..=3: subnormal or barely normal
        let a = (raw & SIGN_MASK) | (small_exp << FRAC_BITS) | (rng.next() >> (64 - FRAC_BITS));
        let bit = FRAC_BITS + (rng.next() % 11) as u32;
        let flipped = a ^ (1u64 << bit);
        let b = rng.next();
        assert_ops_match_native(flipped, b, "subnormal-boundary exponent flip");
        // Subnormal against subnormal, too.
        let c = (rng.next() & SIGN_MASK) | (rng.next() >> (64 - FRAC_BITS));
        assert_ops_match_native(flipped, c, "subnormal vs subnormal");
    }
}

#[test]
fn exponent_flips_crossing_inf_and_nan_boundaries_match_native() {
    let mut rng = XorShift::new(13);
    for _ in 0..CASES {
        // Operands with near-maximal exponents: a single exponent-bit
        // flip saturates to EXP_MAX, producing Inf (zero fraction) or
        // NaN (non-zero fraction).
        let raw = rng.next();
        let high_exp = EXP_MAX - (raw >> 62); // 2044..=2047
        let a = (raw & SIGN_MASK) | (high_exp << FRAC_BITS) | (rng.next() >> (64 - FRAC_BITS));
        let bit = FRAC_BITS + (rng.next() % 11) as u32;
        let flipped = a ^ (1u64 << bit);
        let b = rng.next();
        assert_ops_match_native(flipped, b, "inf/nan-boundary exponent flip");
        // Inf/NaN interacting with exact infinities and zeros.
        assert_ops_match_native(flipped, f64::INFINITY.to_bits(), "vs +inf");
        assert_ops_match_native(flipped, (-0.0f64).to_bits(), "vs -0");
    }
}

#[test]
fn any_single_bit_flip_keeps_the_datapath_ieee_exact() {
    // The fully general property: whatever single bit a fault flips —
    // sign, exponent or mantissa, on either operand — the softfloat
    // result stays bit-identical to the host FPU's.
    let mut rng = XorShift::new(17);
    for _ in 0..CASES {
        let a = rng.next();
        let b = rng.next();
        let bit = (rng.next() % 64) as u32;
        let flipped_a = a ^ (1u64 << bit);
        let flipped_b = b ^ (1u64 << bit);
        assert_ops_match_native(flipped_a, b, "flip on a");
        assert_ops_match_native(a, flipped_b, "flip on b");
    }
}

#[test]
fn flip_inject_then_flip_back_restores_the_pipelined_result_bit_exactly() {
    use fblas_fpu::PipelinedAdder;
    // Retry-with-replay leans on this: a corrupted in-flight value whose
    // fault is undone (or a clean re-run) must reproduce the original
    // result to the bit, even when the flip crossed into NaN space.
    let mut rng = XorShift::new(19);
    for _ in 0..256 {
        let a = f64::from_bits(rng.next());
        let b = f64::from_bits(rng.next());
        let bit = (rng.next() % 64) as u32;

        let run = |corrupt: bool| {
            let mut adder = PipelinedAdder::<()>::with_stages(5);
            adder.step(Some((a, b, ())));
            if corrupt {
                assert!(adder.fault_flip_in_flight(4, bit));
                assert!(adder.fault_flip_in_flight(4, bit), "undo the flip");
            }
            let mut out = None;
            for _ in 0..5 {
                out = adder.step(None);
            }
            out.expect("result after latency").value.to_bits()
        };
        assert_eq!(run(false), run(true), "flip+unflip must be a no-op");
    }
}
