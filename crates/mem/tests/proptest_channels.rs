//! Property-based tests for the memory-channel models: conservation,
//! ordering and rate compliance for arbitrary data and rates.

use fblas_mem::{ReadChannel, SramBanks, WriteChannel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every word put into a read channel comes out exactly once, in
    /// order, and never faster than the configured rate allows.
    #[test]
    fn read_channel_conserves_and_orders(
        data in prop::collection::vec(-1e9f64..1e9, 1..300),
        rate_millis in 100u64..4000
    ) {
        let rate = rate_millis as f64 / 1000.0;
        let n = data.len();
        let mut ch = ReadChannel::new(data.clone(), rate);
        let mut got = Vec::with_capacity(n);
        let mut cycles = 0u64;
        while !ch.exhausted() {
            cycles += 1;
            prop_assert!(cycles < 100_000, "livelock");
            ch.tick();
            ch.read_up_to(usize::MAX, &mut got);
            // Prefix rate compliance: delivered ≤ rate·cycles + burst.
            prop_assert!(
                got.len() as f64 <= rate * cycles as f64 + rate.ceil() + 1.0,
                "cycle {cycles}: {} words exceeds rate budget",
                got.len()
            );
        }
        prop_assert_eq!(got, data);
    }

    /// A write channel stores exactly what was accepted, in order.
    #[test]
    fn write_channel_conserves(
        data in prop::collection::vec(-1e9f64..1e9, 1..200),
        rate_millis in 500u64..3000
    ) {
        let rate = rate_millis as f64 / 1000.0;
        let mut ch = WriteChannel::new(rate);
        let mut pending = data.clone();
        pending.reverse();
        let mut cycles = 0u64;
        while ch.words_written() < data.len() {
            cycles += 1;
            prop_assert!(cycles < 100_000, "livelock");
            ch.tick();
            while let Some(&v) = pending.last() {
                if ch.write(v) {
                    pending.pop();
                } else {
                    break;
                }
            }
        }
        prop_assert_eq!(ch.into_data(), data);
    }

    /// Striping across banks is a bijection: reading the banks cycle by
    /// cycle reconstructs the original stream.
    #[test]
    fn sram_striping_roundtrips(
        data in prop::collection::vec(-1e6f64..1e6, 1..400),
        n_banks in 1usize..8
    ) {
        let mut banks = SramBanks::striped(&data, n_banks);
        let mut out = Vec::new();
        let mut slots = Vec::new();
        while !banks.exhausted() {
            banks.read_cycle(&mut slots);
            for v in slots.iter().flatten() {
                out.push(*v);
            }
        }
        prop_assert_eq!(out, data);
    }

    /// Bank delivery is exactly one word per bank per cycle.
    #[test]
    fn sram_rate_is_one_word_per_bank(data_len in 1usize..500, n_banks in 1usize..6) {
        let data = vec![1.0f64; data_len];
        let mut banks = SramBanks::striped(&data, n_banks);
        let mut slots = Vec::new();
        while !banks.exhausted() {
            let before = banks.words_delivered();
            banks.read_cycle(&mut slots);
            prop_assert!(banks.words_delivered() - before <= n_banks as u64);
        }
        prop_assert_eq!(banks.words_delivered(), data_len as u64);
    }
}
