//! Bounded on-chip local stores with access accounting.
//!
//! Every claim the paper makes about storage sizes — "the size of required
//! on-chip memory is n words" (§4.2), "two local storage of size m²/k"
//! (§5.1), "one storage of size 2b/l" (§5.2) — is enforced here: a
//! [`LocalStore`] is constructed with its claimed capacity and panics on
//! any access outside it, so the architecture simulations cannot quietly
//! use more memory than the design budgets.

/// A fixed-capacity word store (register file or BRAM block).
#[derive(Debug, Clone)]
pub struct LocalStore {
    name: String,
    words: Vec<f64>,
    reads: u64,
    writes: u64,
}

impl LocalStore {
    /// Create a zero-initialized store of `capacity` words.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        Self {
            name: name.into(),
            words: vec![0.0; capacity],
            reads: 0,
            writes: 0,
        }
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Read the word at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds — a capacity violation is a design
    /// bug, not a runtime condition.
    pub fn read(&mut self, idx: usize) -> f64 {
        assert!(
            idx < self.words.len(),
            "{}: read index {idx} out of capacity {}",
            self.name,
            self.words.len()
        );
        self.reads += 1;
        self.words[idx]
    }

    /// Write `v` to `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn write(&mut self, idx: usize, v: f64) {
        assert!(
            idx < self.words.len(),
            "{}: write index {idx} out of capacity {}",
            self.name,
            self.words.len()
        );
        self.writes += 1;
        self.words[idx] = v;
    }

    /// Bulk-initialize the store (counts as one write per word).
    pub fn load(&mut self, data: &[f64]) {
        assert!(
            data.len() <= self.words.len(),
            "{}: load of {} words exceeds capacity {}",
            self.name,
            data.len(),
            self.words.len()
        );
        self.words[..data.len()].copy_from_slice(data);
        self.writes += data.len() as u64;
    }

    /// View of the current contents.
    pub fn contents(&self) -> &[f64] {
        &self.words
    }

    /// Total reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Store name (used in panic messages and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fault-injection hook: mutate the stored word at `idx` (reduced
    /// modulo the capacity), modelling an SEU in a BRAM cell. Does not
    /// touch the access counters — a particle strike is not a port
    /// access. Returns false for a zero-capacity store.
    ///
    /// Only call this from a [`fblas_sim::Design::inject`] implementation
    /// (enforced by the `fault-hook-purity` DRC rule).
    pub fn fault_mutate(&mut self, idx: usize, f: impl FnOnce(&mut f64)) -> bool {
        if self.words.is_empty() {
            return false;
        }
        let i = idx % self.words.len();
        f(&mut self.words[i]);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_written_value() {
        let mut s = LocalStore::new("x", 8);
        s.write(3, 2.5);
        assert_eq!(s.read(3), 2.5);
        assert_eq!(s.read(0), 0.0);
    }

    #[test]
    fn access_counters() {
        let mut s = LocalStore::new("c'", 4);
        s.write(0, 1.0);
        s.write(1, 2.0);
        s.read(0);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.reads(), 1);
    }

    #[test]
    fn load_initializes_prefix() {
        let mut s = LocalStore::new("x", 4);
        s.load(&[9.0, 8.0]);
        assert_eq!(s.contents(), &[9.0, 8.0, 0.0, 0.0]);
        assert_eq!(s.writes(), 2);
    }

    #[test]
    fn fault_mutate_leaves_access_counters_alone() {
        let mut s = LocalStore::new("y'", 2);
        s.write(1, 4.0);
        assert!(s.fault_mutate(3, |v| *v = -*v), "idx reduced mod capacity");
        assert_eq!(s.contents(), &[0.0, -4.0]);
        assert_eq!(s.writes(), 1, "a fault is not a port access");
        assert!(!LocalStore::new("empty", 0).fault_mutate(0, |_| {}));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn read_beyond_capacity_panics() {
        let mut s = LocalStore::new("x", 2);
        s.read(2);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn write_beyond_capacity_panics() {
        let mut s = LocalStore::new("x", 2);
        s.write(5, 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_load_panics() {
        let mut s = LocalStore::new("x", 2);
        s.load(&[1.0, 2.0, 3.0]);
    }
}
