//! Memory hierarchy model for reconfigurable high-end computing systems.
//!
//! Section 3.2.2 of the paper abstracts the memory available to one FPGA in
//! a reconfigurable system into three levels (paper Table 1):
//!
//! | level | what              | Cray XD1           | SRC `MAPstation`    |
//! |-------|-------------------|--------------------|-------------------|
//! | A     | on-chip BRAM      | 522 KB, 209 GB/s   | 648 KB, 260 GB/s  |
//! | B     | on-board SRAM     | 16 MB, 12.8 GB/s   | 24 MB, 4.8 GB/s   |
//! | C     | processor DRAM    | 8 GB, 3.2 GB/s     | 8 GB, 1.4 GB/s    |
//!
//! The Level-1/2 BLAS designs are I/O bound, so their simulated performance
//! is dictated by how many words per cycle these models deliver. The crate
//! provides:
//!
//! * [`hierarchy`] — the Table 1 level specifications for both platforms.
//! * [`channel`] — bandwidth-limited streaming read/write channels (a
//!   [`fblas_sim::Throttle`] in front of a word buffer).
//! * [`store`] — bounded on-chip local stores (register files, BRAM blocks,
//!   the C′/C storages of the matrix multiplier) with capacity enforcement
//!   and access counting.
//! * [`sram`] — the XD1's four QDR-II SRAM banks, one word per bank per
//!   cycle.
//! * [`staging`] — the DRAM→SRAM DMA staging model that accounts for the
//!   data-movement time the paper reports (8.0 ms total vs 1.6 ms compute
//!   for the Level-2 design).

#![forbid(unsafe_code)]

pub mod channel;
pub mod hierarchy;
pub mod sram;
pub mod staging;
pub mod store;

pub use channel::{ReadChannel, WriteChannel};
pub use hierarchy::{Level, LevelSpec, MemoryHierarchy};
pub use sram::SramBanks;
pub use staging::{BatchStaging, DmaModel, XD1_DRAM_BURST_BYTES};
pub use store::LocalStore;

/// Bytes in one double-precision word.
pub const WORD_BYTES: u64 = 8;

/// Bits per SRAM word on XD1 including the 8-bit parity code the paper
/// counts when quoting 5.9 GB/s for four banks at 164 MHz.
pub const SRAM_WORD_BITS: u64 = 72;
