//! DRAM↔SRAM staging (DMA) model.
//!
//! For the Level-2 design on XD1 (§6.2), matrix A begins in processor DRAM
//! and is distributed to the four SRAM banks before the computation starts;
//! the paper measures 8.0 ms total latency of which only 1.6 ms is compute —
//! the rest is this data movement at the achieved DRAM bandwidth of
//! 1.3 GB/s. [`DmaModel`] accounts for that movement.

/// A bulk-transfer engine with a fixed sustained bandwidth.
///
/// # Examples
///
/// ```
/// use fblas_mem::DmaModel;
///
/// // Staging a 1024×1024 double matrix over the 1.3 GB/s DRAM path
/// // costs ~6.5 ms — the dominant share of Table 4's 8.0 ms total.
/// let dma = DmaModel::xd1_dram();
/// let t = dma.transfer_seconds_words(1024 * 1024);
/// assert!((t - 6.45e-3).abs() < 0.2e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaModel {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed per-transfer setup latency in seconds (descriptor setup,
    /// `RapidArray` round trip). Zero in the paper's accounting.
    pub setup_s: f64,
}

impl DmaModel {
    /// A DMA engine with the given bandwidth and no setup cost.
    pub fn new(bandwidth_bytes_per_s: f64) -> Self {
        assert!(
            bandwidth_bytes_per_s > 0.0,
            "bandwidth must be positive, got {bandwidth_bytes_per_s}"
        );
        Self {
            bandwidth_bytes_per_s,
            setup_s: 0.0,
        }
    }

    /// The XD1 DRAM→FPGA path at the paper's achieved 1.3 GB/s.
    pub fn xd1_dram() -> Self {
        Self::new(1.3e9)
    }

    /// Seconds to move `bytes` bytes.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.setup_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Seconds to move `words` 64-bit words.
    pub fn transfer_seconds_words(&self, words: u64) -> f64 {
        self.transfer_seconds(words * crate::WORD_BYTES)
    }

    /// Cycles to move `bytes` at an FPGA clock of `clock_mhz` (rounded up).
    pub fn transfer_cycles(&self, bytes: u64, clock_mhz: f64) -> u64 {
        (self.transfer_seconds(bytes) * clock_mhz * 1e6).ceil() as u64
    }

    /// Nanoseconds to move `bytes` (rounded up) — the integer timeline
    /// unit the serving layer's discrete-event clock uses, so designs
    /// closing timing at different MHz share one deterministic timeline.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        // Accounting math over modeled time, not datapath value flow.
        // lint: allow(native-f64)
        (self.transfer_seconds(bytes) * 1e9).ceil() as u64
    }

    /// Number of bus bursts needed to move `bytes` at a burst granule of
    /// `burst_bytes`: the tail burst **rounds up** — a transfer that is
    /// not a whole multiple of the burst size still occupies a full
    /// burst slot on the bus. (A truncating `bytes / burst_bytes` here
    /// under-counts every ragged transfer by one burst; batching makes
    /// that off-by-one visible in the amortization ratio, because the
    /// per-batch tail is paid once instead of once per request.)
    pub fn bursts(bytes: u64, burst_bytes: u64) -> u64 {
        assert!(burst_bytes >= 1, "burst size must be positive");
        bytes.div_ceil(burst_bytes)
    }

    /// Seconds to move `bytes` when the engine issues whole bursts of
    /// `burst_bytes`: the byte count is rounded up to the burst granule
    /// before the bandwidth model applies.
    pub fn transfer_seconds_bursts(&self, bytes: u64, burst_bytes: u64) -> f64 {
        self.transfer_seconds(Self::bursts(bytes, burst_bytes).saturating_mul(burst_bytes))
    }

    /// Cycles to move `bytes` in whole `burst_bytes` bursts at
    /// `clock_mhz` (tail burst rounded up, then the cycle count itself
    /// rounded up).
    pub fn transfer_cycles_bursts(&self, bytes: u64, burst_bytes: u64, clock_mhz: f64) -> u64 {
        self.transfer_cycles(
            Self::bursts(bytes, burst_bytes).saturating_mul(burst_bytes),
            clock_mhz,
        )
    }

    /// Nanoseconds to move `bytes` in whole `burst_bytes` bursts.
    pub fn transfer_ns_bursts(&self, bytes: u64, burst_bytes: u64) -> u64 {
        self.transfer_ns(Self::bursts(bytes, burst_bytes).saturating_mul(burst_bytes))
    }

    /// Effective words per FPGA cycle this engine sustains.
    pub fn words_per_cycle(&self, clock_mhz: f64) -> f64 {
        self.bandwidth_bytes_per_s / crate::WORD_BYTES as f64 / (clock_mhz * 1e6)
    }
}

/// DMA burst granule of the XD1 DRAM→SRAM path, in bytes. Transfers are
/// issued as whole bursts; a ragged tail occupies a full slot.
pub const XD1_DRAM_BURST_BYTES: u64 = 128;

/// DRAM→SRAM staging cost of one *batch* of requests that share a staged
/// operand (the Table 4 amortization: matrix A crosses the 1.3 GB/s path
/// once per batch, per-request operands once per request).
///
/// This is the accounting object behind the serving layer's batch
/// scheduler: Table 4 splits the Level-2 XD1 run into 8.0 ms total vs
/// 1.6 ms compute, so paying the ~6.45 ms staging once per batch instead
/// of once per request is the single biggest modeled win the paper's
/// numbers admit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStaging {
    /// The DMA engine staging operands.
    pub dma: DmaModel,
    /// Burst granule in bytes (tail bursts round up).
    pub burst_bytes: u64,
}

impl BatchStaging {
    /// The XD1 path: 1.3 GB/s in 128-byte bursts.
    pub fn xd1() -> Self {
        Self {
            dma: DmaModel::xd1_dram(),
            burst_bytes: XD1_DRAM_BURST_BYTES,
        }
    }

    /// Nanoseconds to stage one batch: `shared_bytes` is moved once,
    /// `per_request_bytes` once per request. `requests = 0` costs
    /// nothing (an empty batch is never issued).
    pub fn batch_ns(&self, shared_bytes: u64, per_request_bytes: u64, requests: u64) -> u64 {
        if requests == 0 {
            return 0;
        }
        let shared = self.dma.transfer_ns_bursts(shared_bytes, self.burst_bytes);
        let per_req = self
            .dma
            .transfer_ns_bursts(per_request_bytes, self.burst_bytes);
        shared.saturating_add(per_req.saturating_mul(requests))
    }

    /// Amortization ratio of a `requests`-deep batch: unbatched staging
    /// time (every request re-stages the shared operand) over batched.
    /// 1.0 when nothing is shared; approaches `requests` as the shared
    /// operand dominates — the Table 4 regime.
    pub fn amortization(&self, shared_bytes: u64, per_request_bytes: u64, requests: u64) -> f64 {
        let batched = self.batch_ns(shared_bytes, per_request_bytes, requests);
        if batched == 0 {
            return 1.0;
        }
        let unbatched = self
            .batch_ns(shared_bytes, per_request_bytes, 1)
            .saturating_mul(requests);
        unbatched as f64 / batched as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_time_reproduces_table4_split() {
        // A 1024×1024 double matrix is 8 MiB; at 1.3 GB/s that is ≈6.45 ms.
        // Added to the 1.6 ms compute time this gives the paper's ≈8.0 ms
        // total for Level-2 BLAS on XD1.
        let dma = DmaModel::xd1_dram();
        let t = dma.transfer_seconds(1024 * 1024 * 8);
        assert!((t - 6.45e-3).abs() < 0.1e-3, "got {t}");
        let total = t + 1.6e-3;
        assert!((total - 8.0e-3).abs() < 0.25e-3, "total {total}");
    }

    #[test]
    fn words_and_bytes_agree() {
        let dma = DmaModel::new(8e9);
        assert_eq!(dma.transfer_seconds_words(1000), dma.transfer_seconds(8000));
    }

    #[test]
    fn cycles_round_up() {
        let dma = DmaModel::new(8e8); // 0.1 words/cycle at 1 GHz
                                      // 1 word = 8 bytes = 10 ns = 10 cycles at 1000 MHz.
        assert_eq!(dma.transfer_cycles(8, 1000.0), 10);
        assert_eq!(dma.transfer_cycles(9, 1000.0), 12); // 11.25 → 12
    }

    #[test]
    fn setup_cost_added_once() {
        let mut dma = DmaModel::new(1e9);
        dma.setup_s = 1e-6;
        assert!((dma.transfer_seconds(0) - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn words_per_cycle_at_clock() {
        // 1.3 GB/s at 164 MHz ≈ 0.99 words/cycle: the DRAM path can just
        // barely feed one word per cycle to the Level-2 design.
        let wpc = DmaModel::xd1_dram().words_per_cycle(164.0);
        assert!((wpc - 0.99).abs() < 0.01, "got {wpc}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_bandwidth_rejected() {
        DmaModel::new(0.0);
    }

    // ---- burst-granular staging (serving-layer accounting) ----

    /// Regression: a transfer that is not a whole multiple of the burst
    /// size must round the tail burst *up*. A truncating
    /// `bytes / burst_bytes` implementation answers `k` bursts for
    /// `k·burst + 1` bytes and this test fails on it.
    #[test]
    fn tail_burst_rounds_up_not_truncates() {
        let b = XD1_DRAM_BURST_BYTES;
        assert_eq!(DmaModel::bursts(0, b), 0);
        assert_eq!(DmaModel::bursts(1, b), 1);
        assert_eq!(DmaModel::bursts(b, b), 1);
        assert_eq!(DmaModel::bursts(b + 1, b), 2, "tail must not truncate");
        assert_eq!(DmaModel::bursts(7 * b - 1, b), 7);
        assert_eq!(DmaModel::bursts(7 * b + 1, b), 8);
        // The time model sees the rounded byte count: one extra byte
        // over a burst boundary costs a whole extra burst.
        let dma = DmaModel::new(1.3e9);
        let exact = dma.transfer_ns_bursts(7 * b, b);
        let ragged = dma.transfer_ns_bursts(7 * b + 1, b);
        assert!(ragged > exact, "ragged tail must cost a full burst");
        assert_eq!(ragged, dma.transfer_ns(8 * b));
        // Cycle accounting takes the same rounded path.
        assert_eq!(
            dma.transfer_cycles_bursts(7 * b + 1, b, 164.0),
            dma.transfer_cycles(8 * b, 164.0)
        );
    }

    /// Regression against the Table 4 staging split: batching B = 8
    /// `MvM` requests that share the 1024×1024 staged matrix pays the
    /// ≈6.45 ms DRAM→SRAM movement once, so the per-request staging
    /// drops from ≈6.45 ms toward the per-request vector cost, and the
    /// amortization ratio approaches B.
    #[test]
    fn batch_staging_amortizes_the_table4_split() {
        let staging = BatchStaging::xd1();
        let a_bytes = 1024 * 1024 * 8; // matrix A, staged once per batch
        let x_bytes = 1024 * 8; // vector x, staged per request
        let one = staging.batch_ns(a_bytes, x_bytes, 1);
        assert!(
            (one as f64 / 1e6 - 6.45).abs() < 0.1,
            "single-request staging must reproduce the ≈6.45 ms split, got {one} ns"
        );
        let eight = staging.batch_ns(a_bytes, x_bytes, 8);
        assert!(
            eight < 2 * one,
            "8-deep batch must pay the matrix once: {eight} vs {one}"
        );
        let ratio = staging.amortization(a_bytes, x_bytes, 8);
        assert!(
            (7.0..8.0).contains(&ratio),
            "amortization must approach the batch depth, got {ratio}"
        );
        // No shared operand → nothing amortizes.
        assert!((staging.amortization(0, x_bytes, 8) - 1.0).abs() < 1e-12);
        // Empty batches are free and ratio-neutral.
        assert_eq!(staging.batch_ns(a_bytes, x_bytes, 0), 0);
        assert!((staging.amortization(a_bytes, x_bytes, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "burst size must be positive")]
    fn zero_burst_granule_rejected() {
        DmaModel::bursts(64, 0);
    }
}
