//! DRAM↔SRAM staging (DMA) model.
//!
//! For the Level-2 design on XD1 (§6.2), matrix A begins in processor DRAM
//! and is distributed to the four SRAM banks before the computation starts;
//! the paper measures 8.0 ms total latency of which only 1.6 ms is compute —
//! the rest is this data movement at the achieved DRAM bandwidth of
//! 1.3 GB/s. [`DmaModel`] accounts for that movement.

/// A bulk-transfer engine with a fixed sustained bandwidth.
///
/// # Examples
///
/// ```
/// use fblas_mem::DmaModel;
///
/// // Staging a 1024×1024 double matrix over the 1.3 GB/s DRAM path
/// // costs ~6.5 ms — the dominant share of Table 4's 8.0 ms total.
/// let dma = DmaModel::xd1_dram();
/// let t = dma.transfer_seconds_words(1024 * 1024);
/// assert!((t - 6.45e-3).abs() < 0.2e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaModel {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed per-transfer setup latency in seconds (descriptor setup,
    /// `RapidArray` round trip). Zero in the paper's accounting.
    pub setup_s: f64,
}

impl DmaModel {
    /// A DMA engine with the given bandwidth and no setup cost.
    pub fn new(bandwidth_bytes_per_s: f64) -> Self {
        assert!(
            bandwidth_bytes_per_s > 0.0,
            "bandwidth must be positive, got {bandwidth_bytes_per_s}"
        );
        Self {
            bandwidth_bytes_per_s,
            setup_s: 0.0,
        }
    }

    /// The XD1 DRAM→FPGA path at the paper's achieved 1.3 GB/s.
    pub fn xd1_dram() -> Self {
        Self::new(1.3e9)
    }

    /// Seconds to move `bytes` bytes.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.setup_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Seconds to move `words` 64-bit words.
    pub fn transfer_seconds_words(&self, words: u64) -> f64 {
        self.transfer_seconds(words * crate::WORD_BYTES)
    }

    /// Cycles to move `bytes` at an FPGA clock of `clock_mhz` (rounded up).
    pub fn transfer_cycles(&self, bytes: u64, clock_mhz: f64) -> u64 {
        (self.transfer_seconds(bytes) * clock_mhz * 1e6).ceil() as u64
    }

    /// Effective words per FPGA cycle this engine sustains.
    pub fn words_per_cycle(&self, clock_mhz: f64) -> f64 {
        self.bandwidth_bytes_per_s / crate::WORD_BYTES as f64 / (clock_mhz * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_time_reproduces_table4_split() {
        // A 1024×1024 double matrix is 8 MiB; at 1.3 GB/s that is ≈6.45 ms.
        // Added to the 1.6 ms compute time this gives the paper's ≈8.0 ms
        // total for Level-2 BLAS on XD1.
        let dma = DmaModel::xd1_dram();
        let t = dma.transfer_seconds(1024 * 1024 * 8);
        assert!((t - 6.45e-3).abs() < 0.1e-3, "got {t}");
        let total = t + 1.6e-3;
        assert!((total - 8.0e-3).abs() < 0.25e-3, "total {total}");
    }

    #[test]
    fn words_and_bytes_agree() {
        let dma = DmaModel::new(8e9);
        assert_eq!(dma.transfer_seconds_words(1000), dma.transfer_seconds(8000));
    }

    #[test]
    fn cycles_round_up() {
        let dma = DmaModel::new(8e8); // 0.1 words/cycle at 1 GHz
                                      // 1 word = 8 bytes = 10 ns = 10 cycles at 1000 MHz.
        assert_eq!(dma.transfer_cycles(8, 1000.0), 10);
        assert_eq!(dma.transfer_cycles(9, 1000.0), 12); // 11.25 → 12
    }

    #[test]
    fn setup_cost_added_once() {
        let mut dma = DmaModel::new(1e9);
        dma.setup_s = 1e-6;
        assert!((dma.transfer_seconds(0) - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn words_per_cycle_at_clock() {
        // 1.3 GB/s at 164 MHz ≈ 0.99 words/cycle: the DRAM path can just
        // barely feed one word per cycle to the Level-2 design.
        let wpc = DmaModel::xd1_dram().words_per_cycle(164.0);
        assert!((wpc - 0.99).abs() < 0.01, "got {wpc}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_bandwidth_rejected() {
        DmaModel::new(0.0);
    }
}
