//! The three-level memory hierarchy of the reconfigurable-system model
//! (paper §3.2.2, Table 1).

/// A level in the memory hierarchy of one compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// On-chip memory (Block RAM) — small, enormous aggregate bandwidth.
    A,
    /// On-board SRAM attached to the FPGA.
    B,
    /// DRAM of the general-purpose processor, reachable by the FPGA
    /// directly (without going through Level B — the paper's third
    /// difference from CPU cache hierarchies).
    C,
}

impl Level {
    /// All levels, fastest first.
    pub const ALL: [Level; 3] = [Level::A, Level::B, Level::C];

    /// Conventional name used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Level::A => "Level A (BRAM)",
            Level::B => "Level B (SRAM)",
            Level::C => "Level C (DRAM)",
        }
    }
}

/// Capacity and bandwidth of one memory level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelSpec {
    /// Which level this specifies.
    pub level: Level,
    /// Storage capacity in bytes.
    pub capacity_bytes: u64,
    /// Bandwidth to the FPGA in bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl LevelSpec {
    /// Capacity in 64-bit words.
    pub fn capacity_words(&self) -> u64 {
        self.capacity_bytes / crate::WORD_BYTES
    }

    /// Words per cycle this level sustains at the given FPGA clock.
    pub fn words_per_cycle(&self, clock_mhz: f64) -> f64 {
        self.bandwidth_bytes_per_s / crate::WORD_BYTES as f64 / (clock_mhz * 1e6)
    }
}

/// The full hierarchy available to a single FPGA in one compute node.
///
/// # Examples
///
/// ```
/// use fblas_mem::MemoryHierarchy;
///
/// let h = MemoryHierarchy::cray_xd1();
/// // Table 1's structure: bandwidth falls, capacity grows down-level.
/// assert!(h.is_well_formed());
/// assert_eq!(h.b.capacity_words(), 2 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryHierarchy {
    /// Platform name (for reports).
    pub platform: &'static str,
    /// Level A: on-chip BRAM.
    pub a: LevelSpec,
    /// Level B: on-board SRAM.
    pub b: LevelSpec,
    /// Level C: DRAM.
    pub c: LevelSpec,
}

impl MemoryHierarchy {
    /// The Cray XD1 column of paper Table 1.
    pub fn cray_xd1() -> Self {
        Self {
            platform: "Cray XD1",
            a: LevelSpec {
                level: Level::A,
                capacity_bytes: 522 * 1024,
                bandwidth_bytes_per_s: 209e9,
            },
            b: LevelSpec {
                level: Level::B,
                capacity_bytes: 16 * 1024 * 1024,
                bandwidth_bytes_per_s: 12.8e9,
            },
            c: LevelSpec {
                level: Level::C,
                capacity_bytes: 8 * 1024 * 1024 * 1024,
                bandwidth_bytes_per_s: 3.2e9,
            },
        }
    }

    /// The SRC `MAPstation` column of paper Table 1.
    pub fn src_mapstation() -> Self {
        Self {
            platform: "SRC MAPstation",
            a: LevelSpec {
                level: Level::A,
                capacity_bytes: 648 * 1024,
                bandwidth_bytes_per_s: 260e9,
            },
            b: LevelSpec {
                level: Level::B,
                capacity_bytes: 24 * 1024 * 1024,
                bandwidth_bytes_per_s: 4.8e9,
            },
            c: LevelSpec {
                level: Level::C,
                capacity_bytes: 8 * 1024 * 1024 * 1024,
                bandwidth_bytes_per_s: 1.4e9,
            },
        }
    }

    /// Look up one level's specification.
    pub fn level(&self, l: Level) -> &LevelSpec {
        match l {
            Level::A => &self.a,
            Level::B => &self.b,
            Level::C => &self.c,
        }
    }

    /// Bandwidth decreases monotonically down the hierarchy while capacity
    /// increases — the structural property Figure 5 of the paper depicts.
    pub fn is_well_formed(&self) -> bool {
        self.a.bandwidth_bytes_per_s > self.b.bandwidth_bytes_per_s
            && self.b.bandwidth_bytes_per_s > self.c.bandwidth_bytes_per_s
            && self.a.capacity_bytes < self.b.capacity_bytes
            && self.b.capacity_bytes < self.c.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cray_values() {
        let h = MemoryHierarchy::cray_xd1();
        assert_eq!(h.a.capacity_bytes, 522 * 1024);
        assert_eq!(h.b.capacity_bytes, 16 << 20);
        assert_eq!(h.c.capacity_bytes, 8 << 30);
        assert_eq!(h.a.bandwidth_bytes_per_s, 209e9);
        assert_eq!(h.b.bandwidth_bytes_per_s, 12.8e9);
        assert_eq!(h.c.bandwidth_bytes_per_s, 3.2e9);
    }

    #[test]
    fn table1_src_values() {
        let h = MemoryHierarchy::src_mapstation();
        assert_eq!(h.a.capacity_bytes, 648 * 1024);
        assert_eq!(h.b.capacity_bytes, 24 << 20);
        assert_eq!(h.b.bandwidth_bytes_per_s, 4.8e9);
        assert_eq!(h.c.bandwidth_bytes_per_s, 1.4e9);
    }

    #[test]
    fn both_platforms_well_formed() {
        assert!(MemoryHierarchy::cray_xd1().is_well_formed());
        assert!(MemoryHierarchy::src_mapstation().is_well_formed());
    }

    #[test]
    fn level_lookup_matches_fields() {
        let h = MemoryHierarchy::cray_xd1();
        assert_eq!(h.level(Level::A), &h.a);
        assert_eq!(h.level(Level::B), &h.b);
        assert_eq!(h.level(Level::C), &h.c);
    }

    #[test]
    fn words_per_cycle_at_design_clock() {
        // XD1 SRAM at 12.8 GB/s feeding a 170 MHz design sustains
        // 12.8e9/8/170e6 ≈ 9.4 words/cycle; the paper caps designs at the
        // 6.4 GB/s read direction, handled by the design parameters.
        let h = MemoryHierarchy::cray_xd1();
        let wpc = h.b.words_per_cycle(170.0);
        assert!((wpc - 9.41).abs() < 0.01, "got {wpc}");
    }

    #[test]
    fn capacity_words() {
        let h = MemoryHierarchy::cray_xd1();
        // 16 MB of SRAM holds 2M words: a 1024×1024 matrix with room over
        // (§6.2: n can be at most √2 × 1024).
        assert_eq!(h.b.capacity_words(), 2 * 1024 * 1024);
    }

    #[test]
    fn level_names() {
        assert!(Level::A.name().contains("BRAM"));
        assert!(Level::B.name().contains("SRAM"));
        assert!(Level::C.name().contains("DRAM"));
    }
}
