//! Bandwidth-limited streaming channels between a memory level and a design.
//!
//! A [`ReadChannel`] models a unidirectional path that delivers at most
//! `words_per_cycle` words each cycle (fractional rates model links such as
//! a 1.3 GB/s DRAM path feeding a 164 MHz design ≈ 0.99 words/cycle). The
//! channel must be ticked every cycle; reads then draw against the accrued
//! bandwidth credit.

use fblas_sim::Throttle;

/// A rate-limited streaming read port over a word buffer.
#[derive(Debug, Clone)]
pub struct ReadChannel {
    data: Vec<f64>,
    pos: usize,
    throttle: Throttle,
    /// Pending fault-injected stall beats; latched into `denied` at tick.
    stalled: u64,
    denied: bool,
}

impl ReadChannel {
    /// Create a channel that streams `data` at `words_per_cycle`.
    pub fn new(data: Vec<f64>, words_per_cycle: f64) -> Self {
        Self {
            data,
            pos: 0,
            throttle: Throttle::new(words_per_cycle),
            stalled: 0,
            denied: false,
        }
    }

    /// Advance one cycle, accruing bandwidth credit.
    pub fn tick(&mut self) {
        self.throttle.tick();
        self.denied = self.stalled > 0;
        self.stalled = self.stalled.saturating_sub(1);
    }

    /// Attempt to read the next word this cycle.
    ///
    /// Returns `None` if the stream is exhausted *or* the bandwidth credit
    /// for this cycle is spent.
    pub fn read(&mut self) -> Option<f64> {
        if self.denied {
            return None;
        }
        if self.pos < self.data.len() && self.throttle.grant(1) {
            let v = self.data[self.pos];
            self.pos += 1;
            Some(v)
        } else {
            None
        }
    }

    /// Read up to `n` words this cycle (bounded by bandwidth and data).
    pub fn read_up_to(&mut self, n: usize, out: &mut Vec<f64>) -> usize {
        let mut got = 0;
        while got < n {
            match self.read() {
                Some(v) => {
                    out.push(v);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    /// True once every word has been delivered.
    pub fn exhausted(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Words delivered so far.
    pub fn words_read(&self) -> usize {
        self.pos
    }

    /// Total words in the stream.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the stream holds no words at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Configured rate in words per cycle.
    pub fn rate(&self) -> f64 {
        self.throttle.rate()
    }

    /// Borrow the full backing stream (delivered and undelivered words
    /// alike). Fused fast-forward replays consume the stream by index
    /// arithmetic instead of per-cycle reads, so they address it whole.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Sample channel utilization (words delivered since the last sample)
    /// into a probe. Call once per cycle from the owning design.
    pub fn probe_utilization(&self, probe: &mut fblas_sim::Probe, id: fblas_sim::ProbeId) {
        self.throttle.probe_utilization(probe, id);
    }

    /// Fault-injection hook: drop the next `beats` delivery beats,
    /// modelling a transient memory-channel glitch (refresh collision,
    /// link retrain). Reads are denied for exactly `beats` ticks starting
    /// with the tick that follows injection; no data is lost or
    /// reordered, so the fault is purely a timing perturbation. Returns
    /// false for a zero-beat request (architecturally masked).
    ///
    /// Only call this from a [`fblas_sim::Design::inject`] implementation
    /// (enforced by the `fault-hook-purity` DRC rule).
    pub fn fault_drop_beats(&mut self, beats: u64) -> bool {
        if beats == 0 {
            return false;
        }
        self.stalled = self.stalled.max(beats);
        true
    }
}

/// A rate-limited streaming write port collecting words into a buffer.
#[derive(Debug, Clone)]
pub struct WriteChannel {
    data: Vec<f64>,
    throttle: Throttle,
}

impl WriteChannel {
    /// Create a write channel sustaining `words_per_cycle`.
    pub fn new(words_per_cycle: f64) -> Self {
        Self {
            data: Vec::new(),
            throttle: Throttle::new(words_per_cycle),
        }
    }

    /// Create a write channel expecting `capacity` words (preallocates).
    pub fn with_capacity(words_per_cycle: f64, capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
            throttle: Throttle::new(words_per_cycle),
        }
    }

    /// Advance one cycle, accruing bandwidth credit.
    pub fn tick(&mut self) {
        self.throttle.tick();
    }

    /// Attempt to write one word this cycle; returns false if the cycle's
    /// bandwidth is exhausted (the design must hold the word and retry).
    pub fn write(&mut self, v: f64) -> bool {
        if self.throttle.grant(1) {
            self.data.push(v);
            true
        } else {
            false
        }
    }

    /// Deliver a word without drawing bandwidth credit. Fused
    /// fast-forward replays use this after proving the rate
    /// precondition (emergent words per cycle never exceed the channel
    /// rate), so the throttle is bypassed rather than simulated; the
    /// caller reconstructs `probe_utilization` totals itself.
    pub fn push_unthrottled(&mut self, v: f64) {
        self.data.push(v);
    }

    /// Words written so far.
    pub fn words_written(&self) -> usize {
        self.data.len()
    }

    /// Consume the channel, returning everything written.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Borrow everything written so far.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Sample channel utilization (words accepted since the last sample)
    /// into a probe. Call once per cycle from the owning design.
    pub fn probe_utilization(&self, probe: &mut fblas_sim::Probe, id: fblas_sim::ProbeId) {
        self.throttle.probe_utilization(probe, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_channel_delivers_in_order_at_rate() {
        let mut ch = ReadChannel::new((0..10).map(f64::from).collect(), 2.0);
        let mut got = Vec::new();
        for _ in 0..5 {
            ch.tick();
            // two words per cycle, a third read is denied
            got.push(ch.read().unwrap());
            got.push(ch.read().unwrap());
            assert_eq!(ch.read(), None);
        }
        assert_eq!(got, (0..10).map(f64::from).collect::<Vec<_>>());
        assert!(ch.exhausted());
    }

    #[test]
    fn fractional_rate_delivers_every_other_cycle() {
        let mut ch = ReadChannel::new(vec![1.0; 100], 0.5);
        let mut delivered = 0;
        for _ in 0..100 {
            ch.tick();
            if ch.read().is_some() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 50);
    }

    #[test]
    fn exhausted_stream_returns_none_with_credit_left() {
        let mut ch = ReadChannel::new(vec![7.0], 4.0);
        ch.tick();
        assert_eq!(ch.read(), Some(7.0));
        assert!(ch.exhausted());
        assert_eq!(ch.read(), None);
    }

    #[test]
    fn read_up_to_respects_bandwidth() {
        let mut ch = ReadChannel::new(vec![1.0; 16], 3.0);
        let mut out = Vec::new();
        ch.tick();
        assert_eq!(ch.read_up_to(8, &mut out), 3);
        ch.tick();
        assert_eq!(ch.read_up_to(8, &mut out), 3);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn fault_drop_beats_denies_exactly_that_many_ticks() {
        let mut ch = ReadChannel::new((0..8).map(f64::from).collect(), 1.0);
        ch.tick();
        assert_eq!(ch.read(), Some(0.0));
        assert!(!ch.fault_drop_beats(0), "zero beats is masked");
        assert!(ch.fault_drop_beats(3));
        for _ in 0..3 {
            ch.tick();
            assert_eq!(ch.read(), None, "stalled beat delivers nothing");
        }
        // Stream resumes in order with nothing lost.
        let mut got = Vec::new();
        for _ in 0..7 {
            ch.tick();
            if let Some(v) = ch.read() {
                got.push(v);
            }
        }
        assert_eq!(got, (1..8).map(f64::from).collect::<Vec<_>>());
        assert!(ch.exhausted());
    }

    #[test]
    fn write_channel_enforces_rate() {
        let mut ch = WriteChannel::new(1.0);
        let mut written = 0;
        for i in 0..10 {
            ch.tick();
            if ch.write(f64::from(i)) {
                written += 1;
            }
            // second write in the same cycle may use banked credit once,
            // after which the rate limits to one per cycle
            ch.write(100.0);
        }
        assert!(written >= 9, "sustained writes: {written}");
        let achieved = ch.words_written() as f64 / 10.0;
        assert!(achieved <= 1.2, "rate exceeded: {achieved} words/cycle");
    }

    #[test]
    fn write_channel_preserves_order() {
        let mut ch = WriteChannel::with_capacity(2.0, 4);
        for i in 0..4 {
            ch.tick();
            assert!(ch.write(f64::from(i)));
        }
        assert_eq!(ch.into_data(), vec![0.0, 1.0, 2.0, 3.0]);
    }
}
