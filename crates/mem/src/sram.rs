//! The XD1's banked SRAM: four QDR-II banks, one word per bank per cycle.
//!
//! §6.2 of the paper: "the design on the FPGA reads one word from each
//! SRAM bank in one clock cycle", giving 4 × 72 bits × 164 MHz ≈ 5.9 GB/s.
//! Matrix A is striped across the banks before the computation starts.

/// Banked SRAM delivering one word per bank per cycle.
#[derive(Debug, Clone)]
pub struct SramBanks {
    banks: Vec<Vec<f64>>,
    positions: Vec<usize>,
    cycles: u64,
    words_delivered: u64,
}

impl SramBanks {
    /// Number of SRAM banks attached to each FPGA on XD1.
    pub const XD1_BANKS: usize = 4;

    /// Stripe `data` across `n_banks` banks round-robin (word `i` lands in
    /// bank `i % n_banks`), matching how the Level-2 design distributes
    /// matrix A so that k consecutive elements of a row are read in one
    /// cycle.
    pub fn striped(data: &[f64], n_banks: usize) -> Self {
        assert!(n_banks > 0, "need at least one bank");
        let mut banks = vec![Vec::with_capacity(data.len() / n_banks + 1); n_banks];
        for (i, &v) in data.iter().enumerate() {
            banks[i % n_banks].push(v);
        }
        Self {
            positions: vec![0; n_banks],
            banks,
            cycles: 0,
            words_delivered: 0,
        }
    }

    /// Number of banks.
    pub fn n_banks(&self) -> usize {
        self.banks.len()
    }

    /// Advance one cycle and read the next word from every bank that still
    /// has data. `out` receives one `Option` per bank.
    pub fn read_cycle(&mut self, out: &mut Vec<Option<f64>>) {
        self.cycles += 1;
        out.clear();
        for (bank, pos) in self.banks.iter().zip(self.positions.iter_mut()) {
            if *pos < bank.len() {
                out.push(Some(bank[*pos]));
                *pos += 1;
                self.words_delivered += 1;
            } else {
                out.push(None);
            }
        }
    }

    /// True once every bank has been fully read.
    pub fn exhausted(&self) -> bool {
        self.positions
            .iter()
            .zip(&self.banks)
            .all(|(p, b)| *p == b.len())
    }

    /// Total words delivered across all banks.
    pub fn words_delivered(&self) -> u64 {
        self.words_delivered
    }

    /// Cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Achieved bandwidth in bytes/second at the given clock, counting
    /// `bits_per_word` bits per delivered word (72 on XD1 with parity).
    pub fn achieved_bandwidth(&self, clock_mhz: f64, bits_per_word: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let bytes = self.words_delivered as f64 * bits_per_word as f64 / 8.0;
        bytes / (self.cycles as f64 / (clock_mhz * 1e6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_is_round_robin() {
        let data: Vec<f64> = (0..8).map(f64::from).collect();
        let mut s = SramBanks::striped(&data, 4);
        let mut out = Vec::new();
        s.read_cycle(&mut out);
        assert_eq!(out, vec![Some(0.0), Some(1.0), Some(2.0), Some(3.0)]);
        s.read_cycle(&mut out);
        assert_eq!(out, vec![Some(4.0), Some(5.0), Some(6.0), Some(7.0)]);
        assert!(s.exhausted());
    }

    #[test]
    fn uneven_data_drains_ragged_tail() {
        let data: Vec<f64> = (0..6).map(f64::from).collect();
        let mut s = SramBanks::striped(&data, 4);
        let mut out = Vec::new();
        s.read_cycle(&mut out);
        s.read_cycle(&mut out);
        assert_eq!(out, vec![Some(4.0), Some(5.0), None, None]);
        assert!(s.exhausted());
        assert_eq!(s.words_delivered(), 6);
    }

    #[test]
    fn xd1_bandwidth_with_parity_matches_paper() {
        // 4 banks × 72 bits × 164 MHz = 5.9 GB/s (paper Table 4).
        let data = vec![1.0; 4096];
        let mut s = SramBanks::striped(&data, SramBanks::XD1_BANKS);
        let mut out = Vec::new();
        while !s.exhausted() {
            s.read_cycle(&mut out);
        }
        let bw = s.achieved_bandwidth(164.0, crate::SRAM_WORD_BITS);
        assert!((bw / 1e9 - 5.9).abs() < 0.01, "got {bw}");
    }

    #[test]
    fn one_word_per_bank_per_cycle() {
        let data = vec![0.0; 100];
        let mut s = SramBanks::striped(&data, 4);
        let mut out = Vec::new();
        s.read_cycle(&mut out);
        assert_eq!(s.words_delivered(), 4);
        assert_eq!(s.cycles(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        SramBanks::striped(&[1.0], 0);
    }
}
