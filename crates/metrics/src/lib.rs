//! Paper-parity observatory: canonical run records, trajectory files and
//! regression gates.
//!
//! The SC'05 reproduction derives all of its value from a set of numbers —
//! sustained MFLOPS, cycle counts, slices and clock rates versus Tables
//! 1–4 and Figures 9–12. This crate makes those numbers *persistent
//! artifacts* instead of transient stdout:
//!
//! * [`RunRecord`] — one schema-versioned measurement: kernel + config
//!   identity, the raw [`SimReport`](fblas_sim::SimReport) counters, the
//!   probe layer's stall-cause breakdown, modeled area/clock, sustained
//!   MFLOPS, compute- vs bandwidth-bound classification and paper-parity
//!   deltas.
//! * [`RecordSet`] / [`store`] — deterministic JSON persistence and the
//!   `BENCH_<n>.json` trajectory convention.
//! * [`tolerance`] — the one shared table of paper-reported values and
//!   tolerances; [`ParityGate`] is the PASS/FAIL gate every tool uses.
//! * [`diff`] — strict baseline comparison (cycle drift, MFLOPS drift,
//!   stall-attribution drift, parity-band exits) with a CI exit code.
//! * [`report`] — markdown scoreboards and ASCII-sparkline trajectories
//!   spliced into `EXPERIMENTS.md`.
//! * [`faults`] — fault-coverage records and the reliability scoreboard
//!   emitted by `observatory faults` (same determinism contract, its own
//!   schema version and `EXPERIMENTS.md` marker pair).
//! * [`serve`] — serving-campaign records (`SERVE_<n>.json`): per-tenant
//!   admission/latency/SLO accounting for the BLAS-as-a-service front
//!   end, with the same byte-determinism contract and a strict baseline
//!   diff gate.
//! * [`scale`] — multi-FPGA scaling records (`SCALE_<n>.json`): one row
//!   per shard plan of the simulated fabric campaign, gated against the
//!   §6.4 projections with a committed per-kernel tolerance table.
//!
//! JSON is hand-rolled ([`json`]) because the workspace vendors no
//! serialization crates; the writer is byte-deterministic by contract.

#![forbid(unsafe_code)]

pub mod diff;
pub mod faults;
pub mod json;
pub mod record;
pub mod report;
pub mod scale;
pub mod serve;
pub mod store;
pub mod tolerance;

pub use diff::{diff_sets, DiffReport, DiffSeverity};
pub use faults::{
    coverage, render_fault_scoreboard, render_fault_section, splice_fault_section, DegradedRecord,
    FaultCoverage, FaultRecord, FaultSet, FAULT_SCHEMA_VERSION,
};
pub use json::Json;
pub use record::{Bound, PaperParity, RecordKind, RunRecord, StallBreakdown, SCHEMA_VERSION};
pub use scale::{
    diff_scale, list_scale_files, next_scale_index, parse_scale_index, render_scale_section,
    scale_file_name, scale_tolerance, splice_scale_section, ScaleDiff, ScaleRecord, ScaleSet,
    SCALE_SCHEMA_VERSION, SCALE_SOUNDNESS_EPS, SCALE_TOLERANCES,
};
pub use serve::{
    diff_serve, list_serve_files, next_serve_index, parse_serve_index, serve_file_name,
    LatencyDigest, ServeDiff, ServeRecord, ServeSet, TenantRecord, SERVE_SCHEMA_VERSION,
};
pub use store::{
    bench_file_name, list_bench_files, next_bench_index, parse_bench_index, RecordSet, WallClock,
    WallClockEntry,
};
pub use tolerance::{lookup, PaperTolerance, ParityGate, PAPER_TOLERANCES};
