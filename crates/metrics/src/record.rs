//! The canonical, schema-versioned measurement record.
//!
//! A [`RunRecord`] captures everything one kernel run (or one closed-form
//! model evaluation) contributes to the paper's tables: the identifying
//! (kernel, config) pair, the raw [`SimReport`] counters, the stall-cause
//! breakdown from the probe layer, the modeled area/clock, the derived
//! sustained MFLOPS, the compute- vs bandwidth-bound classification and —
//! where the paper reports a number for it — the parity delta against the
//! shared tolerance table.
//!
//! Records are deterministic by construction: nothing time- or
//! host-dependent is stored in them. Simulator wall-clock throughput is
//! measured per run but kept *outside* the record (see
//! [`WallClock`](crate::store::WallClock)) so `BENCH_*.json` stays
//! byte-identical across repeated runs.

use fblas_sim::{SimReport, StallCause};

use crate::json::Json;
use crate::tolerance;

/// Version of the record schema. Bump on any field change; readers reject
/// mismatched versions so a stale baseline cannot be silently compared.
pub const SCHEMA_VERSION: u64 = 1;

/// How the numbers in a record were obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Cycle-accurate simulation through the instrumented harness.
    Simulated,
    /// Closed-form cost/projection model (no cycles simulated).
    Modeled,
}

impl RecordKind {
    fn name(self) -> &'static str {
        match self {
            RecordKind::Simulated => "sim",
            RecordKind::Modeled => "model",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(RecordKind::Simulated),
            "model" => Some(RecordKind::Modeled),
            _ => None,
        }
    }
}

/// Compute- vs bandwidth-bound classification (the paper's §4.4/§6
/// bandwidth argument, recovered from measurements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Paced by external data movement (Level 1/2 designs, `SpMV`).
    Bandwidth,
    /// Paced by the floating-point datapath (blocked Level 3).
    Compute,
    /// Not applicable (modeled records, records without I/O accounting).
    Unclassified,
}

impl Bound {
    /// Stable name used in JSON and scoreboards.
    pub fn name(self) -> &'static str {
        match self {
            Bound::Bandwidth => "bandwidth-bound",
            Bound::Compute => "compute-bound",
            Bound::Unclassified => "unclassified",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "bandwidth-bound" => Some(Bound::Bandwidth),
            "compute-bound" => Some(Bound::Compute),
            "unclassified" => Some(Bound::Unclassified),
            _ => None,
        }
    }
}

/// Per-cause stall totals accumulated over a run (aggregated across all
/// probe components), in [`StallCause::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    /// Totals indexed like [`StallCause::ALL`].
    pub by_cause: [u64; 4],
}

impl StallBreakdown {
    /// Breakdown from two aggregated-total snapshots (before/after a run).
    pub fn from_delta(before: [u64; 4], after: [u64; 4]) -> Self {
        let mut by_cause = [0u64; 4];
        for (slot, (b, a)) in by_cause.iter_mut().zip(before.iter().zip(after)) {
            *slot = a - b;
        }
        Self { by_cause }
    }

    /// Total stalled cycles across causes.
    pub fn total(&self) -> u64 {
        self.by_cause.iter().sum()
    }

    /// Stalls attributed to `cause`.
    pub fn get(&self, cause: StallCause) -> u64 {
        self.by_cause[StallCause::ALL
            .iter()
            .position(|&c| c == cause)
            .expect("in ALL")]
    }
}

/// Parity of a measurement against one paper-reported value.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperParity {
    /// Id into the shared tolerance table
    /// ([`tolerance::PAPER_TOLERANCES`]).
    pub figure_id: String,
    /// The measured value in the figure's unit.
    pub measured: f64,
}

impl PaperParity {
    /// Relative delta vs the paper, if the id is known to the table.
    pub fn delta_frac(&self) -> Option<f64> {
        tolerance::lookup(&self.figure_id).map(|t| t.delta_frac(self.measured))
    }

    /// True iff within the table's tolerance (unknown ids never pass).
    pub fn within_tolerance(&self) -> bool {
        tolerance::lookup(&self.figure_id).is_some_and(|t| t.accepts(self.measured))
    }
}

/// One canonical measurement record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Kernel family, e.g. `"dot"`, `"mvm/row"`, `"mm/hierarchical"`.
    pub kernel: String,
    /// Configuration as ordered `(name, value)` pairs (`k`, `n`, `m`, …).
    /// Order is part of the record identity and the byte format.
    pub config: Vec<(String, i64)>,
    /// How the numbers were obtained.
    pub kind: RecordKind,
    /// Total clock cycles (0 for modeled records).
    pub cycles: u64,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Words read from external memory.
    pub words_in: u64,
    /// Words written to external memory.
    pub words_out: u64,
    /// Cycles in which at least one FP unit issued an operation.
    pub busy_cycles: u64,
    /// Stall-cause breakdown from the probe layer.
    pub stalls: StallBreakdown,
    /// Design clock in MHz (modeled).
    pub clock_mhz: f64,
    /// Modeled area in slices (0 where the area model has no entry).
    pub modeled_slices: u64,
    /// Sustained MFLOPS at `clock_mhz` (0 for modeled records).
    pub sustained_mflops: f64,
    /// Compute/bandwidth classification (see [`RunRecord::classify`]).
    pub bound: Bound,
    /// Parity entries against the paper's reported values.
    pub paper: Vec<PaperParity>,
}

impl RunRecord {
    /// A simulated record from a harness [`SimReport`].
    ///
    /// `stalls` is the per-run delta of the probe's aggregated stall
    /// totals (see `Probe::stall_totals`). Classification is derived
    /// immediately; parity entries are attached by the caller.
    pub fn from_sim(
        kernel: &str,
        config: &[(&str, i64)],
        report: SimReport,
        stalls: StallBreakdown,
        clock_mhz: f64,
        modeled_slices: u64,
    ) -> Self {
        let sustained_mflops = if report.cycles == 0 {
            0.0
        } else {
            report.flops as f64 * clock_mhz / report.cycles as f64
        };
        let mut r = Self {
            kernel: kernel.to_string(),
            config: config.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            kind: RecordKind::Simulated,
            cycles: report.cycles,
            flops: report.flops,
            words_in: report.words_in,
            words_out: report.words_out,
            busy_cycles: report.busy_cycles,
            stalls,
            clock_mhz,
            modeled_slices,
            sustained_mflops,
            bound: Bound::Unclassified,
            paper: Vec::new(),
        };
        r.bound = r.classify();
        r
    }

    /// A modeled (closed-form) record: no cycles, only model outputs.
    pub fn modeled(kernel: &str, config: &[(&str, i64)], clock_mhz: f64, slices: u64) -> Self {
        Self {
            kernel: kernel.to_string(),
            config: config.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            kind: RecordKind::Modeled,
            cycles: 0,
            flops: 0,
            words_in: 0,
            words_out: 0,
            busy_cycles: 0,
            stalls: StallBreakdown::default(),
            clock_mhz,
            modeled_slices: slices,
            sustained_mflops: 0.0,
            bound: Bound::Unclassified,
            paper: Vec::new(),
        }
    }

    /// Attach a paper-parity entry (builder style).
    #[must_use]
    pub fn with_paper(mut self, figure_id: &str, measured: f64) -> Self {
        self.paper.push(PaperParity {
            figure_id: figure_id.to_string(),
            measured,
        });
        self
    }

    /// Identity key: kernel plus rendered config, e.g. `"dot[k=2,n=2048]"`.
    /// Diffing matches records across runs by this key.
    pub fn key(&self) -> String {
        let cfg: Vec<String> = self
            .config
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}[{}]", self.kernel, cfg.join(","))
    }

    /// Classify the record compute- vs bandwidth-bound.
    ///
    /// The rule (DESIGN.md §9): a simulated kernel is **bandwidth-bound**
    /// when either
    ///
    /// 1. input-starved stalls dominate its stall attribution (the probe
    ///    saw the datapath waiting on memory more than on anything else),
    ///    or
    /// 2. its arithmetic intensity is at most 2 FLOPs per external word —
    ///    the §4.4 envelope in which every word can feed at most one
    ///    multiply-add pair, so performance is set by the stream rate.
    ///
    /// Otherwise it is **compute-bound**. Modeled records and records
    /// without I/O accounting stay [`Bound::Unclassified`].
    pub fn classify(&self) -> Bound {
        if self.kind == RecordKind::Modeled || self.cycles == 0 {
            return Bound::Unclassified;
        }
        let words = self.words_in + self.words_out;
        if words == 0 {
            return Bound::Unclassified;
        }
        let starved = self.stalls.get(StallCause::InputStarved);
        let others = self.stalls.total() - starved;
        if starved > others && starved > 0 {
            return Bound::Bandwidth;
        }
        let intensity = self.flops as f64 / words as f64;
        if intensity <= 2.0 {
            Bound::Bandwidth
        } else {
            Bound::Compute
        }
    }

    /// Fraction of cycles with FP work issued.
    ///
    /// Guarded like the `sustained_mflops` derivation in
    /// [`RunRecord::from_sim`]: a zero-cycle run (a degenerate workload or
    /// a modeled record) reports 0 utilization instead of a NaN that would
    /// poison downstream JSON or scoreboard math.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Serialize to the canonical JSON tree (field order fixed).
    pub fn to_json(&self) -> Json {
        let config = Json::Obj(
            self.config
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let stalls = Json::Obj(
            StallCause::ALL
                .iter()
                .map(|&c| (c.name().to_string(), Json::Num(self.stalls.get(c) as f64)))
                .collect(),
        );
        let paper = Json::Arr(
            self.paper
                .iter()
                .map(|p| {
                    let mut o = Json::obj()
                        .with("figure", Json::Str(p.figure_id.clone()))
                        .with("measured", Json::Num(p.measured));
                    if let Some(t) = tolerance::lookup(&p.figure_id) {
                        o.set("paper", Json::Num(t.paper));
                        o.set("unit", Json::Str(t.unit.to_string()));
                        o.set("tol_frac", Json::Num(t.tol_frac));
                        o.set("delta_frac", Json::Num(t.delta_frac(p.measured)));
                    }
                    o
                })
                .collect(),
        );
        Json::obj()
            .with("kernel", Json::Str(self.kernel.clone()))
            .with("config", config)
            .with("kind", Json::Str(self.kind.name().to_string()))
            .with("cycles", Json::Num(self.cycles as f64))
            .with("flops", Json::Num(self.flops as f64))
            .with("words_in", Json::Num(self.words_in as f64))
            .with("words_out", Json::Num(self.words_out as f64))
            .with("busy_cycles", Json::Num(self.busy_cycles as f64))
            .with("stalls", stalls)
            .with("clock_mhz", Json::Num(self.clock_mhz))
            .with("modeled_slices", Json::Num(self.modeled_slices as f64))
            .with("sustained_mflops", Json::Num(self.sustained_mflops))
            .with("bound", Json::Str(self.bound.name().to_string()))
            .with("paper", paper)
    }

    /// Deserialize from the canonical JSON tree.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let str_field = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("record missing string field '{key}'"))
        };
        let u64_field = |key: &str| {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("record missing integer field '{key}'"))
        };
        let f64_field = |key: &str| {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("record missing number field '{key}'"))
        };

        let config = match json.get("config") {
            Some(Json::Obj(members)) => members
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|x| (k.clone(), x as i64))
                        .ok_or_else(|| format!("config value '{k}' is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("record missing object field 'config'".into()),
        };
        let mut stalls = StallBreakdown::default();
        let stalls_json = json
            .get("stalls")
            .ok_or_else(|| "record missing object field 'stalls'".to_string())?;
        for (i, &cause) in StallCause::ALL.iter().enumerate() {
            stalls.by_cause[i] = stalls_json
                .get(cause.name())
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stalls missing cause '{}'", cause.name()))?;
        }
        let paper = match json.get("paper") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|p| {
                    Ok(PaperParity {
                        figure_id: p
                            .get("figure")
                            .and_then(Json::as_str)
                            .ok_or_else(|| "paper entry missing 'figure'".to_string())?
                            .to_string(),
                        measured: p
                            .get("measured")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| "paper entry missing 'measured'".to_string())?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("record missing array field 'paper'".into()),
        };

        Ok(Self {
            kernel: str_field("kernel")?.to_string(),
            config,
            kind: RecordKind::parse(str_field("kind")?)
                .ok_or_else(|| "unknown record kind".to_string())?,
            cycles: u64_field("cycles")?,
            flops: u64_field("flops")?,
            words_in: u64_field("words_in")?,
            words_out: u64_field("words_out")?,
            busy_cycles: u64_field("busy_cycles")?,
            stalls,
            clock_mhz: f64_field("clock_mhz")?,
            modeled_slices: u64_field("modeled_slices")?,
            sustained_mflops: f64_field("sustained_mflops")?,
            bound: Bound::parse(str_field("bound")?)
                .ok_or_else(|| "unknown bound classification".to_string())?,
            paper,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_record() -> RunRecord {
        RunRecord::from_sim(
            "dot",
            &[("k", 2), ("n", 2048)],
            SimReport {
                cycles: 1100,
                flops: 4096,
                words_in: 4096,
                words_out: 1,
                busy_cycles: 1024,
            },
            StallBreakdown {
                by_cause: [30, 0, 0, 12],
            },
            170.0,
            5220,
        )
        .with_paper("table3.dot.mflops", 633.0)
    }

    #[test]
    fn sim_constructor_derives_mflops_and_bound() {
        let r = sim_record();
        // 4096 flops * 170 MHz / 1100 cycles ≈ 633 MFLOPS.
        assert!((r.sustained_mflops - 4096.0 * 170.0 / 1100.0).abs() < 1e-9);
        // intensity = 4096 / 4097 < 2 and input-starved dominates.
        assert_eq!(r.bound, Bound::Bandwidth);
        assert_eq!(r.key(), "dot[k=2,n=2048]");
        assert!((r.utilization() - 1024.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn high_intensity_stall_free_runs_are_compute_bound() {
        let r = RunRecord::from_sim(
            "mm/block",
            &[("k", 4), ("m", 16)],
            SimReport {
                cycles: 1500,
                flops: 8192,
                words_in: 512,
                words_out: 256,
                busy_cycles: 1400,
            },
            StallBreakdown::default(),
            130.0,
            0,
        );
        assert_eq!(r.bound, Bound::Compute);
    }

    #[test]
    fn modeled_records_stay_unclassified() {
        let r = RunRecord::modeled("mm/model", &[("k", 10)], 125.0, 21580);
        assert_eq!(r.classify(), Bound::Unclassified);
        assert_eq!(r.sustained_mflops, 0.0);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sim_record();
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // And a modeled record too.
        let m = RunRecord::modeled("mm/model", &[("k", 3)], 149.0, 6474);
        assert_eq!(RunRecord::from_json(&m.to_json()).unwrap(), m);
    }

    /// Regression: a zero-cycle simulated run (degenerate workload) must
    /// not divide by zero anywhere — `utilization`, `sustained_mflops` and
    /// classification all take the guarded path, and the record still
    /// serializes and round-trips without a panic.
    #[test]
    fn zero_cycle_record_is_finite_and_round_trips() {
        let r = RunRecord::from_sim(
            "dot",
            &[("k", 2), ("n", 0)],
            SimReport {
                cycles: 0,
                flops: 0,
                words_in: 0,
                words_out: 0,
                busy_cycles: 0,
            },
            StallBreakdown::default(),
            170.0,
            5220,
        );
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.sustained_mflops, 0.0);
        assert_eq!(r.bound, Bound::Unclassified);
        let rendered = r.to_json().render();
        assert!(
            !rendered.contains("null"),
            "no field should degrade: {rendered}"
        );
        assert_eq!(RunRecord::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn parity_entry_reports_delta_against_shared_table() {
        let r = sim_record();
        let p = &r.paper[0];
        assert!(p.within_tolerance());
        let delta = p.delta_frac().unwrap();
        assert!((delta - (633.0 - 557.0) / 557.0).abs() < 1e-12);
    }

    #[test]
    fn from_json_rejects_malformed_records() {
        let mut j = sim_record().to_json();
        // Remove "cycles" by rebuilding without it.
        if let Json::Obj(members) = &mut j {
            members.retain(|(k, _)| k != "cycles");
        }
        assert!(RunRecord::from_json(&j).unwrap_err().contains("cycles"));
    }
}
