//! Persistence: schema-versioned record sets and the `BENCH_<n>.json`
//! trajectory convention.
//!
//! A [`RecordSet`] is what one observatory (or bench-binary `--json`) run
//! emits: the schema version, the generator name and the records, in run
//! order. Sets serialize deterministically — no timestamps, no host
//! information — so re-running an unchanged tree produces byte-identical
//! files; the volatile simulator-throughput numbers ride in a separate
//! [`WallClock`] sidecar instead.
//!
//! Trajectory convention: committed runs live at the repository root as
//! `BENCH_0001.json`, `BENCH_0002.json`, … ([`bench_file_name`]);
//! [`next_bench_index`] scans a directory for the first free index and
//! [`list_bench_files`] returns the committed trajectory in index order.

use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::record::{RunRecord, SCHEMA_VERSION};

/// An ordered collection of records from one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordSet {
    /// Tool that produced the set, e.g. `"observatory run"`, `"table3"`.
    pub generator: String,
    /// The records, in run order.
    pub records: Vec<RunRecord>,
}

impl RecordSet {
    /// An empty set for `generator`.
    pub fn new(generator: &str) -> Self {
        Self {
            generator: generator.to_string(),
            records: Vec::new(),
        }
    }

    /// Append a record.
    pub fn push(&mut self, record: RunRecord) {
        self.records.push(record);
    }

    /// Find a record by its identity key.
    pub fn find(&self, key: &str) -> Option<&RunRecord> {
        self.records.iter().find(|r| r.key() == key)
    }

    /// Serialize to the canonical byte-deterministic JSON document.
    pub fn to_json_string(&self) -> String {
        Json::obj()
            .with("schema_version", Json::Num(SCHEMA_VERSION as f64))
            .with("generator", Json::Str(self.generator.clone()))
            .with(
                "records",
                Json::Arr(self.records.iter().map(RunRecord::to_json).collect()),
            )
            .render()
    }

    /// Parse a document produced by [`RecordSet::to_json_string`].
    ///
    /// Rejects schema-version mismatches outright: a record written by a
    /// different schema must be regenerated, not reinterpreted.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| "document missing 'schema_version'".to_string())?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema version mismatch: file has v{version}, this tool speaks v{SCHEMA_VERSION} \
                 — regenerate the record set"
            ));
        }
        let generator = doc
            .get("generator")
            .and_then(Json::as_str)
            .ok_or_else(|| "document missing 'generator'".to_string())?
            .to_string();
        let records = doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or_else(|| "document missing 'records' array".to_string())?
            .iter()
            .map(RunRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { generator, records })
    }

    /// Read and parse a record-set file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write the canonical document to `path`.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json_string())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// One simulated run's volatile throughput measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct WallClockEntry {
    /// Record identity key, e.g. `dot[k=2,n=2048]`.
    pub key: String,
    /// Simulated cycles the record accounts for.
    pub cycles: u64,
    /// Cycles the harness stepped one `Design::cycle` at a time — the
    /// remainder were fast-forwarded through a fused replay. Equal to
    /// `cycles` on the cycle backend; the per-run cycle-compression
    /// ratio is `cycles / stepped_cycles`.
    pub stepped_cycles: u64,
    /// Host wall seconds the run took.
    pub seconds: f64,
}

/// Volatile per-run simulator-throughput measurements, kept out of the
/// deterministic record set. One entry per simulated record: the key and
/// the host wall-clock rate at which the harness retired simulated cycles.
///
/// Since the matrix can run on a worker pool, the sidecar also carries the
/// job count and the end-to-end elapsed time, from which it derives the
/// aggregate speedup (sum of per-entry seconds over elapsed seconds) and a
/// per-entry `speedup_share` (that entry's contribution to the aggregate).
/// Since the matrix can also run under an accelerated execution backend,
/// it carries the backend name and the stepped-cycle totals from which
/// the backend cycle-compression ratio ([`WallClock::backend_speedup`])
/// is derived.
#[derive(Debug, Clone)]
pub struct WallClock {
    /// Per-run measurements, in record order.
    pub entries: Vec<WallClockEntry>,
    /// Worker count the matrix ran with (1 = serial).
    pub jobs: u64,
    /// Execution backend the matrix ran under (`cycle`, `fast-forward`
    /// or `native`) — provenance only; the record bytes are
    /// backend-invariant.
    pub backend: String,
    /// End-to-end wall time for the whole matrix. Under a pool this is
    /// less than [`WallClock::total_seconds`]; 0.0 means "not measured".
    pub elapsed_seconds: f64,
    /// Telemetry window width (cycles) the matrix ran with, `None` when
    /// windowed telemetry was disabled. Provenance for the sidecar's
    /// sibling `TELEM_<n>.json` store; the record bytes are
    /// telemetry-invariant either way.
    pub telemetry_window: Option<u64>,
}

impl Default for WallClock {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            jobs: 1,
            backend: "cycle".to_string(),
            elapsed_seconds: 0.0,
            telemetry_window: None,
        }
    }
}

impl WallClock {
    /// An empty sidecar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one run.
    pub fn push(&mut self, key: &str, cycles: u64, stepped_cycles: u64, seconds: f64) {
        self.entries.push(WallClockEntry {
            key: key.to_string(),
            cycles,
            stepped_cycles,
            seconds,
        });
    }

    /// Total simulated cycles across entries.
    pub fn total_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.cycles).sum()
    }

    /// Total cycles stepped one at a time across entries.
    pub fn total_stepped_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.stepped_cycles).sum()
    }

    /// Backend cycle-compression ratio: simulated cycles accounted for
    /// per cycle actually stepped. 1.0 on the cycle backend; under
    /// fast-forward the ratio is what the fused replays bought. 0 when
    /// nothing was stepped at all (the same zero-denominator clamp the
    /// rates use).
    pub fn backend_speedup(&self) -> f64 {
        let stepped = self.total_stepped_cycles();
        if stepped > 0 {
            self.total_cycles() as f64 / stepped as f64
        } else {
            0.0
        }
    }

    /// Total wall seconds across entries.
    pub fn total_seconds(&self) -> f64 {
        self.entries.iter().map(|e| e.seconds).sum()
    }

    /// Aggregate simulated cycles per wall second (0 if nothing ran).
    pub fn cycles_per_second(&self) -> f64 {
        let s = self.total_seconds();
        if s > 0.0 {
            self.total_cycles() as f64 / s
        } else {
            0.0
        }
    }

    /// Parallel speedup: sum of per-entry seconds over end-to-end elapsed
    /// seconds. 1.0 means no overlap (serial); `jobs`-way overlap
    /// approaches `jobs`. 0 when elapsed time was not measured — the same
    /// clamp the per-entry rates use, so a coarse clock reading 0.0
    /// seconds never turns into an `inf` in the sidecar.
    pub fn aggregate_speedup(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.total_seconds() / self.elapsed_seconds
        } else {
            0.0
        }
    }

    /// Serialize the sidecar (not byte-deterministic — contains timings).
    ///
    /// Every rate is guarded against a zero denominator (a fast entry can
    /// measure 0.0 seconds on a coarse clock) and rendered as 0 rather
    /// than `inf`; the JSON writer would otherwise have to degrade the
    /// value to `null`.
    pub fn to_json_string(&self) -> String {
        let mut doc = Json::obj()
            .with("schema_version", Json::Num(SCHEMA_VERSION as f64))
            .with("jobs", Json::Num(self.jobs as f64))
            .with("backend", Json::Str(self.backend.clone()))
            .with(
                "telemetry_enabled",
                Json::Bool(self.telemetry_window.is_some()),
            );
        // The window key is present exactly when telemetry ran; the
        // sidecar never renders `null` (see the zero-rate regression).
        if let Some(w) = self.telemetry_window {
            doc.set("telemetry_window", Json::Num(w as f64));
        }
        doc.with("sim_cycles_per_second", Json::Num(self.cycles_per_second()))
            .with("total_cycles", Json::Num(self.total_cycles() as f64))
            .with(
                "total_stepped_cycles",
                Json::Num(self.total_stepped_cycles() as f64),
            )
            .with("backend_speedup", Json::Num(self.backend_speedup()))
            .with("total_seconds", Json::Num(self.total_seconds()))
            .with("elapsed_seconds", Json::Num(self.elapsed_seconds))
            .with("aggregate_speedup", Json::Num(self.aggregate_speedup()))
            .with(
                "runs",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::obj()
                                .with("key", Json::Str(e.key.clone()))
                                .with("cycles", Json::Num(e.cycles as f64))
                                .with("stepped_cycles", Json::Num(e.stepped_cycles as f64))
                                .with(
                                    "backend_speedup",
                                    Json::Num(if e.stepped_cycles > 0 {
                                        e.cycles as f64 / e.stepped_cycles as f64
                                    } else {
                                        0.0
                                    }),
                                )
                                .with("seconds", Json::Num(e.seconds))
                                .with(
                                    "cycles_per_second",
                                    Json::Num(if e.seconds > 0.0 {
                                        e.cycles as f64 / e.seconds
                                    } else {
                                        0.0
                                    }),
                                )
                                .with(
                                    "speedup_share",
                                    Json::Num(if self.elapsed_seconds > 0.0 {
                                        e.seconds / self.elapsed_seconds
                                    } else {
                                        0.0
                                    }),
                                )
                        })
                        .collect(),
                ),
            )
            .render()
    }

    /// Parse a sidecar document written by [`WallClock::to_json_string`].
    ///
    /// Validates the schema version and the telemetry-config fields —
    /// `telemetry_enabled` must agree with `telemetry_window` being a
    /// number — so `observatory diff` can reject a sidecar whose
    /// provenance was hand-edited into inconsistency. Derived rates
    /// (`backend_speedup`, `cycles_per_second`, …) are recomputed from
    /// the parsed entries, not read back.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| "sidecar missing 'schema_version'".to_string())?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "sidecar schema version mismatch: file has v{version}, this tool speaks \
                 v{SCHEMA_VERSION}"
            ));
        }
        let jobs = doc
            .get("jobs")
            .and_then(Json::as_u64)
            .ok_or_else(|| "sidecar missing 'jobs'".to_string())?;
        let backend = doc
            .get("backend")
            .and_then(Json::as_str)
            .ok_or_else(|| "sidecar missing 'backend'".to_string())?
            .to_string();
        let enabled = doc
            .get("telemetry_enabled")
            .and_then(Json::as_bool)
            .ok_or_else(|| "sidecar missing 'telemetry_enabled'".to_string())?;
        let telemetry_window = match (enabled, doc.get("telemetry_window")) {
            (true, Some(w)) => {
                Some(w.as_u64().filter(|&w| w >= 1).ok_or_else(|| {
                    "sidecar telemetry_window is not a positive integer".to_string()
                })?)
            }
            (true, None) => {
                return Err(
                    "sidecar telemetry_enabled=true but telemetry_window is missing".to_string(),
                )
            }
            (false, None) => None,
            (false, Some(_)) => {
                return Err(
                    "sidecar telemetry_enabled=false but telemetry_window is set".to_string(),
                )
            }
        };
        let elapsed_seconds = doc
            .get("elapsed_seconds")
            .and_then(Json::as_f64)
            .ok_or_else(|| "sidecar missing 'elapsed_seconds'".to_string())?;
        let runs = doc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| "sidecar missing 'runs' array".to_string())?;
        let mut wall = WallClock {
            entries: Vec::with_capacity(runs.len()),
            jobs,
            backend,
            elapsed_seconds,
            telemetry_window,
        };
        for run in runs {
            let key = run
                .get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| "sidecar run missing 'key'".to_string())?;
            let field = |name: &str| {
                run.get(name)
                    .ok_or_else(|| format!("sidecar run {key} missing '{name}'"))
            };
            wall.push(
                key,
                field("cycles")?
                    .as_u64()
                    .ok_or_else(|| format!("sidecar run {key}: bad 'cycles'"))?,
                field("stepped_cycles")?
                    .as_u64()
                    .ok_or_else(|| format!("sidecar run {key}: bad 'stepped_cycles'"))?,
                field("seconds")?
                    .as_f64()
                    .ok_or_else(|| format!("sidecar run {key}: bad 'seconds'"))?,
            );
        }
        Ok(wall)
    }

    /// Read and parse a sidecar file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// File name of trajectory point `index`: `BENCH_0007.json`.
pub fn bench_file_name(index: u64) -> String {
    format!("BENCH_{index:04}.json")
}

/// Parse an index out of a `BENCH_<n>.json` file name.
pub fn parse_bench_index(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
    // Reject the wall-clock sidecars (`BENCH_0001.wallclock.json`).
    if rest.contains('.') {
        return None;
    }
    rest.parse().ok()
}

/// The `BENCH_*.json` files in `dir`, sorted by index.
pub fn list_bench_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(index) = entry.file_name().to_str().and_then(parse_bench_index) {
                found.push((index, entry.path()));
            }
        }
    }
    found.sort_by_key(|&(index, _)| index);
    found
}

/// First unused trajectory index in `dir` (1-based).
pub fn next_bench_index(dir: &Path) -> u64 {
    list_bench_files(dir)
        .last()
        .map_or(1, |&(index, _)| index + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::StallBreakdown;
    use fblas_sim::SimReport;

    fn sample_set() -> RecordSet {
        let mut set = RecordSet::new("unit-test");
        set.push(
            RunRecord::from_sim(
                "dot",
                &[("k", 2), ("n", 64)],
                SimReport {
                    cycles: 40,
                    flops: 128,
                    words_in: 128,
                    words_out: 1,
                    busy_cycles: 32,
                },
                StallBreakdown::default(),
                170.0,
                5220,
            )
            .with_paper("table3.dot.mflops", 544.0),
        );
        set.push(RunRecord::modeled("mm/model", &[("k", 10)], 125.0, 21580));
        set
    }

    #[test]
    fn set_round_trips() {
        let set = sample_set();
        let text = set.to_json_string();
        let parsed = RecordSet::from_json_str(&text).unwrap();
        assert_eq!(parsed, set);
        assert!(parsed.find("dot[k=2,n=64]").is_some());
        assert!(parsed.find("dot[k=2,n=65]").is_none());
    }

    #[test]
    fn serialization_is_byte_deterministic() {
        assert_eq!(sample_set().to_json_string(), sample_set().to_json_string());
    }

    #[test]
    fn schema_version_bump_is_detected() {
        let text = sample_set().to_json_string().replacen(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            &format!("\"schema_version\": {}", SCHEMA_VERSION + 1),
            1,
        );
        let err = RecordSet::from_json_str(&text).unwrap_err();
        assert!(err.contains("schema version mismatch"), "{err}");
    }

    #[test]
    fn bench_file_names() {
        assert_eq!(bench_file_name(3), "BENCH_0003.json");
        assert_eq!(parse_bench_index("BENCH_0003.json"), Some(3));
        assert_eq!(parse_bench_index("BENCH_12.json"), Some(12));
        assert_eq!(parse_bench_index("BENCH_0003.wallclock.json"), None);
        assert_eq!(parse_bench_index("baseline.json"), None);
    }

    #[test]
    fn trajectory_scan_and_next_index() {
        let dir = std::env::temp_dir().join("fblas_metrics_store_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_bench_index(&dir), 1);
        let set = sample_set();
        set.save(&dir.join(bench_file_name(1))).unwrap();
        set.save(&dir.join(bench_file_name(2))).unwrap();
        std::fs::write(dir.join("BENCH_0002.wallclock.json"), "{}").unwrap();
        let files = list_bench_files(&dir);
        assert_eq!(files.iter().map(|&(i, _)| i).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(next_bench_index(&dir), 3);
        let loaded = RecordSet::load(&files[0].1).unwrap();
        assert_eq!(loaded, set);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wallclock_aggregates() {
        let mut w = WallClock::new();
        w.push("dot[k=2,n=64]", 1000, 1000, 0.5);
        w.push("mvm[k=4,n=64]", 3000, 3000, 0.5);
        assert_eq!(w.total_cycles(), 4000);
        assert!((w.cycles_per_second() - 4000.0).abs() < 1e-9);
        let text = w.to_json_string();
        assert!(text.contains("sim_cycles_per_second"));
        assert_eq!(WallClock::new().cycles_per_second(), 0.0);
    }

    /// Backend accounting: the sidecar names the backend, totals the
    /// stepped cycles, and derives the cycle-compression ratio with the
    /// usual zero-denominator clamp.
    #[test]
    fn wallclock_backend_speedup_fields() {
        let mut w = WallClock::new();
        assert_eq!(w.backend, "cycle", "cycle by default");
        assert_eq!(w.backend_speedup(), 0.0, "empty sidecar clamps");
        w.backend = "fast-forward".to_string();
        w.push("dot[k=2,n=64]", 1000, 100, 0.1);
        w.push("mvm[k=4,n=64]", 3000, 300, 0.1);
        assert_eq!(w.total_stepped_cycles(), 400);
        assert!((w.backend_speedup() - 10.0).abs() < 1e-12);
        let doc = Json::parse(&w.to_json_string()).unwrap();
        assert_eq!(
            doc.get("backend").and_then(Json::as_str),
            Some("fast-forward")
        );
        assert_eq!(
            doc.get("total_stepped_cycles").and_then(Json::as_u64),
            Some(400)
        );
        assert_eq!(
            doc.get("backend_speedup").and_then(Json::as_f64),
            Some(10.0)
        );
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(
            runs[0].get("stepped_cycles").and_then(Json::as_u64),
            Some(100)
        );
        assert_eq!(
            runs[0].get("backend_speedup").and_then(Json::as_f64),
            Some(10.0)
        );
    }

    /// Regression for the sidecar rate math: an entry that measures 0.0
    /// seconds (coarse host clock) must render a rate of 0, not `inf` or
    /// `null`, and the document must stay parseable.
    #[test]
    fn wallclock_zero_second_entry_renders_zero_rate() {
        let mut w = WallClock::new();
        w.push("dot[k=2,n=64]", 1000, 1000, 0.0);
        assert_eq!(w.cycles_per_second(), 0.0);
        let text = w.to_json_string();
        assert!(!text.contains("inf") && !text.contains("null"), "{text}");
        let doc = Json::parse(&text).unwrap();
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(
            runs[0].get("cycles_per_second").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            runs[0].get("speedup_share").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    /// Speedup accounting: shares sum to the aggregate, the aggregate is
    /// total-over-elapsed, and an unmeasured elapsed time clamps to 0.
    #[test]
    fn wallclock_speedup_fields() {
        let mut w = WallClock::new();
        assert_eq!(w.jobs, 1, "serial by default");
        assert_eq!(w.aggregate_speedup(), 0.0, "unmeasured elapsed clamps");
        w.push("dot[k=2,n=64]", 1000, 1000, 1.5);
        w.push("mvm[k=4,n=64]", 3000, 3000, 0.5);
        w.jobs = 2;
        w.elapsed_seconds = 1.0;
        assert!((w.aggregate_speedup() - 2.0).abs() < 1e-12);
        let doc = Json::parse(&w.to_json_string()).unwrap();
        assert_eq!(doc.get("jobs").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("elapsed_seconds").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            doc.get("aggregate_speedup").and_then(Json::as_f64),
            Some(2.0)
        );
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        let shares: f64 = runs
            .iter()
            .map(|r| r.get("speedup_share").and_then(Json::as_f64).unwrap())
            .sum();
        assert!((shares - w.aggregate_speedup()).abs() < 1e-12);
    }

    /// Satellite contract: the sidecar carries its telemetry config,
    /// round-trips through the parser, and the parser rejects both
    /// schema-version mismatches and inconsistent telemetry fields.
    #[test]
    fn wallclock_telemetry_fields_round_trip() {
        let mut w = WallClock::new();
        w.jobs = 4;
        w.backend = "fast-forward".to_string();
        w.elapsed_seconds = 0.25;
        w.telemetry_window = Some(4096);
        w.push("dot[k=2,n=64]", 1000, 100, 0.125);
        let text = w.to_json_string();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("telemetry_enabled").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            doc.get("telemetry_window").and_then(Json::as_u64),
            Some(4096)
        );
        let parsed = WallClock::from_json_str(&text).unwrap();
        assert_eq!(parsed.telemetry_window, Some(4096));
        assert_eq!(parsed.jobs, 4);
        assert_eq!(parsed.backend, "fast-forward");
        assert_eq!(parsed.entries, w.entries);
        assert!((parsed.backend_speedup() - 10.0).abs() < 1e-12);

        // Disabled telemetry: no window key, parses back to None.
        w.telemetry_window = None;
        let text = w.to_json_string();
        assert!(!text.contains("telemetry_window"));
        assert_eq!(
            WallClock::from_json_str(&text).unwrap().telemetry_window,
            None
        );
    }

    #[test]
    fn wallclock_parser_rejects_bad_documents() {
        let mut w = WallClock::new();
        w.telemetry_window = Some(64);
        w.push("dot[k=2,n=64]", 1000, 1000, 0.1);
        let text = w.to_json_string();

        let bumped = text.replacen(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            &format!("\"schema_version\": {}", SCHEMA_VERSION + 1),
            1,
        );
        let err = WallClock::from_json_str(&bumped).unwrap_err();
        assert!(err.contains("schema version mismatch"), "{err}");

        // telemetry_enabled=true with the window edited away.
        let clipped = text.replacen("  \"telemetry_window\": 64,\n", "", 1);
        let err = WallClock::from_json_str(&clipped).unwrap_err();
        assert!(err.contains("telemetry_window is missing"), "{err}");

        // telemetry_enabled hand-flipped to false with the window left in.
        let flipped = text.replacen(
            "\"telemetry_enabled\": true",
            "\"telemetry_enabled\": false",
            1,
        );
        let err = WallClock::from_json_str(&flipped).unwrap_err();
        assert!(err.contains("telemetry_window is set"), "{err}");
    }
}
