//! Serving-campaign records: the `SERVE_<n>.json` trajectory store.
//!
//! `fblas-serve` turns the simulated FPGA fleet into a BLAS-as-a-service
//! front end; each campaign *cell* (one arrival pattern x admission
//! policy x batching mode) produces a [`ServeRecord`] with honest
//! counters (offered vs admitted vs rejected vs completed vs still
//! in flight), modeled staging/compute time, a latency digest and an
//! SLO verdict. A [`ServeSet`] persists the cells of one campaign in the
//! same deterministic, schema-versioned JSON dialect as `BENCH_*.json`:
//! no timestamps, no host information, byte-identical at any `--jobs`
//! count and under every execution backend.
//!
//! Trajectory convention: committed stores live at the repository root
//! as `SERVE_0001.json`, `SERVE_0002.json`, … and `observatory serve
//! --diff` gates the regenerated campaign against a committed baseline
//! with [`diff_serve`].

use std::path::{Path, PathBuf};

use fblas_sim::LogHistogram;

use crate::json::{rle_decode, rle_encode, Json};

/// Version of the serving store schema. Bump on any field change;
/// readers reject mismatches so a stale baseline cannot be silently
/// compared against a newer tool.
pub const SERVE_SCHEMA_VERSION: u64 = 1;

/// Compact latency summary extracted from a [`LogHistogram`].
///
/// `quantiles` is `None` when the histogram saw no samples — the honest
/// form of the empty case (a served-nothing cell has *no* p99, not a
/// zero-nanosecond one). Quantiles are `[p50, p95, p99, p999]` in
/// nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyDigest {
    /// Number of recorded latencies.
    pub samples: u64,
    /// Smallest recorded latency in ns (0 when empty).
    pub min: u64,
    /// Largest recorded latency in ns (0 when empty).
    pub max: u64,
    /// `[p50, p95, p99, p999]` in ns, or `None` when `samples == 0`.
    pub quantiles: Option<[u64; 4]>,
}

impl LatencyDigest {
    /// Digest a histogram, preserving the empty case as `None`.
    pub fn from_histogram(h: &LogHistogram) -> Self {
        Self {
            samples: h.samples(),
            min: if h.samples() == 0 { 0 } else { h.min() },
            max: if h.samples() == 0 { 0 } else { h.max() },
            quantiles: h.try_quantiles(),
        }
    }

    /// p99 in ns, or `None` for an empty digest.
    pub fn p99(&self) -> Option<u64> {
        self.quantiles.map(|q| q[2])
    }

    fn to_json(self) -> Json {
        let mut j = Json::obj()
            .with("samples", Json::Num(self.samples as f64))
            .with("min", Json::Num(self.min as f64))
            .with("max", Json::Num(self.max as f64));
        match self.quantiles {
            Some([p50, p95, p99, p999]) => {
                j = j
                    .with("p50", Json::Num(p50 as f64))
                    .with("p95", Json::Num(p95 as f64))
                    .with("p99", Json::Num(p99 as f64))
                    .with("p999", Json::Num(p999 as f64));
            }
            None => {
                j = j.with("p50", Json::Null).with("p95", Json::Null);
                j = j.with("p99", Json::Null).with("p999", Json::Null);
            }
        }
        j
    }

    fn from_json(json: &Json, what: &str) -> Result<Self, String> {
        let field = |key: &str| {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{what}: latency missing '{key}'"))
        };
        let samples = field("samples")?;
        let quantiles = if samples == 0 {
            for key in ["p50", "p95", "p99", "p999"] {
                if json.get(key).and_then(Json::as_u64).is_some() {
                    return Err(format!(
                        "{what}: empty latency digest carries a '{key}' quantile"
                    ));
                }
            }
            None
        } else {
            Some([field("p50")?, field("p95")?, field("p99")?, field("p999")?])
        };
        Ok(Self {
            samples,
            min: field("min")?,
            max: field("max")?,
            quantiles,
        })
    }
}

/// Per-tenant accounting for one cell.
///
/// The conservation contract — enforced by `fblas-check` — is
/// `arrivals == completed + rejected_queue + rejected_tokens +
/// in_flight` for every tenant: nothing offered to the front end may
/// vanish from the books.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRecord {
    /// Tenant name, unique within the cell.
    pub name: String,
    /// Requests the generator offered for this tenant.
    pub arrivals: u64,
    /// Requests turned away because the tenant queue was full.
    pub rejected_queue: u64,
    /// Requests turned away because the token bucket was empty.
    pub rejected_tokens: u64,
    /// Requests that finished service within the horizon.
    pub completed: u64,
    /// Requests admitted but still queued or in service at the end of
    /// the run (non-zero only for no-drain cells).
    pub in_flight: u64,
    /// Completion-latency digest (arrival -> batch completion), ns.
    pub latency: LatencyDigest,
    /// Completions per telemetry window (length = cell `windows`).
    pub completions: Vec<u64>,
    /// Rejections (both causes) per telemetry window.
    pub rejections: Vec<u64>,
}

impl TenantRecord {
    /// Total rejections across both admission-control causes.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue + self.rejected_tokens
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .with("name", Json::Str(self.name.clone()))
            .with("arrivals", Json::Num(self.arrivals as f64))
            .with("rejected_queue", Json::Num(self.rejected_queue as f64))
            .with("rejected_tokens", Json::Num(self.rejected_tokens as f64))
            .with("completed", Json::Num(self.completed as f64))
            .with("in_flight", Json::Num(self.in_flight as f64))
            .with("latency", self.latency.to_json())
            .with("completions", rle_encode(&self.completions))
            .with("rejections", rle_encode(&self.rejections))
    }

    fn from_json(json: &Json, windows: usize) -> Result<Self, String> {
        let name = json
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "tenant missing 'name'".to_string())?
            .to_string();
        let field = |key: &str| {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name}: tenant missing '{key}'"))
        };
        Ok(Self {
            arrivals: field("arrivals")?,
            rejected_queue: field("rejected_queue")?,
            rejected_tokens: field("rejected_tokens")?,
            completed: field("completed")?,
            in_flight: field("in_flight")?,
            latency: LatencyDigest::from_json(
                json.get("latency")
                    .ok_or_else(|| format!("{name}: tenant missing 'latency'"))?,
                &name,
            )?,
            completions: rle_decode(
                json.get("completions")
                    .ok_or_else(|| format!("{name}: tenant missing 'completions'"))?,
                windows,
                &format!("{name}.completions"),
            )?,
            rejections: rle_decode(
                json.get("rejections")
                    .ok_or_else(|| format!("{name}: tenant missing 'rejections'"))?,
                windows,
                &format!("{name}.rejections"),
            )?,
            name,
        })
    }
}

/// One campaign cell: configuration identity, totals, digest, SLO.
///
/// All times are nanoseconds on the shared fleet timeline (designs at
/// different clocks — the 170 MHz dot tree, the 164 MHz XD1 memory
/// interface — close their cycle counts into ns before entering the
/// event queue, so the record needs no per-kernel clock context).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRecord {
    /// Cell identity, e.g. `mvm1024/open/batched`. Unique per set.
    pub cell: String,
    /// Kernel family served, e.g. `mvm`, `dot`, `axpy`.
    pub kernel: String,
    /// Problem size class (vector length / matrix order).
    pub n: u64,
    /// Arrival-generator seed.
    pub seed: u64,
    /// Maximum requests packed into one batch (1 = no batching).
    pub max_batch: u64,
    /// Whether the scheduler drained queues after the arrival horizon.
    pub drain: bool,
    /// Offered load horizon in ns (arrivals stop after this).
    pub horizon_ns: u64,
    /// Telemetry window width in ns for the per-tenant series.
    pub window_ns: u64,
    /// Number of telemetry windows each tenant series spans.
    pub windows: u64,
    /// Dispatched batches (each pays its staging cost exactly once).
    pub batches: u64,
    /// Total DRAM->SRAM staging time across all batches, ns.
    pub staging_ns: u64,
    /// Total compute (kernel service) time across all batches, ns.
    pub compute_ns: u64,
    /// Timeline position after the last completion (makespan), ns.
    pub elapsed_ns: u64,
    /// Completed requests per second, in milli-rps (integer so the
    /// stored value is exact and byte-stable).
    pub throughput_milli_rps: u64,
    /// Fleet-wide completion-latency digest, ns.
    pub latency: LatencyDigest,
    /// p99 latency target for this cell, ns.
    pub slo_p99_ns: u64,
    /// Whether the measured p99 met the target (an empty digest fails).
    pub slo_pass: bool,
    /// Per-tenant books, in tenant order.
    pub tenants: Vec<TenantRecord>,
}

impl ServeRecord {
    /// Sum of a per-tenant counter across all tenants.
    fn total(&self, f: impl Fn(&TenantRecord) -> u64) -> u64 {
        self.tenants.iter().map(f).sum()
    }

    /// Requests offered across all tenants.
    pub fn offered(&self) -> u64 {
        self.total(|t| t.arrivals)
    }

    /// Requests completed across all tenants.
    pub fn completed(&self) -> u64 {
        self.total(|t| t.completed)
    }

    /// Requests rejected (either cause) across all tenants.
    pub fn rejected(&self) -> u64 {
        self.total(TenantRecord::rejected)
    }

    /// Requests still in flight at the end of the run.
    pub fn in_flight(&self) -> u64 {
        self.total(|t| t.in_flight)
    }

    /// Total modeled busy time (staging + compute), ns.
    pub fn busy_ns(&self) -> u64 {
        self.staging_ns + self.compute_ns
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .with("cell", Json::Str(self.cell.clone()))
            .with("kernel", Json::Str(self.kernel.clone()))
            .with("n", Json::Num(self.n as f64))
            .with("seed", Json::Num(self.seed as f64))
            .with("max_batch", Json::Num(self.max_batch as f64))
            .with("drain", Json::Bool(self.drain))
            .with("horizon_ns", Json::Num(self.horizon_ns as f64))
            .with("window_ns", Json::Num(self.window_ns as f64))
            .with("windows", Json::Num(self.windows as f64))
            .with("batches", Json::Num(self.batches as f64))
            .with("staging_ns", Json::Num(self.staging_ns as f64))
            .with("compute_ns", Json::Num(self.compute_ns as f64))
            .with("elapsed_ns", Json::Num(self.elapsed_ns as f64))
            .with(
                "throughput_milli_rps",
                Json::Num(self.throughput_milli_rps as f64),
            )
            .with("latency", self.latency.to_json())
            .with("slo_p99_ns", Json::Num(self.slo_p99_ns as f64))
            .with("slo_pass", Json::Bool(self.slo_pass))
            .with(
                "tenants",
                Json::Arr(self.tenants.iter().map(TenantRecord::to_json).collect()),
            )
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let cell = json
            .get("cell")
            .and_then(Json::as_str)
            .ok_or_else(|| "record missing 'cell'".to_string())?
            .to_string();
        let field = |key: &str| {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{cell}: missing '{key}'"))
        };
        let flag = |key: &str| {
            json.get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("{cell}: missing '{key}'"))
        };
        let windows = field("windows")?;
        let tenants = json
            .get("tenants")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{cell}: missing 'tenants' array"))?
            .iter()
            .map(|t| {
                TenantRecord::from_json(t, windows as usize).map_err(|e| format!("{cell}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            kernel: json
                .get("kernel")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{cell}: missing 'kernel'"))?
                .to_string(),
            n: field("n")?,
            seed: field("seed")?,
            max_batch: field("max_batch")?,
            drain: flag("drain")?,
            horizon_ns: field("horizon_ns")?,
            window_ns: field("window_ns")?,
            windows,
            batches: field("batches")?,
            staging_ns: field("staging_ns")?,
            compute_ns: field("compute_ns")?,
            elapsed_ns: field("elapsed_ns")?,
            throughput_milli_rps: field("throughput_milli_rps")?,
            latency: LatencyDigest::from_json(
                json.get("latency")
                    .ok_or_else(|| format!("{cell}: missing 'latency'"))?,
                &cell,
            )?,
            slo_p99_ns: field("slo_p99_ns")?,
            slo_pass: flag("slo_pass")?,
            tenants,
            cell,
        })
    }
}

/// An ordered collection of serving cells from one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSet {
    /// Tool that produced the set, e.g. `"observatory"`.
    pub generator: String,
    /// The cells, in campaign order.
    pub records: Vec<ServeRecord>,
}

impl ServeSet {
    /// An empty set for `generator`.
    pub fn new(generator: &str) -> Self {
        Self {
            generator: generator.to_string(),
            records: Vec::new(),
        }
    }

    /// Find a cell by its identity string.
    pub fn find(&self, cell: &str) -> Option<&ServeRecord> {
        self.records.iter().find(|r| r.cell == cell)
    }

    /// Serialize to the canonical byte-deterministic JSON document.
    pub fn to_json_string(&self) -> String {
        Json::obj()
            .with("schema_version", Json::Num(SERVE_SCHEMA_VERSION as f64))
            .with("generator", Json::Str(self.generator.clone()))
            .with(
                "records",
                Json::Arr(self.records.iter().map(ServeRecord::to_json).collect()),
            )
            .render()
    }

    /// Parse a document produced by [`ServeSet::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| "document missing 'schema_version'".to_string())?;
        if version != SERVE_SCHEMA_VERSION {
            return Err(format!(
                "serve schema version mismatch: file has v{version}, this tool speaks \
                 v{SERVE_SCHEMA_VERSION} — regenerate the store"
            ));
        }
        let generator = doc
            .get("generator")
            .and_then(Json::as_str)
            .ok_or_else(|| "document missing 'generator'".to_string())?
            .to_string();
        let records = doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or_else(|| "document missing 'records' array".to_string())?
            .iter()
            .map(ServeRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { generator, records })
    }

    /// Read and parse a serving store file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write the canonical document to `path`.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json_string())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// Result of gating a regenerated campaign against a baseline store.
#[derive(Debug, Clone, Default)]
pub struct ServeDiff {
    /// Human-readable per-cell findings, in baseline order.
    pub lines: Vec<String>,
    /// Number of gate failures (0 means the diff passes).
    pub failures: u64,
}

impl ServeDiff {
    /// Whether the regenerated campaign matches the baseline.
    pub fn pass(&self) -> bool {
        self.failures == 0
    }

    /// Render the findings (one line each) followed by a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        if self.pass() {
            out.push_str("serve diff: PASS\n");
        } else {
            out.push_str(&format!(
                "serve diff: FAIL ({} finding(s))\n",
                self.failures
            ));
        }
        out
    }
}

/// Strict comparison of a regenerated campaign against a committed
/// baseline.
///
/// The serving pipeline is deterministic end to end, so the gate is
/// exact: every baseline cell must exist with identical counters,
/// modeled times, latency digest and SLO verdict. Cells present only in
/// `current` are reported as informational (new cells are how the
/// campaign grows) and do not fail the gate.
pub fn diff_serve(current: &ServeSet, baseline: &ServeSet) -> ServeDiff {
    let mut diff = ServeDiff::default();
    for base in &baseline.records {
        match current.find(&base.cell) {
            None => {
                diff.lines
                    .push(format!("{}: MISSING from regenerated campaign", base.cell));
                diff.failures += 1;
            }
            Some(cur) if cur == base => {
                diff.lines.push(format!("{}: ok", base.cell));
            }
            Some(cur) => {
                let mut causes = Vec::new();
                if cur.completed() != base.completed() {
                    causes.push(format!(
                        "completed {} != baseline {}",
                        cur.completed(),
                        base.completed()
                    ));
                }
                if cur.rejected() != base.rejected() {
                    causes.push(format!(
                        "rejected {} != baseline {}",
                        cur.rejected(),
                        base.rejected()
                    ));
                }
                if cur.elapsed_ns != base.elapsed_ns {
                    causes.push(format!(
                        "elapsed_ns {} != baseline {}",
                        cur.elapsed_ns, base.elapsed_ns
                    ));
                }
                if cur.latency != base.latency {
                    causes.push("latency digest drifted".to_string());
                }
                if cur.slo_pass != base.slo_pass {
                    causes.push(format!(
                        "SLO verdict flipped ({} -> {})",
                        base.slo_pass, cur.slo_pass
                    ));
                }
                if causes.is_empty() {
                    causes.push("field drift outside summarized counters".to_string());
                }
                diff.lines
                    .push(format!("{}: DRIFT — {}", base.cell, causes.join("; ")));
                diff.failures += 1;
            }
        }
    }
    for cur in &current.records {
        if baseline.find(&cur.cell).is_none() {
            diff.lines
                .push(format!("{}: new cell (not in baseline)", cur.cell));
        }
    }
    diff
}

/// File name of serving trajectory point `index`: `SERVE_0007.json`.
pub fn serve_file_name(index: u64) -> String {
    format!("SERVE_{index:04}.json")
}

/// Parse an index out of a `SERVE_<n>.json` file name.
pub fn parse_serve_index(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("SERVE_")?.strip_suffix(".json")?;
    if rest.contains('.') {
        return None;
    }
    rest.parse().ok()
}

/// The `SERVE_*.json` files in `dir`, sorted by index.
pub fn list_serve_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(index) = entry.file_name().to_str().and_then(parse_serve_index) {
                found.push((index, entry.path()));
            }
        }
    }
    found.sort_by_key(|&(index, _)| index);
    found
}

/// First unused serving trajectory index in `dir` (1-based).
pub fn next_serve_index(dir: &Path) -> u64 {
    list_serve_files(dir)
        .last()
        .map_or(1, |&(index, _)| index + 1)
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A small synthetic two-tenant cell with one rejection and one
    /// request left in flight.
    pub fn sample_record(cell: &str) -> ServeRecord {
        let mut h = LogHistogram::default();
        for ns in [1_000, 2_000, 2_000, 50_000] {
            h.record(ns);
        }
        ServeRecord {
            cell: cell.to_string(),
            kernel: "mvm".to_string(),
            n: 1024,
            seed: 42,
            max_batch: 8,
            drain: false,
            horizon_ns: 1_000_000,
            window_ns: 250_000,
            windows: 4,
            batches: 2,
            staging_ns: 12_000,
            compute_ns: 3_000,
            elapsed_ns: 1_100_000,
            throughput_milli_rps: 3_636,
            latency: LatencyDigest::from_histogram(&h),
            slo_p99_ns: 100_000,
            slo_pass: true,
            tenants: vec![
                TenantRecord {
                    name: "alpha".to_string(),
                    arrivals: 4,
                    rejected_queue: 1,
                    rejected_tokens: 0,
                    completed: 3,
                    in_flight: 0,
                    latency: LatencyDigest::from_histogram(&h),
                    completions: vec![1, 2, 0, 0],
                    rejections: vec![0, 1, 0, 0],
                },
                TenantRecord {
                    name: "beta".to_string(),
                    arrivals: 2,
                    rejected_queue: 0,
                    rejected_tokens: 0,
                    completed: 1,
                    in_flight: 1,
                    latency: LatencyDigest {
                        samples: 0,
                        min: 0,
                        max: 0,
                        quantiles: None,
                    },
                    completions: vec![0, 0, 1, 0],
                    rejections: vec![0, 0, 0, 0],
                },
            ],
        }
    }

    /// A one-cell sample set.
    pub fn sample_set() -> ServeSet {
        let mut set = ServeSet::new("unit-test");
        set.records.push(sample_record("mvm1024/open/batched"));
        set
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{sample_record, sample_set};
    use super::*;

    #[test]
    fn set_round_trips_losslessly() {
        let set = sample_set();
        let parsed = ServeSet::from_json_str(&set.to_json_string()).unwrap();
        assert_eq!(parsed, set);
        assert!(parsed.find("mvm1024/open/batched").is_some());
        assert!(parsed.find("nope").is_none());
    }

    #[test]
    fn serialization_is_byte_deterministic() {
        assert_eq!(sample_set().to_json_string(), sample_set().to_json_string());
    }

    #[test]
    fn totals_sum_tenants_and_conserve_requests() {
        let r = sample_record("c");
        assert_eq!(r.offered(), 6);
        assert_eq!(r.completed(), 4);
        assert_eq!(r.rejected(), 1);
        assert_eq!(r.in_flight(), 1);
        assert_eq!(r.offered(), r.completed() + r.rejected() + r.in_flight());
        assert_eq!(r.busy_ns(), 15_000);
    }

    #[test]
    fn empty_latency_digest_has_no_quantiles() {
        let d = LatencyDigest::from_histogram(&LogHistogram::default());
        assert_eq!(d.samples, 0);
        assert_eq!(d.quantiles, None);
        assert_eq!(d.p99(), None);
        // And it round-trips through JSON as nulls, not zeros.
        let parsed = ServeSet::from_json_str(&sample_set().to_json_string()).unwrap();
        assert_eq!(parsed.records[0].tenants[1].latency.quantiles, None);
    }

    #[test]
    fn schema_version_bump_is_detected() {
        let text = sample_set().to_json_string().replacen(
            &format!("\"schema_version\": {SERVE_SCHEMA_VERSION}"),
            &format!("\"schema_version\": {}", SERVE_SCHEMA_VERSION + 1),
            1,
        );
        let err = ServeSet::from_json_str(&text).unwrap_err();
        assert!(err.contains("schema version mismatch"), "{err}");
    }

    #[test]
    fn diff_passes_on_identity_and_fails_on_drift() {
        let set = sample_set();
        let diff = diff_serve(&set, &set);
        assert!(diff.pass(), "{}", diff.render());

        let mut drifted = set.clone();
        drifted.records[0].tenants[0].completed += 1;
        let diff = diff_serve(&drifted, &set);
        assert!(!diff.pass());
        assert!(diff.render().contains("DRIFT"), "{}", diff.render());

        let missing = ServeSet::new("unit-test");
        let diff = diff_serve(&missing, &set);
        assert!(!diff.pass());
        assert!(diff.render().contains("MISSING"), "{}", diff.render());

        // New cells in current are informational, not failures.
        let mut grown = set.clone();
        grown.records.push(sample_record("extra/cell"));
        let diff = diff_serve(&grown, &set);
        assert!(diff.pass(), "{}", diff.render());
        assert!(diff.render().contains("new cell"));
    }

    #[test]
    fn serve_file_names() {
        assert_eq!(serve_file_name(3), "SERVE_0003.json");
        assert_eq!(parse_serve_index("SERVE_0003.json"), Some(3));
        assert_eq!(parse_serve_index("SERVE_12.json"), Some(12));
        assert_eq!(parse_serve_index("SERVE_0003.backup.json"), None);
        assert_eq!(parse_serve_index("BENCH_0001.json"), None);
    }

    #[test]
    fn trajectory_scan_and_next_index() {
        let dir = std::env::temp_dir().join("fblas_serve_store_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_serve_index(&dir), 1);
        let set = sample_set();
        set.save(&dir.join(serve_file_name(1))).unwrap();
        set.save(&dir.join(serve_file_name(2))).unwrap();
        let files = list_serve_files(&dir);
        assert_eq!(files.iter().map(|&(i, _)| i).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(next_serve_index(&dir), 3);
        assert_eq!(ServeSet::load(&files[0].1).unwrap(), set);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
