//! Fault-coverage records: the byte-deterministic output of an
//! `observatory faults` campaign.
//!
//! A [`FaultSet`] is to the reliability subsystem what
//! [`RecordSet`](crate::RecordSet) is to the performance observatory:
//! schema-versioned, insertion-ordered, free of timestamps and host
//! details, so the same seed produces byte-identical files at any worker
//! count — which is exactly what the CI campaign gate compares.
//!
//! The scoreboard renderer lives here too, with its own marker pair
//! ([`FAULT_SECTION_BEGIN`]/[`FAULT_SECTION_END`]) so the fault section
//! of `EXPERIMENTS.md` splices independently of the paper-parity section
//! (whose byte-exact golden test must not be disturbed).

use std::path::Path;

use crate::json::Json;
use crate::report::splice_between;

/// Schema version of fault-coverage documents (independent of the
/// performance-record schema).
pub const FAULT_SCHEMA_VERSION: u64 = 1;

/// Marker opening the generated fault section of `EXPERIMENTS.md`.
pub const FAULT_SECTION_BEGIN: &str = "<!-- observatory:faults:begin -->";
/// Marker closing the generated fault section of `EXPERIMENTS.md`.
pub const FAULT_SECTION_END: &str = "<!-- observatory:faults:end -->";

/// One classified campaign trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Kernel family, e.g. `"mvm/row"`.
    pub kernel: String,
    /// Fault kind name, e.g. `"pipeline-bit-flip"`.
    pub fault: String,
    /// Injection cycle armed on the harness.
    pub cycle: u64,
    /// Whether the design reported the fault as landed.
    pub landed: bool,
    /// Outcome name: `detected` / `silent-corruption` / `masked` / `hang`.
    pub outcome: String,
    /// Detector that fired (`abft`, `residual`, `invariant`, `watchdog`,
    /// `none`).
    pub detector: String,
    /// Whether replay restored the clean result bit-exactly.
    pub recovered: bool,
    /// Replay attempts consumed (0 when no response ran).
    pub recovery_attempts: u64,
    /// Total cycles charged to recovery (0 when no response ran).
    pub recovery_cycles: u64,
}

impl FaultRecord {
    /// Serialize with a fixed member order.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("kernel", Json::Str(self.kernel.clone()))
            .with("fault", Json::Str(self.fault.clone()))
            .with("cycle", Json::Num(self.cycle as f64))
            .with("landed", Json::Bool(self.landed))
            .with("outcome", Json::Str(self.outcome.clone()))
            .with("detector", Json::Str(self.detector.clone()))
            .with("recovered", Json::Bool(self.recovered))
            .with(
                "recovery_attempts",
                Json::Num(self.recovery_attempts as f64),
            )
            .with("recovery_cycles", Json::Num(self.recovery_cycles as f64))
    }

    /// Parse a record serialized by [`FaultRecord::to_json`].
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let str_field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("fault record missing '{k}'"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("fault record missing '{k}'"))
        };
        let bool_field = |k: &str| -> Result<bool, String> {
            doc.get(k)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("fault record missing '{k}'"))
        };
        Ok(Self {
            kernel: str_field("kernel")?,
            fault: str_field("fault")?,
            cycle: u64_field("cycle")?,
            landed: bool_field("landed")?,
            outcome: str_field("outcome")?,
            detector: str_field("detector")?,
            recovered: bool_field("recovered")?,
            recovery_attempts: u64_field("recovery_attempts")?,
            recovery_cycles: u64_field("recovery_cycles")?,
        })
    }
}

/// One graceful-degradation measurement (faulted PE dropped, kernel
/// re-scheduled on the smaller array).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedRecord {
    /// Kernel family.
    pub kernel: String,
    /// Healthy lane/PE count.
    pub healthy_k: u64,
    /// Lane/PE count after dropping the faulted unit.
    pub degraded_k: u64,
    /// Sustained MFLOPS of the healthy configuration.
    pub healthy_mflops: f64,
    /// Honest sustained MFLOPS after degradation.
    pub degraded_mflops: f64,
    /// Whether the degraded result still matches the oracle exactly.
    pub exact: bool,
}

impl DegradedRecord {
    /// Serialize with a fixed member order.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("kernel", Json::Str(self.kernel.clone()))
            .with("healthy_k", Json::Num(self.healthy_k as f64))
            .with("degraded_k", Json::Num(self.degraded_k as f64))
            .with("healthy_mflops", Json::Num(self.healthy_mflops))
            .with("degraded_mflops", Json::Num(self.degraded_mflops))
            .with("exact", Json::Bool(self.exact))
    }

    /// Parse a record serialized by [`DegradedRecord::to_json`].
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(Self {
            kernel: doc
                .get("kernel")
                .and_then(Json::as_str)
                .ok_or("degraded record missing 'kernel'")?
                .to_string(),
            healthy_k: doc
                .get("healthy_k")
                .and_then(Json::as_u64)
                .ok_or("degraded record missing 'healthy_k'")?,
            degraded_k: doc
                .get("degraded_k")
                .and_then(Json::as_u64)
                .ok_or("degraded record missing 'degraded_k'")?,
            healthy_mflops: doc
                .get("healthy_mflops")
                .and_then(Json::as_f64)
                .ok_or("degraded record missing 'healthy_mflops'")?,
            degraded_mflops: doc
                .get("degraded_mflops")
                .and_then(Json::as_f64)
                .ok_or("degraded record missing 'degraded_mflops'")?,
            exact: doc
                .get("exact")
                .and_then(Json::as_bool)
                .ok_or("degraded record missing 'exact'")?,
        })
    }
}

/// The full output of one fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSet {
    /// Tool that produced the set, e.g. `"observatory faults"`.
    pub generator: String,
    /// Campaign seed (the entire matrix derives from it).
    pub seed: u64,
    /// Classified trials, in matrix order.
    pub records: Vec<FaultRecord>,
    /// Graceful-degradation measurements.
    pub degraded: Vec<DegradedRecord>,
}

impl FaultSet {
    /// An empty set for `generator` and `seed`.
    pub fn new(generator: &str, seed: u64) -> Self {
        Self {
            generator: generator.to_string(),
            seed,
            records: Vec::new(),
            degraded: Vec::new(),
        }
    }

    /// Serialize to the canonical byte-deterministic JSON document.
    pub fn to_json_string(&self) -> String {
        Json::obj()
            .with("schema_version", Json::Num(FAULT_SCHEMA_VERSION as f64))
            .with("generator", Json::Str(self.generator.clone()))
            .with("seed", Json::Num(self.seed as f64))
            .with(
                "records",
                Json::Arr(self.records.iter().map(FaultRecord::to_json).collect()),
            )
            .with(
                "degraded",
                Json::Arr(self.degraded.iter().map(DegradedRecord::to_json).collect()),
            )
            .render()
    }

    /// Parse a document produced by [`FaultSet::to_json_string`],
    /// rejecting schema mismatches outright.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| "document missing 'schema_version'".to_string())?;
        if version != FAULT_SCHEMA_VERSION {
            return Err(format!(
                "schema version mismatch: file has v{version}, this tool speaks \
                 v{FAULT_SCHEMA_VERSION} — regenerate the fault set"
            ));
        }
        Ok(Self {
            generator: doc
                .get("generator")
                .and_then(Json::as_str)
                .ok_or("document missing 'generator'")?
                .to_string(),
            seed: doc
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("document missing 'seed'")?,
            records: doc
                .get("records")
                .and_then(Json::as_arr)
                .ok_or("document missing 'records' array")?
                .iter()
                .map(FaultRecord::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            degraded: doc
                .get("degraded")
                .and_then(Json::as_arr)
                .ok_or("document missing 'degraded' array")?
                .iter()
                .map(DegradedRecord::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// Read and parse a fault-set file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write the canonical document to `path`.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json_string())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Silent corruptions among ABFT-covered kernels (`mvm/*`, `mm/*`) —
    /// the quantity the CI gate requires to be zero.
    pub fn covered_silent_corruptions(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| {
                (r.kernel.starts_with("mvm/") || r.kernel.starts_with("mm/"))
                    && r.outcome == "silent-corruption"
            })
            .count() as u64
    }
}

/// Per-kernel aggregate of a fault set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultCoverage {
    /// Kernel family.
    pub kernel: String,
    /// Total trials.
    pub trials: u64,
    /// Trials whose fault landed on occupied state.
    pub landed: u64,
    /// Outcome counts.
    pub detected: u64,
    /// Silent corruptions (must stay zero for ABFT-covered kernels).
    pub silent: u64,
    /// Architecturally masked trials.
    pub masked: u64,
    /// Watchdog trips.
    pub hung: u64,
    /// Trials whose replay recovered bit-exactly.
    pub recovered: u64,
    /// Sum of recovery cycles across recovered trials.
    pub recovery_cycles: u64,
}

impl FaultCoverage {
    /// Detection rate over corrupting faults, in permille (integer math,
    /// so the rendering is byte-deterministic). `None` when no fault
    /// corrupted anything.
    pub fn caught_permille(&self) -> Option<u64> {
        let corrupting = self.detected + self.silent;
        (corrupting > 0).then(|| self.detected * 1000 / corrupting)
    }

    /// Mean recovery cycles across recovered trials (integer division).
    pub fn mean_recovery_cycles(&self) -> Option<u64> {
        (self.recovered > 0).then(|| self.recovery_cycles / self.recovered)
    }
}

/// Aggregate records per kernel, in first-seen order.
pub fn coverage(records: &[FaultRecord]) -> Vec<FaultCoverage> {
    let mut out: Vec<FaultCoverage> = Vec::new();
    for r in records {
        let entry = match out.iter_mut().find(|c| c.kernel == r.kernel) {
            Some(entry) => entry,
            None => {
                out.push(FaultCoverage {
                    kernel: r.kernel.clone(),
                    ..FaultCoverage::default()
                });
                out.last_mut().expect("just pushed")
            }
        };
        entry.trials += 1;
        entry.landed += u64::from(r.landed);
        match r.outcome.as_str() {
            "detected" => entry.detected += 1,
            "silent-corruption" => entry.silent += 1,
            "masked" => entry.masked += 1,
            "hang" => entry.hung += 1,
            other => panic!("unknown outcome {other:?} in fault record"),
        }
        if r.recovered {
            entry.recovered += 1;
            entry.recovery_cycles += r.recovery_cycles;
        }
    }
    out
}

fn permille_percent(p: Option<u64>) -> String {
    p.map_or_else(|| "—".to_string(), |p| format!("{}.{}%", p / 10, p % 10))
}

/// Render the fault-coverage scoreboard as a markdown table.
pub fn render_fault_scoreboard(set: &FaultSet) -> String {
    let mut out = String::new();
    out.push_str("| kernel | trials | landed | detected | silent | masked | hang | caught | mean recovery |\n");
    out.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for c in coverage(&set.records) {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            c.kernel,
            c.trials,
            c.landed,
            c.detected,
            if c.silent > 0 {
                format!("**{}**", c.silent)
            } else {
                "0".to_string()
            },
            c.masked,
            c.hung,
            permille_percent(c.caught_permille()),
            c.mean_recovery_cycles()
                .map_or_else(|| "—".to_string(), |cy| format!("{cy} cy")),
        ));
    }
    out
}

/// Render the graceful-degradation table.
pub fn render_degradation_table(set: &FaultSet) -> String {
    let mut out = String::new();
    if set.degraded.is_empty() {
        return out;
    }
    out.push_str(
        "| kernel | healthy k | degraded k | healthy MFLOPS | degraded MFLOPS | exact |\n",
    );
    out.push_str("|---|---|---|---|---|---|\n");
    for d in &set.degraded {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.1} | {} |\n",
            d.kernel,
            d.healthy_k,
            d.degraded_k,
            d.healthy_mflops,
            d.degraded_mflops,
            if d.exact { "yes" } else { "**no**" }
        ));
    }
    out
}

/// Build the full fault section (without the markers).
pub fn render_fault_section(set: &FaultSet) -> String {
    let mut out = String::new();
    out.push_str("## Observatory — fault-injection coverage\n\n");
    out.push_str(&format!(
        "Generated by `cargo run --release -p fblas-bench --bin observatory -- faults --seed {}`.\n\
         Do not edit between the markers; re-run the command instead.\n\n",
        set.seed
    ));
    out.push_str(&format!(
        "{} trials, seed {}. Outcome taxonomy: a fault is *detected* (ABFT checksum, \
         software residual gate, or a design invariant fired), *masked* \
         (bit-identical result — the fault hit a bubble, a dead bit, or only \
         perturbed timing), a *hang* (watchdog), or a **silent corruption**. \
         ABFT-covered kernels (`mvm/*`, `mm/*`) must show zero silent corruptions.\n\n",
        set.records.len(),
        set.seed
    ));
    out.push_str(&render_fault_scoreboard(set));
    if !set.degraded.is_empty() {
        out.push_str("\n### Graceful degradation (faulted PE dropped)\n\n");
        out.push_str(&render_degradation_table(set));
    }
    out
}

/// Splice the fault section into a document between the fault markers.
pub fn splice_fault_section(document: &str, section: &str) -> String {
    splice_between(document, FAULT_SECTION_BEGIN, FAULT_SECTION_END, section)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kernel: &str, outcome: &str, recovered: bool) -> FaultRecord {
        FaultRecord {
            kernel: kernel.to_string(),
            fault: "pipeline-bit-flip".to_string(),
            cycle: 17,
            landed: outcome != "masked",
            outcome: outcome.to_string(),
            detector: if outcome == "detected" {
                "abft"
            } else {
                "none"
            }
            .to_string(),
            recovered,
            recovery_attempts: u64::from(recovered),
            recovery_cycles: if recovered { 420 } else { 0 },
        }
    }

    fn sample() -> FaultSet {
        let mut set = FaultSet::new("observatory faults", 7);
        set.records.push(record("mvm/row", "detected", true));
        set.records.push(record("mvm/row", "masked", false));
        set.records.push(record("dot", "detected", true));
        set.degraded.push(DegradedRecord {
            kernel: "mvm/row".to_string(),
            healthy_k: 4,
            degraded_k: 2,
            healthy_mflops: 1200.0,
            degraded_mflops: 640.0,
            exact: true,
        });
        set
    }

    #[test]
    fn fault_set_round_trips() {
        let set = sample();
        let text = set.to_json_string();
        assert_eq!(FaultSet::from_json_str(&text).unwrap(), set);
    }

    #[test]
    fn serialization_is_byte_deterministic() {
        assert_eq!(sample().to_json_string(), sample().to_json_string());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = sample().to_json_string().replacen(
            &format!("\"schema_version\": {FAULT_SCHEMA_VERSION}"),
            &format!("\"schema_version\": {}", FAULT_SCHEMA_VERSION + 9),
            1,
        );
        let err = FaultSet::from_json_str(&text).unwrap_err();
        assert!(err.contains("schema version mismatch"), "{err}");
    }

    #[test]
    fn coverage_groups_by_kernel_in_first_seen_order() {
        let set = sample();
        let cov = coverage(&set.records);
        assert_eq!(cov.len(), 2);
        assert_eq!(cov[0].kernel, "mvm/row");
        assert_eq!(cov[0].trials, 2);
        assert_eq!(cov[0].detected, 1);
        assert_eq!(cov[0].masked, 1);
        assert_eq!(cov[0].caught_permille(), Some(1000));
        assert_eq!(cov[0].mean_recovery_cycles(), Some(420));
        assert_eq!(cov[1].kernel, "dot");
    }

    #[test]
    fn covered_silent_corruptions_counts_only_abft_kernels() {
        let mut set = sample();
        assert_eq!(set.covered_silent_corruptions(), 0);
        set.records.push(record("dot", "silent-corruption", false));
        assert_eq!(set.covered_silent_corruptions(), 0, "dot is not covered");
        set.records
            .push(record("mm/linear", "silent-corruption", false));
        assert_eq!(set.covered_silent_corruptions(), 1);
    }

    #[test]
    fn golden_fault_scoreboard() {
        // Pins the exact rendering: a formatting change must update this.
        let text = render_fault_scoreboard(&sample());
        let expected = "\
| kernel | trials | landed | detected | silent | masked | hang | caught | mean recovery |
|---|---|---|---|---|---|---|---|---|
| mvm/row | 2 | 1 | 1 | 0 | 1 | 0 | 100.0% | 420 cy |
| dot | 1 | 1 | 1 | 0 | 0 | 0 | 100.0% | 420 cy |
";
        assert_eq!(text, expected);
    }

    #[test]
    fn fault_section_splices_independently_of_the_parity_section() {
        let doc = format!(
            "# head\n\n{}\nparity\n{}\n",
            crate::report::SECTION_BEGIN,
            crate::report::SECTION_END
        );
        let spliced = splice_fault_section(&doc, &render_fault_section(&sample()));
        assert!(spliced.contains("parity"), "parity section untouched");
        assert!(spliced.contains(FAULT_SECTION_BEGIN));
        assert!(spliced.contains("fault-injection coverage"));
        let again = splice_fault_section(&spliced, &render_fault_section(&sample()));
        assert_eq!(again, spliced, "splice is idempotent");
    }
}
