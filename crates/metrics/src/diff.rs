//! Regression gating: compare a run against a committed baseline and the
//! paper-parity scoreboard.
//!
//! The simulator is deterministic, so the baseline comparison is strict:
//! any drift in cycles, FLOPs, I/O words, busy cycles or stall
//! attribution for a matching (kernel, config) key is a finding, as is a
//! kernel that disappeared from the run. Sustained MFLOPS gets a small
//! relative tolerance (it is derived from cycles through a float divide)
//! and paper parity is gated through the shared tolerance table — a
//! measurement may move *within* its tolerance band, but a delta that
//! leaves the band fails the diff.

use crate::record::RunRecord;
use crate::store::RecordSet;
use crate::tolerance;

/// Relative slack for derived floating-point metrics (MFLOPS).
pub const MFLOPS_REL_TOL: f64 = 1e-6;

/// How bad one diff finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiffSeverity {
    /// Informational (new kernel, classification note).
    Note,
    /// Fails the gate.
    Regression,
}

/// One finding of the baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffFinding {
    /// Record identity key the finding concerns.
    pub key: String,
    /// Metric that moved, e.g. `"cycles"`, `"paper:table3.dot.mflops"`.
    pub metric: String,
    /// Severity.
    pub severity: DiffSeverity,
    /// Human-readable explanation with both values.
    pub message: String,
}

/// Outcome of diffing a run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All findings, in record order.
    pub findings: Vec<DiffFinding>,
    /// Keys compared without any finding.
    pub clean: Vec<String>,
}

impl DiffReport {
    /// Number of gate-failing findings.
    pub fn regressions(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == DiffSeverity::Regression)
            .count()
    }

    /// True iff the gate passes.
    pub fn passes(&self) -> bool {
        self.regressions() == 0
    }

    /// Exit status for a gating binary.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.passes())
    }

    /// Render as a fixed-order text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match f.severity {
                DiffSeverity::Note => "note",
                DiffSeverity::Regression => "REGRESSION",
            };
            out.push_str(&format!(
                "{tag:>10}  {} :: {}  {}\n",
                f.key, f.metric, f.message
            ));
        }
        out.push_str(&format!(
            "{} kernel(s) clean, {} finding(s), {} regression(s)\n",
            self.clean.len(),
            self.findings.len(),
            self.regressions()
        ));
        out
    }

    fn push(&mut self, key: &str, metric: &str, severity: DiffSeverity, message: String) {
        self.findings.push(DiffFinding {
            key: key.to_string(),
            metric: metric.to_string(),
            severity,
            message,
        });
    }
}

fn diff_u64(report: &mut DiffReport, key: &str, metric: &str, baseline: u64, run: u64) -> bool {
    if baseline == run {
        return true;
    }
    report.push(
        key,
        metric,
        DiffSeverity::Regression,
        format!(
            "baseline {baseline}, run {run} ({:+})",
            run as i64 - baseline as i64
        ),
    );
    false
}

/// Compare `run` against `baseline`.
///
/// Gate-failing findings: exact-counter drift (cycles, flops, words,
/// busy cycles, per-cause stalls), sustained-MFLOPS drift beyond
/// [`MFLOPS_REL_TOL`], paper parity leaving its tolerance band, a
/// baseline kernel missing from the run, and a bound-classification flip.
/// Kernels present only in the run are notes (the matrix may grow).
pub fn diff_sets(baseline: &RecordSet, run: &RecordSet) -> DiffReport {
    let mut report = DiffReport::default();
    for base in &baseline.records {
        let key = base.key();
        let Some(current) = run.find(&key) else {
            report.push(
                &key,
                "presence",
                DiffSeverity::Regression,
                "kernel present in baseline but missing from the run".to_string(),
            );
            continue;
        };
        let before = report.findings.len();
        diff_record(&mut report, &key, base, current);
        if report.findings.len() == before {
            report.clean.push(key);
        }
    }
    for current in &run.records {
        if baseline.find(&current.key()).is_none() {
            report.push(
                &current.key(),
                "presence",
                DiffSeverity::Note,
                "new kernel, not in baseline".to_string(),
            );
        }
    }
    report
}

fn diff_record(report: &mut DiffReport, key: &str, base: &RunRecord, run: &RunRecord) {
    diff_u64(report, key, "cycles", base.cycles, run.cycles);
    diff_u64(report, key, "flops", base.flops, run.flops);
    diff_u64(report, key, "words_in", base.words_in, run.words_in);
    diff_u64(report, key, "words_out", base.words_out, run.words_out);
    diff_u64(
        report,
        key,
        "busy_cycles",
        base.busy_cycles,
        run.busy_cycles,
    );
    for (i, &cause) in fblas_sim::StallCause::ALL.iter().enumerate() {
        diff_u64(
            report,
            key,
            &format!("stalls.{}", cause.name()),
            base.stalls.by_cause[i],
            run.stalls.by_cause[i],
        );
    }
    let denom = base.sustained_mflops.abs().max(1e-12);
    let rel = (run.sustained_mflops - base.sustained_mflops).abs() / denom;
    if rel > MFLOPS_REL_TOL {
        report.push(
            key,
            "sustained_mflops",
            DiffSeverity::Regression,
            format!(
                "baseline {:.3}, run {:.3} ({:+.3}%)",
                base.sustained_mflops,
                run.sustained_mflops,
                (run.sustained_mflops - base.sustained_mflops) / denom * 100.0
            ),
        );
    }
    if base.bound != run.bound {
        report.push(
            key,
            "bound",
            DiffSeverity::Regression,
            format!(
                "classification flipped: baseline {}, run {}",
                base.bound.name(),
                run.bound.name()
            ),
        );
    }
    // Paper parity: every baseline figure must still be measured, and the
    // run's delta must stay inside the shared tolerance band.
    for bp in &base.paper {
        let metric = format!("paper:{}", bp.figure_id);
        let Some(rp) = run.paper.iter().find(|p| p.figure_id == bp.figure_id) else {
            report.push(
                key,
                &metric,
                DiffSeverity::Regression,
                "parity figure no longer measured".to_string(),
            );
            continue;
        };
        match tolerance::lookup(&bp.figure_id) {
            None => report.push(
                key,
                &metric,
                DiffSeverity::Regression,
                "figure id unknown to the shared tolerance table".to_string(),
            ),
            Some(t) => {
                if !t.accepts(rp.measured) {
                    report.push(
                        key,
                        &metric,
                        DiffSeverity::Regression,
                        format!(
                            "paper delta {:+.2}% exceeds ±{:.0}% (paper {} {}, run {:.4}, \
                             baseline {:.4})",
                            t.delta_frac(rp.measured) * 100.0,
                            t.tol_frac * 100.0,
                            t.paper,
                            t.unit,
                            rp.measured,
                            bp.measured
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::StallBreakdown;
    use fblas_sim::SimReport;

    fn record(cycles: u64, mflops_paper: f64) -> RunRecord {
        RunRecord::from_sim(
            "dot",
            &[("k", 2), ("n", 64)],
            SimReport {
                cycles,
                flops: 128,
                words_in: 128,
                words_out: 1,
                busy_cycles: 32,
            },
            StallBreakdown::default(),
            170.0,
            5220,
        )
        .with_paper("table3.dot.mflops", mflops_paper)
    }

    fn set(records: Vec<RunRecord>) -> RecordSet {
        let mut s = RecordSet::new("test");
        for r in records {
            s.push(r);
        }
        s
    }

    #[test]
    fn identical_sets_pass() {
        let a = set(vec![record(40, 557.0)]);
        let d = diff_sets(&a, &a.clone());
        assert!(d.passes(), "{}", d.render());
        assert_eq!(d.clean, vec!["dot[k=2,n=64]"]);
        assert_eq!(d.exit_code(), 0);
    }

    #[test]
    fn cycle_drift_is_a_regression() {
        let d = diff_sets(&set(vec![record(40, 557.0)]), &set(vec![record(41, 557.0)]));
        assert!(!d.passes());
        assert!(d.findings.iter().any(|f| f.metric == "cycles"));
        // Cycle drift also moves derived MFLOPS.
        assert!(d.findings.iter().any(|f| f.metric == "sustained_mflops"));
        assert_eq!(d.exit_code(), 1);
    }

    #[test]
    fn paper_delta_leaving_the_band_fails() {
        // Baseline inside tolerance; run wanders out of ±15 %.
        let d = diff_sets(
            &set(vec![record(40, 557.0)]),
            &set(vec![record(40, 557.0 * 1.2)]),
        );
        assert!(!d.passes());
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "paper:table3.dot.mflops"));
    }

    #[test]
    fn missing_kernel_fails_new_kernel_notes() {
        let base = set(vec![record(40, 557.0)]);
        let d = diff_sets(&base, &set(vec![]));
        assert!(!d.passes());
        assert!(d.findings[0].message.contains("missing"));

        let mut grown = base.clone();
        grown.push(RunRecord::modeled("mm/model", &[("k", 10)], 125.0, 21580));
        let d = diff_sets(&base, &grown);
        assert!(d.passes(), "{}", d.render());
        assert_eq!(d.findings.len(), 1);
        assert_eq!(d.findings[0].severity, DiffSeverity::Note);
    }

    #[test]
    fn stall_attribution_drift_is_caught() {
        let base = record(40, 557.0);
        let mut run = base.clone();
        run.stalls.by_cause[0] = 5;
        let d = diff_sets(&set(vec![base]), &set(vec![run]));
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "stalls.input-starved"));
    }

    #[test]
    fn render_mentions_every_finding() {
        let d = diff_sets(&set(vec![record(40, 557.0)]), &set(vec![record(44, 557.0)]));
        let text = d.render();
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("cycles"));
        assert!(text.contains("regression(s)"));
    }
}
