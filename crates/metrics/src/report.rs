//! Scoreboard and trajectory rendering: markdown tables plus ASCII
//! sparklines over the committed `BENCH_*.json` history.
//!
//! The output is spliced into `EXPERIMENTS.md` between the
//! `<!-- observatory:begin -->` / `<!-- observatory:end -->` markers by
//! `observatory report`, and the golden-scoreboard test pins the exact
//! rendering so a formatting change is a conscious decision.

use crate::record::RecordKind;
use crate::store::RecordSet;
use crate::tolerance;

/// Marker opening the generated section of `EXPERIMENTS.md`.
pub const SECTION_BEGIN: &str = "<!-- observatory:begin -->";
/// Marker closing the generated section of `EXPERIMENTS.md`.
pub const SECTION_END: &str = "<!-- observatory:end -->";

/// ASCII levels for sparklines, lowest to highest.
const SPARK_LEVELS: &[u8] = b"_.-:=+*#";

/// Render a sequence of values as an ASCII sparkline.
///
/// Values are scaled to the min..max range of the sequence; a flat
/// sequence renders as all midpoints. Non-finite values render as `?`.
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '?'
            } else if max <= min {
                SPARK_LEVELS[SPARK_LEVELS.len() / 2] as char
            } else {
                let t = (v - min) / (max - min);
                let idx = (t * (SPARK_LEVELS.len() - 1) as f64).round() as usize;
                SPARK_LEVELS[idx] as char
            }
        })
        .collect()
}

/// Render the paper-parity scoreboard of one record set as a markdown
/// table: one row per parity figure, with the measured value, the paper
/// value, the delta and the PASS/FAIL verdict from the shared table.
pub fn render_scoreboard(set: &RecordSet) -> String {
    let mut out = String::new();
    out.push_str("| figure | kernel | measured | paper | Δ | tol | verdict |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    for record in &set.records {
        for parity in &record.paper {
            let Some(t) = tolerance::lookup(&parity.figure_id) else {
                out.push_str(&format!(
                    "| {} | {} | {:.4} | ? | ? | ? | UNKNOWN |\n",
                    parity.figure_id,
                    record.key(),
                    parity.measured
                ));
                continue;
            };
            out.push_str(&format!(
                "| {} | {} | {:.4} {} | {:.4} | {:+.1}% | ±{:.0}% | {} |\n",
                t.id,
                record.key(),
                parity.measured,
                t.unit,
                t.paper,
                t.delta_frac(parity.measured) * 100.0,
                t.tol_frac * 100.0,
                if t.accepts(parity.measured) {
                    "PASS"
                } else {
                    "**FAIL**"
                }
            ));
        }
    }
    out
}

/// Render the kernel measurement table of one record set: cycles, FLOPs,
/// utilization, stall shares and bound classification per simulated
/// kernel.
pub fn render_kernel_table(set: &RecordSet) -> String {
    let mut out = String::new();
    out.push_str(
        "| kernel | cycles | MFLOPS | util | stalls (starve/backpr/hazard/drain) | bound |\n",
    );
    out.push_str("|---|---|---|---|---|---|\n");
    for r in &set.records {
        if r.kind != RecordKind::Simulated {
            continue;
        }
        let s = &r.stalls.by_cause;
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.0}% | {}/{}/{}/{} | {} |\n",
            r.key(),
            r.cycles,
            r.sustained_mflops,
            r.utilization() * 100.0,
            s[0],
            s[1],
            s[2],
            s[3],
            r.bound.name()
        ));
    }
    out
}

/// Render the trajectory: per kernel key, the sustained-MFLOPS history
/// across the given runs (oldest first) as a sparkline plus the first and
/// latest values. `labels` names each run (e.g. the `BENCH_*` index).
pub fn render_trajectory(labels: &[String], runs: &[RecordSet]) -> String {
    assert_eq!(labels.len(), runs.len());
    let mut out = String::new();
    if runs.is_empty() {
        out.push_str("no committed BENCH runs yet\n");
        return out;
    }
    out.push_str(&format!("{} run(s): {}\n\n", runs.len(), labels.join(", ")));
    out.push_str("| kernel | trend | first | latest |\n|---|---|---|---|\n");
    // Keys in latest-run order, so the table tracks the current matrix.
    let latest = runs.last().expect("non-empty");
    for record in &latest.records {
        if record.kind != RecordKind::Simulated {
            continue;
        }
        let key = record.key();
        let series: Vec<f64> = runs
            .iter()
            .map(|set| set.find(&key).map_or(f64::NAN, |r| r.sustained_mflops))
            .collect();
        let first = series.iter().copied().find(|v| v.is_finite());
        out.push_str(&format!(
            "| {key} | `{}` | {} | {:.1} |\n",
            sparkline(&series),
            first.map_or("—".to_string(), |v| format!("{v:.1}")),
            record.sustained_mflops
        ));
    }
    out
}

/// Build the full generated section (without the markers).
pub fn render_section(labels: &[String], runs: &[RecordSet]) -> String {
    let mut out = String::new();
    out.push_str("## Observatory — paper-parity scoreboard and trajectory\n\n");
    out.push_str(
        "Generated by `cargo run --release -p fblas-bench --bin observatory -- report`.\n\
         Do not edit between the markers; re-run the command instead.\n\n",
    );
    if let Some(latest) = runs.last() {
        out.push_str("### Scoreboard (latest run)\n\n");
        out.push_str(&render_scoreboard(latest));
        out.push_str("\n### Kernel measurements (latest run)\n\n");
        out.push_str(&render_kernel_table(latest));
        out.push_str("\n### Sustained-MFLOPS trajectory\n\n");
    }
    out.push_str(&render_trajectory(labels, runs));
    out
}

/// Splice `section` into `document` between the observatory markers.
///
/// If the markers are absent they are appended (with the section) at the
/// end of the document.
pub fn splice_section(document: &str, section: &str) -> String {
    splice_between(document, SECTION_BEGIN, SECTION_END, section)
}

/// Splice `section` into `document` between an arbitrary marker pair
/// (the general form behind [`splice_section`]; the fault scoreboard
/// uses its own pair so the two generated sections evolve independently).
///
/// If the markers are absent they are appended (with the section) at the
/// end of the document.
pub fn splice_between(
    document: &str,
    begin_marker: &str,
    end_marker: &str,
    section: &str,
) -> String {
    let block = format!("{begin_marker}\n{section}{end_marker}");
    match (document.find(begin_marker), document.find(end_marker)) {
        (Some(begin), Some(end)) if begin < end => {
            let after = end + end_marker.len();
            format!("{}{}{}", &document[..begin], block, &document[after..])
        }
        _ => {
            let sep = if document.ends_with('\n') {
                "\n"
            } else {
                "\n\n"
            };
            format!("{document}{sep}{block}\n")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RunRecord, StallBreakdown};
    use fblas_sim::SimReport;

    fn record(cycles: u64) -> RunRecord {
        RunRecord::from_sim(
            "dot",
            &[("k", 2), ("n", 64)],
            SimReport {
                cycles,
                flops: 128,
                words_in: 128,
                words_out: 1,
                busy_cycles: 32,
            },
            StallBreakdown::default(),
            170.0,
            5220,
        )
        .with_paper("table3.dot.mflops", 128.0 * 170.0 / cycles as f64)
    }

    fn set(cycles: u64) -> RecordSet {
        let mut s = RecordSet::new("test");
        s.push(record(cycles));
        s
    }

    #[test]
    fn sparkline_scales_and_handles_edges() {
        assert_eq!(sparkline(&[1.0, 2.0, 3.0]).len(), 3);
        assert_eq!(sparkline(&[0.0, 1.0]), "_#");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "===");
        assert_eq!(sparkline(&[1.0, f64::NAN, 2.0]), "_?#");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn scoreboard_has_verdicts() {
        let text = render_scoreboard(&set(40));
        assert!(text.contains("table3.dot.mflops"));
        assert!(text.contains("PASS") || text.contains("FAIL"));
    }

    #[test]
    fn trajectory_tracks_series_across_runs() {
        let labels = vec!["BENCH_0001".to_string(), "BENCH_0002".to_string()];
        let text = render_trajectory(&labels, &[set(40), set(40)]);
        assert!(text.contains("dot[k=2,n=64]"));
        assert!(text.contains("BENCH_0001, BENCH_0002"));
    }

    #[test]
    fn splice_replaces_existing_section() {
        let doc = format!("# head\n\n{SECTION_BEGIN}\nold\n{SECTION_END}\n\n# tail\n");
        let spliced = splice_section(&doc, "new content\n");
        assert!(spliced.contains("new content"));
        assert!(!spliced.contains("old"));
        assert!(spliced.contains("# head"));
        assert!(spliced.contains("# tail"));
        // Splicing again is idempotent in shape.
        let again = splice_section(&spliced, "new content\n");
        assert_eq!(again, spliced);
    }

    #[test]
    fn splice_appends_when_markers_missing() {
        let spliced = splice_section("# doc\n", "content\n");
        assert!(spliced.contains(SECTION_BEGIN));
        assert!(spliced.contains("content"));
        assert!(spliced.contains(SECTION_END));
    }

    #[test]
    fn golden_scoreboard() {
        // Pins the exact rendering: a formatting change must update this.
        let text = render_scoreboard(&set(40));
        let expected = "\
| figure | kernel | measured | paper | Δ | tol | verdict |
|---|---|---|---|---|---|---|
| table3.dot.mflops | dot[k=2,n=64] | 544.0000 MFLOPS | 557.0000 | -2.3% | ±15% | PASS |
";
        assert_eq!(text, expected);
    }
}
