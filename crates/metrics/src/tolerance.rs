//! The shared paper-parity tolerance table.
//!
//! One row per headline number the SC'05 paper reports (Tables 1–4,
//! Figures 9–12, §6.4 projections): a stable id, the paper's value, the
//! unit and the relative tolerance within which our reproduction must
//! land. Every consumer gates against *this* table — `verify_all`, the
//! `observatory diff` scoreboard and the design-rule checker's
//! parity-coverage rule — so a tolerance can never drift between tools.
//!
//! Tolerances are asymmetry-free relative bounds chosen in PR 0–2 when
//! the models were calibrated; EXPERIMENTS.md documents the cause of each
//! standing delta (e.g. the dot product's greedy reduction drain).

/// One paper-reported value and the tolerance our reproduction must meet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTolerance {
    /// Stable identifier, `<table-or-figure>.<design>.<metric>`.
    pub id: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// The value the paper reports.
    pub paper: f64,
    /// Unit of the value (display only).
    pub unit: &'static str,
    /// Permitted relative deviation `|measured - paper| / |paper|`.
    pub tol_frac: f64,
}

impl PaperTolerance {
    /// Relative deviation of `measured` from the paper value.
    pub fn delta_frac(&self, measured: f64) -> f64 {
        (measured - self.paper) / self.paper.abs()
    }

    /// True iff `measured` is within tolerance.
    pub fn accepts(&self, measured: f64) -> bool {
        self.delta_frac(measured).abs() <= self.tol_frac
    }
}

/// The table. Kept sorted by id for scoreboard rendering.
pub const PAPER_TOLERANCES: &[PaperTolerance] = &[
    PaperTolerance {
        id: "fig11.best.gflops",
        description: "Fig 11 best projected chassis point (XC2VP50)",
        paper: 27.0,
        unit: "GFLOPS",
        tol_frac: 0.10,
    },
    PaperTolerance {
        id: "fig12.best.gflops",
        description: "Fig 12 best projected chassis point (XC2VP100)",
        paper: 50.0,
        unit: "GFLOPS",
        tol_frac: 0.05,
    },
    PaperTolerance {
        id: "fig9.clock.k1",
        description: "MM design clock at k = 1",
        paper: 155.0,
        unit: "MHz",
        tol_frac: 0.001,
    },
    PaperTolerance {
        id: "fig9.clock.k10",
        description: "MM design clock at k = 10",
        paper: 125.0,
        unit: "MHz",
        tol_frac: 0.001,
    },
    PaperTolerance {
        id: "fig9.max-pes.xc2vp50",
        description: "most MM PEs that fit the XC2VP50",
        paper: 10.0,
        unit: "PEs",
        tol_frac: 0.001,
    },
    PaperTolerance {
        id: "sec6.chassis.gflops",
        description: "§6.4 one-chassis sustained projection",
        paper: 12.4,
        unit: "GFLOPS",
        tol_frac: 0.01,
    },
    PaperTolerance {
        id: "sec6.chassis12.gflops",
        description: "§6.4 twelve-chassis sustained projection",
        paper: 148.3,
        unit: "GFLOPS",
        tol_frac: 0.01,
    },
    PaperTolerance {
        id: "sec6.device-peak.gflops",
        description: "§6.3 XC2VP50 compute-bound device peak",
        paper: 4.42,
        unit: "GFLOPS",
        tol_frac: 0.01,
    },
    PaperTolerance {
        id: "table3.dot.mflops",
        description: "Table 3 Level-1 dot product sustained (k=2, n=2048)",
        paper: 557.0,
        unit: "MFLOPS",
        tol_frac: 0.15,
    },
    PaperTolerance {
        id: "table3.dot.slices",
        description: "Table 3 Level-1 dot product area",
        paper: 5210.0,
        unit: "slices",
        tol_frac: 0.01,
    },
    PaperTolerance {
        id: "table3.mvm.mflops",
        description: "Table 3 Level-2 matrix-vector sustained (k=4, n=2048)",
        paper: 1355.0,
        unit: "MFLOPS",
        tol_frac: 0.05,
    },
    PaperTolerance {
        id: "table3.mvm.slices",
        description: "Table 3 Level-2 matrix-vector area",
        paper: 9669.0,
        unit: "slices",
        tol_frac: 0.01,
    },
    PaperTolerance {
        id: "table4.l2.latency-ms",
        description: "Table 4 Level-2 total latency on XD1 (n=1024)",
        paper: 8.0,
        unit: "ms",
        tol_frac: 0.05,
    },
    PaperTolerance {
        id: "table4.l2.mflops",
        description: "Table 4 Level-2 sustained incl. DRAM staging",
        paper: 262.0,
        unit: "MFLOPS",
        tol_frac: 0.05,
    },
    PaperTolerance {
        id: "table4.l2.peak-pct",
        description: "Table 4 Level-2 percentage of the 325 MFLOPS peak",
        paper: 80.6,
        unit: "%",
        tol_frac: 0.05,
    },
    PaperTolerance {
        id: "table4.l3.gflops",
        description: "Table 4 Level-3 hierarchical MM sustained (n=512)",
        paper: 2.06,
        unit: "GFLOPS",
        tol_frac: 0.02,
    },
    PaperTolerance {
        id: "table4.l3.latency-ms",
        description: "Table 4 Level-3 hierarchical MM latency",
        paper: 131.0,
        unit: "ms",
        tol_frac: 0.03,
    },
];

/// Look a tolerance up by id.
pub fn lookup(id: &str) -> Option<&'static PaperTolerance> {
    PAPER_TOLERANCES.iter().find(|t| t.id == id)
}

/// Accumulates PASS/FAIL parity checks against the shared table — the
/// one tolerance gate used by `verify_all` and `observatory diff`.
///
/// Prints one line per claim and tracks the failure count; callers turn
/// `failures() > 0` into a non-zero exit status so CI can gate on it.
#[derive(Debug, Default)]
pub struct ParityGate {
    failures: u32,
    checks: u32,
    lines: Vec<String>,
}

impl ParityGate {
    /// A fresh gate with no recorded checks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check `measured` against the table entry `id`.
    ///
    /// # Panics
    /// If `id` is not in [`PAPER_TOLERANCES`] — an unknown id is a
    /// programming error, not a measurement failure.
    pub fn check(&mut self, id: &str, measured: f64) -> bool {
        let t = lookup(id).unwrap_or_else(|| panic!("unknown paper-tolerance id '{id}'"));
        let ok = t.accepts(measured);
        self.checks += 1;
        if !ok {
            self.failures += 1;
        }
        self.lines.push(format!(
            "[{}] {}: measured {measured:.4}, paper {:.4} {} ({:+.1}%, tol ±{:.0}%)",
            if ok { "PASS" } else { "FAIL" },
            t.description,
            t.paper,
            t.unit,
            t.delta_frac(measured) * 100.0,
            t.tol_frac * 100.0
        ));
        ok
    }

    /// Record a boolean structural claim (no tolerance involved).
    pub fn check_true(&mut self, name: &str, cond: bool) -> bool {
        self.checks += 1;
        if !cond {
            self.failures += 1;
        }
        self.lines
            .push(format!("[{}] {name}", if cond { "PASS" } else { "FAIL" }));
        cond
    }

    /// The rendered line of the most recent check.
    pub fn last_line(&self) -> &str {
        self.lines.last().map_or("", String::as_str)
    }

    /// Number of failed checks so far.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Number of checks recorded so far.
    pub fn checks(&self) -> u32 {
        self.checks
    }

    /// All rendered check lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Exit status for a gating binary: 0 iff nothing failed.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.failures > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ids_are_unique_and_sorted() {
        for pair in PAPER_TOLERANCES.windows(2) {
            assert!(pair[0].id < pair[1].id, "{} !< {}", pair[0].id, pair[1].id);
        }
    }

    #[test]
    fn table_values_are_sane() {
        for t in PAPER_TOLERANCES {
            assert!(t.paper > 0.0, "{}", t.id);
            assert!(t.tol_frac > 0.0 && t.tol_frac < 1.0, "{}", t.id);
            assert!(!t.unit.is_empty() && !t.description.is_empty(), "{}", t.id);
        }
    }

    #[test]
    fn accepts_within_tolerance() {
        let t = lookup("table3.dot.mflops").unwrap();
        assert!(t.accepts(557.0));
        assert!(t.accepts(557.0 * 1.149));
        assert!(!t.accepts(557.0 * 1.151));
        assert!((t.delta_frac(557.0 * 1.10) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn gate_counts_failures_and_sets_exit_code() {
        let mut g = ParityGate::new();
        assert!(g.check("fig9.clock.k1", 155.0));
        assert!(g.last_line().starts_with("[PASS]"));
        assert!(!g.check("fig9.clock.k1", 300.0));
        assert!(g.last_line().starts_with("[FAIL]"));
        assert!(g.check_true("structural claim", true));
        assert_eq!(g.checks(), 3);
        assert_eq!(g.failures(), 1);
        assert_eq!(g.exit_code(), 1);
        assert_eq!(ParityGate::new().exit_code(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown paper-tolerance id")]
    fn unknown_id_panics() {
        ParityGate::new().check("no.such.figure", 1.0);
    }
}
