//! Minimal, dependency-free JSON: a value tree, a byte-deterministic
//! writer and a strict recursive-descent parser.
//!
//! The workspace vendors no serialization crates (the build environment is
//! offline), so the observatory hand-rolls its JSON exactly like the
//! probe's trace exporters do — but through a shared value tree so the
//! records can be read back for diffing and trend rendering.
//!
//! Determinism contract: [`Json::render`] emits object members in
//! insertion order, numbers via Rust's shortest-round-trip formatting and
//! no whitespace beyond a fixed indentation scheme. Rendering the same
//! value tree twice yields byte-identical output on every platform; the
//! `BENCH_*.json` byte-stability tests rely on this. Two deliberate
//! number rules keep degenerate metrics from breaking the contract:
//! non-finite values (NaN, ±∞ — e.g. a rate derived from a zero-cycle
//! run) render as `null` instead of panicking, and `-0.0` renders as `0`
//! so the sign of zero can never flip a committed byte.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Stored as `f64`; integral values within `u64` range
    /// render without a fractional part. JSON has no non-finite numbers,
    /// so NaN and ±infinity render as `null` (a defined encoding rather
    /// than a panic), and `-0.0` renders as `0` so byte-determinism can
    /// never depend on the sign of zero.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (order is part of the byte contract).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Append a member to an object (panics on non-objects).
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(members) => members.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Builder-style [`Json::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.set(key, value);
        self
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render on a single line with no whitespace — the JSONL form.
    /// Parses back to the same value as [`Json::render`] output.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Strict: rejects trailing garbage, duplicate
    /// keys are kept as-is (first wins on [`Json::get`]).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Inf. A degenerate measurement (zero-cycle run,
        // zero-second timing) must not panic the writer mid-document, so
        // non-finite numbers get a defined `null` encoding instead.
        out.push_str("null");
    } else if x == 0.0 {
        // Covers -0.0 too: both zeros render as the same byte.
        out.push('0');
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Shortest round-trip representation; deterministic across runs.
        let _ = write!(out, "{x:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: &str) -> Self {
        Self {
            offset,
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(*pos, &format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at(start, &format!("invalid number '{text}'")))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| JsonError::at(*pos, "invalid codepoint"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8"))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

/// Run-length encode a counter vector as `[value, run]` pairs — the
/// compact serialized form shared by the telemetry store's window
/// vectors and the serving store's per-tenant series (steady state
/// produces long constant stretches, so the committed files stay
/// reviewable).
pub fn rle_encode(values: &[u64]) -> Json {
    let mut pairs: Vec<Json> = Vec::new();
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut n = 1u64;
        while i + (n as usize) < values.len() && values[i + n as usize] == v {
            n += 1;
        }
        pairs.push(Json::Arr(vec![Json::Num(v as f64), Json::Num(n as f64)]));
        i += n as usize;
    }
    Json::Arr(pairs)
}

/// Decode `[value, run]` pairs back into a counter vector of exactly
/// `len` entries; `what` names the field in diagnostics.
pub fn rle_decode(json: &Json, len: usize, what: &str) -> Result<Vec<u64>, String> {
    let pairs = json
        .as_arr()
        .ok_or_else(|| format!("{what}: expected an RLE array"))?;
    let mut out = Vec::with_capacity(len);
    for pair in pairs {
        let items = pair
            .as_arr()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| format!("{what}: RLE entries are [value, run] pairs"))?;
        let value = items[0]
            .as_u64()
            .ok_or_else(|| format!("{what}: RLE value is not an integer"))?;
        let run = items[1]
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("{what}: RLE run is not a positive integer"))?;
        for _ in 0..run {
            out.push(value);
        }
    }
    if out.len() != len {
        return Err(format!(
            "{what}: RLE decodes to {} windows, expected {len}",
            out.len()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_round_trips_and_validates() {
        let v = vec![0u64, 0, 0, 5, 5, 1, 0, 0, 0, 0];
        let encoded = rle_encode(&v);
        assert_eq!(rle_decode(&encoded, v.len(), "t").unwrap(), v);
        // Wrong expected length is a hard error, not a silent pad.
        assert!(rle_decode(&encoded, v.len() + 1, "t")
            .unwrap_err()
            .contains("expected"));
        // Empty vectors encode to an empty array.
        assert_eq!(
            rle_decode(&rle_encode(&[]), 0, "t").unwrap(),
            Vec::<u64>::new()
        );
        // Zero-length runs are rejected.
        let bad = Json::Arr(vec![Json::Arr(vec![Json::Num(1.0), Json::Num(0.0)])]);
        assert!(rle_decode(&bad, 1, "t").unwrap_err().contains("positive"));
    }

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj()
            .with("name", Json::Str("dot k=2".into()))
            .with("cycles", Json::Num(1234.0))
            .with("ratio", Json::Num(0.8062))
            .with("ok", Json::Bool(true))
            .with(
                "stalls",
                Json::Arr(vec![Json::Num(0.0), Json::Num(7.0), Json::Null]),
            );
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn rendering_is_deterministic() {
        let mk = || {
            Json::obj()
                .with("a", Json::Num(1e-7))
                .with("b", Json::Num(557.25))
                .with("s", Json::Str("α ≤ 2α²\n\"quoted\"".into()))
        };
        assert_eq!(mk().render(), mk().render());
        // And round-trips through the parser byte-identically.
        let text = mk().render();
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn integers_render_without_fraction() {
        let mut s = String::new();
        write_num(&mut s, 148300000000.0);
        assert_eq!(s, "148300000000");
    }

    #[test]
    fn non_finite_numbers_render_as_null_not_panic() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::obj().with("rate", Json::Num(x));
            let text = doc.render();
            assert_eq!(text, "{\n  \"rate\": null\n}\n", "for {x}");
            // And the document stays parseable (reads back as Null).
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed.get("rate"), Some(&Json::Null));
        }
    }

    #[test]
    fn negative_zero_renders_identically_to_zero() {
        let mut pos = String::new();
        let mut neg = String::new();
        write_num(&mut pos, 0.0);
        write_num(&mut neg, -0.0);
        assert_eq!(pos, "0");
        assert_eq!(neg, pos, "byte-determinism must not depend on sign of zero");
        // Through the full pipeline too.
        assert_eq!(
            Json::obj().with("x", Json::Num(-0.0)).render(),
            Json::obj().with("x", Json::Num(0.0)).render()
        );
    }

    #[test]
    fn extreme_magnitudes_round_trip() {
        for x in [
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            1e15,   // first magnitude past the integer-rendering window
            -1e15,
            1e308,
            -1e-308,
        ] {
            let doc = Json::obj().with("x", Json::Num(x));
            let text = doc.render();
            let parsed = Json::parse(&text).unwrap();
            let y = parsed.get("x").and_then(Json::as_f64).unwrap();
            assert_eq!(y.to_bits(), x.to_bits(), "{x} round-trips exactly");
            // And re-rendering is byte-stable.
            assert_eq!(parsed.render(), text);
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_docs() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::parse("{\"n\": 42, \"s\": \"hi\", \"a\": [1, 2]}").unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(doc.get("missing"), None);
    }
}
