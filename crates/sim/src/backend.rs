//! Execution backends: *what is the result* vs *what does it cost*.
//!
//! Every number in this workspace used to come from one place: the
//! cycle-stepped softfloat datapath. That couples two questions that are
//! separable for fully synchronous, value-independent schedules:
//!
//! 1. **What is the result?** For the streaming BLAS designs the numeric
//!    answer is determined by the operand order the datapath applies —
//!    which is itself a pure function of the schedule, not of simulation.
//! 2. **What does it cost?** Cycle counts, stall attribution and
//!    occupancy histograms depend only on shapes, rates and pipeline
//!    depths — never on the operand *values* (see DESIGN.md §13 for the
//!    value-independence argument).
//!
//! [`ExecBackend`] selects how a [`Harness`](crate::Harness) answers the
//! two questions:
//!
//! * [`ExecBackend::Cycle`] — the classic path: every cycle is stepped
//!   through [`Design::cycle`](crate::Design::cycle). Reference
//!   semantics; always available.
//! * [`ExecBackend::FastForward`] — event-driven fast-forwarding: a
//!   design whose streaming phase is provably quiescent (input rate ≥
//!   consumption rate, reducer never back-pressures) replays the whole
//!   run in a fused loop via
//!   [`Design::fast_forward`](crate::Design::fast_forward), performing
//!   the *same* softfloat arithmetic in the *same* order while
//!   reconstructing probe counters analytically. Bit-identical results
//!   and reports, a fraction of the wall clock.
//! * [`ExecBackend::Native`] — the cost loop runs with zeroed operands
//!   (legal because the schedule is value-independent) and the numeric
//!   answer comes from the `fblas-sw` blocked microkernels, which route
//!   every FLOP through `fblas-fpu` softfloat. Fastest; results are
//!   bit-identical wherever the microkernel applies the datapath's
//!   operand order (always for axpy/scal/col-major `MvM`; for
//!   reduction-based kernels on association-independent data, which is
//!   what every committed workload uses).
//!
//! Fast-forwarding is *declined* — transparently falling back to cycle
//! stepping — whenever its soundness preconditions fail: armed faults,
//! deep (waveform) probes, fractional channel rates below the consume
//! width, or a reducer that can stall.

use std::fmt;
use std::str::FromStr;

/// How a harness executes a design: see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Step every cycle through `Design::cycle` (reference semantics).
    #[default]
    Cycle,
    /// Replay quiescent streaming phases in a fused loop; identical
    /// arithmetic, analytically reconstructed counters.
    FastForward,
    /// Cost loop with zeroed operands; results from the `fblas-sw`
    /// softfloat microkernels.
    Native,
}

impl ExecBackend {
    /// All backends, in the order the CLI documents them.
    pub const ALL: [ExecBackend; 3] = [
        ExecBackend::Cycle,
        ExecBackend::FastForward,
        ExecBackend::Native,
    ];

    /// Whether this backend asks designs to fast-forward quiescent
    /// phases (true for both `FastForward` and `Native` — the native
    /// backend uses the same fused cost loop, minus the arithmetic).
    pub fn fast_forwards(self) -> bool {
        !matches!(self, ExecBackend::Cycle)
    }

    /// Whether numeric results come from the native microkernel instead
    /// of the datapath replay.
    pub fn native_results(self) -> bool {
        matches!(self, ExecBackend::Native)
    }

    /// The canonical CLI spelling (`cycle`, `fast-forward`, `native`).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecBackend::Cycle => "cycle",
            ExecBackend::FastForward => "fast-forward",
            ExecBackend::Native => "native",
        }
    }
}

impl fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ExecBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cycle" => Ok(ExecBackend::Cycle),
            "fast-forward" | "ff" => Ok(ExecBackend::FastForward),
            "native" => Ok(ExecBackend::Native),
            other => Err(format!(
                "unknown backend {other:?} (expected cycle, fast-forward or native)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_strings() {
        for b in ExecBackend::ALL {
            assert_eq!(b.as_str().parse::<ExecBackend>().unwrap(), b);
            assert_eq!(format!("{b}"), b.as_str());
        }
    }

    #[test]
    fn ff_is_an_alias() {
        assert_eq!("ff".parse::<ExecBackend>(), Ok(ExecBackend::FastForward));
    }

    #[test]
    fn unknown_backends_are_diagnosed() {
        let err = "turbo".parse::<ExecBackend>().unwrap_err();
        assert!(err.contains("turbo"), "{err}");
    }

    #[test]
    fn default_is_cycle_and_only_cycle_declines_fast_forward() {
        assert_eq!(ExecBackend::default(), ExecBackend::Cycle);
        assert!(!ExecBackend::Cycle.fast_forwards());
        assert!(ExecBackend::FastForward.fast_forwards());
        assert!(ExecBackend::Native.fast_forwards());
        assert!(ExecBackend::Native.native_results());
        assert!(!ExecBackend::FastForward.native_results());
    }
}
