//! Utilization and event counters shared by the architecture models.

/// Simple event/utilization statistics for a simulated design.
///
/// Architectures record the cycles in which each functional unit did useful
/// work; the report generators turn these into the utilization percentages
/// the paper discusses (e.g. the reduction circuit keeps its single adder
/// nearly fully utilized, the stalling baseline does not).
#[derive(Debug, Clone, Default)]
pub struct Stats {
    cycles: u64,
    busy_cycles: u64,
    events: u64,
}

impl Stats {
    /// Create an empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one cycle; `busy` marks whether useful work was done.
    pub fn record_cycle(&mut self, busy: bool) {
        self.cycles += 1;
        if busy {
            self.busy_cycles += 1;
        }
    }

    /// Record `n` occurrences of a counted event (e.g. flops, words moved).
    pub fn record_events(&mut self, n: u64) {
        self.events += n;
    }

    /// Total cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles in which the unit was busy.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total counted events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Busy fraction in [0, 1]; zero if no cycles observed.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }
}

/// A fixed-bucket histogram of small non-negative samples (buffer
/// occupancies, queue depths).
///
/// Samples at or above the bucket count land in the last bucket, so the
/// histogram never loses mass; [`Histogram::percentile`] then answers
/// questions like "what occupancy covers 99 % of cycles" — how the
/// buffer-sizing claims of the paper translate into observed behaviour.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    samples: u64,
    max_seen: usize,
}

impl Histogram {
    /// Create a histogram with buckets 0..`buckets`−1 plus an overflow
    /// bucket.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets >= 1);
        Self {
            buckets: vec![0; buckets],
            samples: 0,
            max_seen: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: usize) {
        self.record_n(value, 1);
    }

    /// Record `n` samples of the same value at once. Histograms are
    /// order-free, so a fast-forwarding design can batch a whole
    /// steady-state plateau into one call and land on the exact state a
    /// per-cycle [`Histogram::record`] sequence would have produced.
    /// Counts saturate at `u64::MAX` instead of wrapping.
    pub fn record_n(&mut self, value: usize, n: u64) {
        if n == 0 {
            return;
        }
        let idx = value.min(self.buckets.len() - 1);
        self.buckets[idx] = self.buckets[idx].saturating_add(n);
        self.samples = self.samples.saturating_add(n);
        self.max_seen = self.max_seen.max(value);
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Largest sample ever recorded (even if it overflowed the buckets).
    pub fn max_seen(&self) -> usize {
        self.max_seen
    }

    /// Smallest bucket index b such that at least `p` (0..=1) of the
    /// samples are ≤ b. Returns 0 for an empty histogram. Out-of-range
    /// or non-finite `p` is clamped into [0, 1] (NaN behaves as 0), and
    /// `p = 0` answers with the smallest *recorded* bucket, never a
    /// bucket below all data — so a single-sample histogram reports that
    /// sample's bucket at every percentile.
    pub fn percentile(&self, p: f64) -> usize {
        let p = if p > 0.0 { p.min(1.0) } else { 0.0 };
        if self.samples == 0 {
            return 0;
        }
        // At least one sample must be covered: ceil(0·n) = 0 would
        // otherwise return bucket 0 regardless of where the data lives.
        let target = ((p * self.samples as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            acc = acc.saturating_add(count);
            if acc >= target {
                return i;
            }
        }
        self.buckets.len() - 1
    }

    /// Mean of the recorded samples (overflowed samples count at the
    /// last bucket's value). Always non-negative: an empty histogram
    /// reports `0.0`, never `-0.0` or NaN, and the accumulation is done
    /// in 128-bit so saturated bucket counts cannot overflow it.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let sum: u128 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u128 * u128::from(c))
            .sum();
        sum as f64 / self.samples as f64
    }
}

/// Log-bucketed latency histogram (HDR-style): exact counts below 16,
/// then 16 linear sub-buckets per power-of-two octave, giving a bounded
/// ≤ 6.25 % bucket-floor error at any magnitude while staying fully
/// deterministic (integer bucketing, no floating-point in the record
/// path).
///
/// This is the substrate for per-block completion-latency recording
/// (DESIGN.md §14): designs record one sample per completed block /
/// request, and [`LogHistogram::quantiles`] extracts p50/p95/p99/p999 as
/// bucket floors clamped to the observed min/max — exact for
/// single-sample and constant-latency populations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogHistogram {
    counts: Vec<u64>,
    samples: u64,
    min: u64,
    max: u64,
}

/// Values below this many are bucketed exactly (one bucket per value).
const LOG_HIST_LINEAR: u64 = 16;

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of `value` (exact below 16, 16 sub-buckets per
    /// octave above).
    pub fn bucket_index(value: u64) -> usize {
        if value < LOG_HIST_LINEAR {
            value as usize
        } else {
            let e = 63 - u64::from(value.leading_zeros());
            (16 + (e - 4) * 16 + ((value >> (e - 4)) & 15)) as usize
        }
    }

    /// Smallest value that lands in bucket `idx` (the reported
    /// percentile resolution).
    pub fn bucket_floor(idx: usize) -> u64 {
        if idx < 16 {
            idx as u64
        } else {
            let e = 4 + (idx - 16) / 16;
            let sub = ((idx - 16) % 16) as u64;
            (16 + sub) << (e - 4)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` samples of the same value (order-free, so fused
    /// fast-forward replays can batch constant-latency blocks). Counts
    /// saturate instead of wrapping.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket_index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] = self.counts[idx].saturating_add(n);
        if self.samples == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.samples = self.samples.saturating_add(n);
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.samples == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        if self.samples == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.samples = self.samples.saturating_add(other.samples);
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.samples == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.samples == 0 {
            0
        } else {
            self.max
        }
    }

    /// Value covering at least fraction `p` (0..=1) of the samples:
    /// the floor of the covering bucket, clamped to the observed
    /// [min, max]. Returns 0 when empty — callers that must distinguish
    /// "no samples" from "a 0-valued sample" (a serving campaign under
    /// full rejection completes zero requests) use
    /// [`LogHistogram::try_percentile`] instead. Never panics
    /// (non-finite `p` clamps like [`Histogram::percentile`]).
    pub fn percentile(&self, p: f64) -> u64 {
        self.try_percentile(p).unwrap_or(0)
    }

    /// [`LogHistogram::percentile`] with the empty case made explicit:
    /// `None` when no samples were ever recorded, so an empty histogram
    /// can never masquerade as a population of zero-latency requests.
    pub fn try_percentile(&self, p: f64) -> Option<u64> {
        let p = if p > 0.0 { p.min(1.0) } else { 0.0 };
        if self.samples == 0 {
            return None;
        }
        let target = ((p * self.samples as f64).ceil() as u64).max(1);
        Some(self.value_at_rank(target))
    }

    /// Exact integer-rank extraction of (p50, p95, p99, p999) — no
    /// floating-point in the rank computation, so the quadruple is
    /// byte-stable across platforms. Returns `[0; 4]` when empty —
    /// documented sentinel, not a rank; callers that must tell the two
    /// apart use [`LogHistogram::try_quantiles`].
    pub fn quantiles(&self) -> [u64; 4] {
        self.try_quantiles().unwrap_or([0; 4])
    }

    /// [`LogHistogram::quantiles`] with the empty case made explicit:
    /// `None` when the histogram holds no samples. This is the entry
    /// point the serving layer's latency digests use — a tenant whose
    /// every request was rejected has *no* latency population, and its
    /// percentiles must serialize as absent rather than as a bogus
    /// all-zero quadruple.
    pub fn try_quantiles(&self) -> Option<[u64; 4]> {
        if self.samples == 0 {
            return None;
        }
        let n = u128::from(self.samples);
        let rank = |num: u128, den: u128| -> u64 {
            let r = (n * num).div_ceil(den).max(1);
            u64::try_from(r).unwrap_or(u64::MAX)
        };
        Some([
            self.value_at_rank(rank(1, 2)),
            self.value_at_rank(rank(19, 20)),
            self.value_at_rank(rank(99, 100)),
            self.value_at_rank(rank(999, 1000)),
        ])
    }

    /// Bucketed value of the sample at 1-based `rank` (callers guard
    /// `samples > 0`).
    fn value_at_rank(&self, rank: u64) -> u64 {
        let mut acc = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            acc = acc.saturating_add(count);
            if acc >= rank {
                return Self::bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as (index, count) pairs, ascending — the
    /// compact serialized form.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuild a histogram from its serialized parts (bucket pairs plus
    /// the observed extrema). Sample count is the sum of the counts.
    pub fn from_parts(pairs: &[(usize, u64)], min: u64, max: u64) -> Self {
        let mut h = Self::new();
        for &(idx, count) in pairs {
            if count == 0 {
                continue;
            }
            if idx >= h.counts.len() {
                h.counts.resize(idx + 1, 0);
            }
            h.counts[idx] = h.counts[idx].saturating_add(count);
            h.samples = h.samples.saturating_add(count);
        }
        if h.samples > 0 {
            h.min = min;
            h.max = max;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(16);
        for v in [0usize, 1, 1, 2, 2, 2, 3, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.samples(), 10);
        assert_eq!(h.percentile(0.1), 0);
        assert_eq!(h.percentile(0.3), 1);
        assert_eq!(h.percentile(0.6), 2);
        assert_eq!(h.percentile(1.0), 3);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.max_seen(), 3);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(4);
        h.record(100);
        assert_eq!(h.percentile(1.0), 3);
        assert_eq!(h.max_seen(), 100);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(4);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let mut s = Stats::new();
        for i in 0..10 {
            s.record_cycle(i % 2 == 0);
        }
        assert_eq!(s.cycles(), 10);
        assert_eq!(s.busy_cycles(), 5);
        assert!((s.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_zero_utilization() {
        let s = Stats::new();
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn events_accumulate() {
        let mut s = Stats::new();
        s.record_events(3);
        s.record_events(4);
        assert_eq!(s.events(), 7);
    }

    // ---- Histogram edge-case regressions ----

    #[test]
    fn single_sample_percentiles_report_that_sample() {
        let mut h = Histogram::new(16);
        h.record(7);
        // Every percentile — including p = 0 — must land on the one
        // recorded bucket, not bucket 0.
        for p in [0.0, 0.001, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 7, "p = {p}");
        }
    }

    #[test]
    fn empty_histogram_never_panics_or_returns_negative_zero() {
        let h = Histogram::new(8);
        for p in [0.0, 0.5, 1.0, -3.0, 7.0, f64::NAN, f64::INFINITY] {
            assert_eq!(h.percentile(p), 0, "p = {p}");
        }
        let m = h.mean();
        assert_eq!(m, 0.0);
        assert!(m.is_sign_positive(), "mean must not be -0.0");
    }

    #[test]
    fn out_of_range_percentile_arguments_clamp() {
        let mut h = Histogram::new(8);
        h.record(2);
        h.record(5);
        assert_eq!(h.percentile(-1.0), 2);
        assert_eq!(h.percentile(2.0), 5);
        assert_eq!(h.percentile(f64::NAN), 2);
    }

    #[test]
    fn record_n_saturates_instead_of_wrapping() {
        let mut h = Histogram::new(4);
        h.record_n(1, u64::MAX - 1);
        h.record_n(1, 5);
        h.record_n(2, 5);
        assert_eq!(h.samples(), u64::MAX);
        assert_eq!(h.percentile(0.5), 1);
        let m = h.mean();
        assert!(m.is_finite() && m >= 0.0, "mean {m}");
    }

    // ---- LogHistogram ----

    #[test]
    fn log_bucket_index_is_exact_below_16_and_monotone() {
        for v in 0..16u64 {
            assert_eq!(LogHistogram::bucket_index(v), v as usize);
            assert_eq!(LogHistogram::bucket_floor(v as usize), v);
        }
        let mut last = 0;
        for v in [16u64, 17, 31, 32, 33, 100, 1000, 1 << 20, u64::MAX] {
            let idx = LogHistogram::bucket_index(v);
            assert!(idx >= last, "index must not decrease at {v}");
            last = idx;
            let floor = LogHistogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            // ≤ 6.25 % relative bucket error.
            assert!(v - floor <= v / 16, "floor {floor} too far below {v}");
        }
    }

    #[test]
    fn log_histogram_quantiles_exact_for_constant_population() {
        let mut h = LogHistogram::new();
        h.record_n(1063, 500);
        assert_eq!(h.quantiles(), [1063; 4]);
        assert_eq!(h.min(), 1063);
        assert_eq!(h.max(), 1063);
    }

    #[test]
    fn log_histogram_quantiles_spread_population() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let [p50, p95, p99, p999] = h.quantiles();
        // Bucket floors: within one sub-bucket (6.25 %) below the exact rank.
        assert!((468..=500).contains(&p50), "p50 = {p50}");
        assert!((890..=950).contains(&p95), "p95 = {p95}");
        assert!((928..=990).contains(&p99), "p99 = {p99}");
        assert!((937..=1000).contains(&p999), "p999 = {p999}");
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
    }

    #[test]
    fn log_histogram_empty_and_saturation() {
        let h = LogHistogram::new();
        assert_eq!(h.quantiles(), [0; 4]);
        assert_eq!(h.percentile(f64::NAN), 0);
        let mut s = LogHistogram::new();
        s.record_n(3, u64::MAX);
        s.record_n(3, 10);
        assert_eq!(s.samples(), u64::MAX);
        assert_eq!(s.quantiles(), [3; 4]);
    }

    /// Regression (serving-layer call sites): an empty histogram — zero
    /// completed requests under full rejection — must answer `None` from
    /// the `try_*` extractors for every probe, never a fabricated rank.
    /// A pre-fix implementation that computed `ceil(p·0).max(1) = 1` and
    /// walked the (empty) bucket vector would fall through to `self.max`
    /// and report 0 indistinguishably from a real zero-latency sample.
    #[test]
    fn empty_log_histogram_quantiles_are_none_not_a_bogus_rank() {
        let h = LogHistogram::new();
        assert_eq!(h.try_quantiles(), None);
        for p in [0.0, 0.5, 0.99, 1.0, -1.0, 42.0, f64::NAN, f64::INFINITY] {
            assert_eq!(h.try_percentile(p), None, "p = {p}");
        }
        // The sentinel forms stay documented and stable.
        assert_eq!(h.quantiles(), [0; 4]);
        assert_eq!(h.percentile(0.99), 0);
        // And the ambiguity the Option forms resolve: one genuine
        // 0-valued sample answers Some(0), not None.
        let mut z = LogHistogram::new();
        z.record(0);
        assert_eq!(z.try_quantiles(), Some([0; 4]));
        assert_eq!(z.try_percentile(0.5), Some(0));
    }

    #[test]
    fn log_histogram_roundtrips_through_parts() {
        let mut h = LogHistogram::new();
        for v in [1u64, 1, 2, 40, 41, 1000, 65_536] {
            h.record(v);
        }
        let rebuilt = LogHistogram::from_parts(&h.nonzero_buckets(), h.min(), h.max());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.quantiles(), h.quantiles());
    }

    #[test]
    fn log_histogram_merge_matches_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [5u64, 9, 100] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 300] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        let empty = LogHistogram::new();
        let mut c = both.clone();
        c.merge(&empty);
        assert_eq!(c, both);
    }
}
