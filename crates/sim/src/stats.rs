//! Utilization and event counters shared by the architecture models.

/// Simple event/utilization statistics for a simulated design.
///
/// Architectures record the cycles in which each functional unit did useful
/// work; the report generators turn these into the utilization percentages
/// the paper discusses (e.g. the reduction circuit keeps its single adder
/// nearly fully utilized, the stalling baseline does not).
#[derive(Debug, Clone, Default)]
pub struct Stats {
    cycles: u64,
    busy_cycles: u64,
    events: u64,
}

impl Stats {
    /// Create an empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one cycle; `busy` marks whether useful work was done.
    pub fn record_cycle(&mut self, busy: bool) {
        self.cycles += 1;
        if busy {
            self.busy_cycles += 1;
        }
    }

    /// Record `n` occurrences of a counted event (e.g. flops, words moved).
    pub fn record_events(&mut self, n: u64) {
        self.events += n;
    }

    /// Total cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles in which the unit was busy.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total counted events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Busy fraction in [0, 1]; zero if no cycles observed.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }
}

/// A fixed-bucket histogram of small non-negative samples (buffer
/// occupancies, queue depths).
///
/// Samples at or above the bucket count land in the last bucket, so the
/// histogram never loses mass; [`Histogram::percentile`] then answers
/// questions like "what occupancy covers 99 % of cycles" — how the
/// buffer-sizing claims of the paper translate into observed behaviour.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    samples: u64,
    max_seen: usize,
}

impl Histogram {
    /// Create a histogram with buckets 0..`buckets`−1 plus an overflow
    /// bucket.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets >= 1);
        Self {
            buckets: vec![0; buckets],
            samples: 0,
            max_seen: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: usize) {
        self.record_n(value, 1);
    }

    /// Record `n` samples of the same value at once. Histograms are
    /// order-free, so a fast-forwarding design can batch a whole
    /// steady-state plateau into one call and land on the exact state a
    /// per-cycle [`Histogram::record`] sequence would have produced.
    pub fn record_n(&mut self, value: usize, n: u64) {
        if n == 0 {
            return;
        }
        let idx = value.min(self.buckets.len() - 1);
        self.buckets[idx] += n;
        self.samples += n;
        self.max_seen = self.max_seen.max(value);
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Largest sample ever recorded (even if it overflowed the buckets).
    pub fn max_seen(&self) -> usize {
        self.max_seen
    }

    /// Smallest bucket index b such that at least `p` (0..=1) of the
    /// samples are ≤ b. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> usize {
        assert!((0.0..=1.0).contains(&p));
        if self.samples == 0 {
            return 0;
        }
        let target = (p * self.samples as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &count) in self.buckets.iter().enumerate() {
            acc += count;
            if acc >= target {
                return i;
            }
        }
        self.buckets.len() - 1
    }

    /// Mean of the recorded samples (overflowed samples count at the
    /// last bucket's value).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum();
        sum as f64 / self.samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(16);
        for v in [0usize, 1, 1, 2, 2, 2, 3, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.samples(), 10);
        assert_eq!(h.percentile(0.1), 0);
        assert_eq!(h.percentile(0.3), 1);
        assert_eq!(h.percentile(0.6), 2);
        assert_eq!(h.percentile(1.0), 3);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.max_seen(), 3);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(4);
        h.record(100);
        assert_eq!(h.percentile(1.0), 3);
        assert_eq!(h.max_seen(), 100);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(4);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let mut s = Stats::new();
        for i in 0..10 {
            s.record_cycle(i % 2 == 0);
        }
        assert_eq!(s.cycles(), 10);
        assert_eq!(s.busy_cycles(), 5);
        assert!((s.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_zero_utilization() {
        let s = Stats::new();
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn events_accumulate() {
        let mut s = Stats::new();
        s.record_events(3);
        s.record_events(4);
        assert_eq!(s.events(), 7);
    }
}
