//! Channel-graph topology descriptors.
//!
//! Every shipped architecture in this workspace is a synchronous dataflow
//! circuit: processing elements connected by FIFOs, pipeline delay lines
//! and rate-limited memory channels. This module defines the small static
//! IR — [`Topology`], [`Node`], [`Edge`] — that designs export through
//! their `topology()` methods so `fblas-check` can run structural
//! analyses (deadlock-freedom proofs, throughput-bound cuts, composed
//! bandwidth budgets) without simulating a single cycle.
//!
//! The IR is deliberately coarse: one node per architectural unit (a
//! multiplier bank, an adder tree, a reduction circuit), one edge per
//! channel between units. Quantities carried:
//!
//! * a node's **FP issue capacity** (`flops_per_cycle`) — how many
//!   floating-point operations the unit can start per clock, the numerator
//!   of every compute-bound cut;
//! * a node's **initiation interval** — the minimum number of cycles
//!   between successive tokens the unit injects into any feedback loop it
//!   anchors (1 for a fully pipelined unit);
//! * an edge's **kind** — buffering capacity for FIFOs, latency for delay
//!   lines, sustained word rate (and FLOPs unlocked per word) for memory
//!   channels.
//!
//! The analyses themselves live in `fblas-check` (`graph` module); this
//! crate only owns the descriptor types so `fblas-core` designs can
//! export them without a dependency cycle.

use std::fmt;

/// Index of a node within its [`Topology`]. Stable for the lifetime of
/// the topology; produced by [`Topology::node`] and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// What kind of architectural unit a node models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// A memory read port: tokens originate here. Sources have no
    /// compute capacity; their outgoing [`EdgeKind::Channel`] edges carry
    /// the rate.
    Source,
    /// A memory write port: tokens terminate here.
    Sink,
    /// A processing element (or bank of lockstep PEs): carries FP issue
    /// capacity and an initiation interval.
    Pe,
    /// A non-compute junction: a buffer endpoint, router or store that
    /// forwards tokens without issuing FLOPs.
    Junction,
}

/// One architectural unit in a channel graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable unit name, unique within the topology
    /// (e.g. `"mult-bank"`, `"reduction"`).
    pub name: String,
    /// The unit's role.
    pub role: NodeRole,
    /// FP operations the unit can issue per clock (0 for sources, sinks
    /// and junctions).
    pub flops_per_cycle: f64,
    /// Minimum cycles between successive tokens the unit injects into a
    /// feedback loop (1 = fully pipelined).
    pub initiation_interval: u64,
}

/// What kind of channel an edge models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeKind {
    /// A bounded buffer holding up to `depth` tokens; the only edge kind
    /// that contributes storage to a feedback loop's buffering budget.
    Fifo {
        /// Capacity in tokens.
        depth: usize,
    },
    /// A pipeline register chain: tokens spend exactly `stages` cycles in
    /// flight and cannot stall inside the line. Contributes latency to a
    /// loop but no elastic storage.
    Delay {
        /// Latency in cycles.
        stages: usize,
    },
    /// A rate-limited memory channel sustaining `words_per_cycle` tokens
    /// per clock; each delivered word permits `flops_per_word` FP
    /// operations downstream (the I/O side of a throughput cut).
    Channel {
        /// Sustained delivery rate in words per cycle (may be
        /// fractional: a derated shared read path).
        words_per_cycle: f64,
        /// FLOPs the datapath performs per delivered word.
        flops_per_word: f64,
    },
    /// A same-cycle connection with no storage and no latency (lockstep
    /// wiring, credit/back-pressure signals).
    Wire,
}

/// One channel between two units.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Channel name, unique within the topology (e.g. `"backlog"`).
    pub name: String,
    /// Producing node.
    pub from: NodeId,
    /// Consuming node.
    pub to: NodeId,
    /// The channel's kind and quantities.
    pub kind: EdgeKind,
}

/// A static channel graph exported by a design's `topology()` method.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Design-point name (e.g. `"dot[k=2]"`).
    pub name: String,
    /// Units, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// Channels.
    pub edges: Vec<Edge>,
}

impl Topology {
    /// Start an empty topology.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a node with an explicit role/capacity/interval.
    pub fn node(
        &mut self,
        name: impl Into<String>,
        role: NodeRole,
        flops_per_cycle: f64,
        initiation_interval: u64,
    ) -> NodeId {
        assert!(
            initiation_interval >= 1,
            "initiation interval must be >= 1 cycle"
        );
        assert!(
            flops_per_cycle >= 0.0 && flops_per_cycle.is_finite(),
            "flops/cycle must be finite and non-negative"
        );
        let name = name.into();
        assert!(
            self.nodes.iter().all(|n| n.name != name),
            "duplicate node name {name:?}"
        );
        self.nodes.push(Node {
            name,
            role,
            flops_per_cycle,
            initiation_interval,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Add a memory read port.
    pub fn source(&mut self, name: impl Into<String>) -> NodeId {
        self.node(name, NodeRole::Source, 0.0, 1)
    }

    /// Add a memory write port.
    pub fn sink(&mut self, name: impl Into<String>) -> NodeId {
        self.node(name, NodeRole::Sink, 0.0, 1)
    }

    /// Add a fully pipelined PE (initiation interval 1).
    pub fn pe(&mut self, name: impl Into<String>, flops_per_cycle: f64) -> NodeId {
        self.node(name, NodeRole::Pe, flops_per_cycle, 1)
    }

    /// Add a non-compute junction.
    pub fn junction(&mut self, name: impl Into<String>) -> NodeId {
        self.node(name, NodeRole::Junction, 0.0, 1)
    }

    /// Connect two nodes with a channel of the given kind.
    pub fn edge(&mut self, name: impl Into<String>, from: NodeId, to: NodeId, kind: EdgeKind) {
        assert!(from.0 < self.nodes.len(), "edge from unknown node");
        assert!(to.0 < self.nodes.len(), "edge to unknown node");
        if let EdgeKind::Channel {
            words_per_cycle,
            flops_per_word,
        } = kind
        {
            assert!(
                words_per_cycle > 0.0 && words_per_cycle.is_finite(),
                "channel rate must be positive and finite"
            );
            assert!(
                flops_per_word >= 0.0 && flops_per_word.is_finite(),
                "channel flops/word must be finite and non-negative"
            );
        }
        let name = name.into();
        assert!(
            self.edges.iter().all(|e| e.name != name),
            "duplicate edge name {name:?}"
        );
        self.edges.push(Edge {
            name,
            from,
            to,
            kind,
        });
    }

    /// Total FP issue capacity across all nodes (the compute side of a
    /// steady-state throughput cut), in FLOPs per cycle.
    pub fn compute_flops_per_cycle(&self) -> f64 {
        self.nodes.iter().map(|n| n.flops_per_cycle).sum()
    }

    /// Aggregate FLOPs-per-cycle permitted by the input channels: the sum
    /// over every [`EdgeKind::Channel`] edge leaving a [`NodeRole::Source`]
    /// node of `words_per_cycle · flops_per_word` (the I/O side of a
    /// steady-state throughput cut).
    pub fn input_flops_per_cycle(&self) -> f64 {
        self.edges
            .iter()
            .filter(|e| self.nodes[e.from.0].role == NodeRole::Source)
            .filter_map(|e| match e.kind {
                EdgeKind::Channel {
                    words_per_cycle,
                    flops_per_word,
                } => Some(words_per_cycle * flops_per_word),
                _ => None,
            })
            .sum()
    }

    /// Aggregate words per cycle drawn from memory by all source
    /// channels — the demand side of a composed-bandwidth budget.
    pub fn input_words_per_cycle(&self) -> f64 {
        self.edges
            .iter()
            .filter(|e| self.nodes[e.from.0].role == NodeRole::Source)
            .filter_map(|e| match e.kind {
                EdgeKind::Channel {
                    words_per_cycle, ..
                } => Some(words_per_cycle),
                _ => None,
            })
            .sum()
    }

    /// Aggregate words per cycle written to memory by channels entering
    /// sink nodes.
    pub fn output_words_per_cycle(&self) -> f64 {
        self.edges
            .iter()
            .filter(|e| self.nodes[e.to.0].role == NodeRole::Sink)
            .filter_map(|e| match e.kind {
                EdgeKind::Channel {
                    words_per_cycle, ..
                } => Some(words_per_cycle),
                _ => None,
            })
            .sum()
    }

    /// Compose this topology with a downstream one by merging the node
    /// and edge sets and wiring `from_sink` (a sink of `self`) to
    /// `to_source` (a source of `other`) through `link`: the streaming
    /// composition ROADMAP item 5 targets, where one kernel's output
    /// channel feeds the next kernel's input without a memory round-trip.
    ///
    /// The bridged sink and source become junctions (the words no longer
    /// touch memory), so the composed graph's memory budget counts only
    /// the truly external channels.
    ///
    /// # Panics
    /// Panics if `from_sink` is not a sink of `self` or `to_source` is
    /// not a source of `other`.
    pub fn chain(
        mut self,
        other: &Topology,
        from_sink: &str,
        to_source: &str,
        link: EdgeKind,
    ) -> Self {
        let tail = self
            .nodes
            .iter()
            .position(|n| n.name == from_sink && n.role == NodeRole::Sink)
            .unwrap_or_else(|| panic!("{from_sink:?} is not a sink of {}", self.name));
        let offset = self.nodes.len();
        let head_local = other
            .nodes
            .iter()
            .position(|n| n.name == to_source && n.role == NodeRole::Source)
            .unwrap_or_else(|| panic!("{to_source:?} is not a source of {}", other.name));
        for n in &other.nodes {
            let mut n = n.clone();
            n.name = format!("{}/{}", other.name, n.name);
            self.nodes.push(n);
        }
        for e in &other.edges {
            self.edges.push(Edge {
                name: format!("{}/{}", other.name, e.name),
                from: NodeId(e.from.0 + offset),
                to: NodeId(e.to.0 + offset),
                kind: e.kind,
            });
        }
        // The bridged endpoints stop being memory ports.
        self.nodes[tail].role = NodeRole::Junction;
        self.nodes[head_local + offset].role = NodeRole::Junction;
        let link_name = format!("link:{from_sink}->{to_source}");
        self.edge(link_name, NodeId(tail), NodeId(head_local + offset), link);
        self.name = format!("{}+{}", self.name, other.name);
        self
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} nodes, {} edges",
            self.name,
            self.nodes.len(),
            self.edges.len()
        )?;
        for e in &self.edges {
            writeln!(
                f,
                "  {} -[{}]-> {}",
                self.nodes[e.from.0].name, e.name, self.nodes[e.to.0].name
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        let mut t = Topology::new("tiny");
        let src = t.source("in");
        let pe = t.pe("mult", 2.0);
        let snk = t.sink("out");
        t.edge(
            "feed",
            src,
            pe,
            EdgeKind::Channel {
                words_per_cycle: 2.0,
                flops_per_word: 1.0,
            },
        );
        t.edge(
            "emit",
            pe,
            snk,
            EdgeKind::Channel {
                words_per_cycle: 1.0,
                flops_per_word: 0.0,
            },
        );
        t
    }

    #[test]
    fn cut_quantities() {
        let t = tiny();
        assert_eq!(t.compute_flops_per_cycle(), 2.0);
        assert_eq!(t.input_flops_per_cycle(), 2.0);
        assert_eq!(t.input_words_per_cycle(), 2.0);
        assert_eq!(t.output_words_per_cycle(), 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_node_rejected() {
        let mut t = Topology::new("dup");
        t.source("a");
        t.source("a");
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_interval_rejected() {
        let mut t = Topology::new("ii");
        t.node("x", NodeRole::Pe, 1.0, 0);
    }

    #[test]
    fn chain_bridges_sink_to_source() {
        let a = tiny();
        let mut b = Topology::new("next");
        let src = b.source("in");
        let pe = b.pe("add", 1.0);
        let snk = b.sink("out");
        b.edge(
            "feed",
            src,
            pe,
            EdgeKind::Channel {
                words_per_cycle: 1.0,
                flops_per_word: 1.0,
            },
        );
        b.edge(
            "emit",
            pe,
            snk,
            EdgeKind::Channel {
                words_per_cycle: 1.0,
                flops_per_word: 0.0,
            },
        );
        let c = a.chain(&b, "out", "in", EdgeKind::Fifo { depth: 4 });
        assert_eq!(c.name, "tiny+next");
        // Only the outer source still counts toward the memory budget:
        // the bridged sink/source pair became junctions.
        assert_eq!(c.input_words_per_cycle(), 2.0);
        assert_eq!(c.output_words_per_cycle(), 1.0);
        assert_eq!(c.compute_flops_per_cycle(), 3.0);
    }
}
