//! The shared run engine: one loop, one watchdog, one report assembler.
//!
//! Every architecture in the workspace implements [`Design`] — a
//! setup → stream → drain lifecycle over its synchronous components —
//! and is executed by [`Harness::run`], which owns the cycle loop that
//! the designs used to hand-roll: the cycle counter, the hard cycle
//! limit, the livelock watchdog and the final
//! [`SimReport`](crate::SimReport) assembly from
//! [`Probe`](crate::Probe) counters.
//!
//! The contract mirrors the old per-design loops exactly, so ported
//! designs keep their cycle counts bit-for-bit: each loop iteration
//! first increments the cycle counter, asserts it is below
//! [`Design::cycle_limit`], then runs [`Design::cycle`] once.

use crate::backend::ExecBackend;
use crate::fault::{ArmedFaults, FaultLog, FaultSpec};
use crate::probe::Probe;
use crate::SimReport;

/// Cycles without forward progress after which [`Harness::run`] declares
/// a livelock. Generous: the deepest legitimate stall in these models is
/// a pipeline drain plus a reduction-buffer sweep, far below this.
pub const LIVELOCK_WINDOW: u64 = 100_000;

/// A simulated architecture with a setup → stream → drain lifecycle.
///
/// One call to [`Design::cycle`] advances every component of the design
/// by one clock; the design reports what the cycle did through the
/// [`Probe`]. Composite designs tick their sub-components in dataflow
/// order within `cycle`, exactly as [`Component`]-style models composed
/// their `tick`s.
///
/// [`Component`]: crate#components
pub trait Design {
    /// Short name for diagnostics and traces (e.g. `"dot"`).
    fn name(&self) -> &str;

    /// One-time initialisation before the first cycle: register probe
    /// components, pre-load local stores, account setup I/O.
    fn setup(&mut self, _probe: &mut Probe) {}

    /// Advance the design by one clock cycle.
    fn cycle(&mut self, probe: &mut Probe);

    /// True once every output has been produced (pipelines drained).
    fn done(&self) -> bool;

    /// Hook after the last cycle: flush results, account trailing I/O.
    fn drain(&mut self, _probe: &mut Probe) {}

    /// Hard cycle budget; exceeding it is a scheduling bug (a design
    /// that claims a latency bound must meet it).
    fn cycle_limit(&self) -> u64;

    /// A monotone counter of useful work (words consumed, results
    /// emitted, …), if the design tracks one. The harness watchdog
    /// watches it: a design whose clock advances while its progress
    /// counter stays frozen for [`LIVELOCK_WINDOW`] cycles is live-locked
    /// (stuck back-pressure, a lost token, a wedged handshake) and the
    /// run panics with a diagnosis — naming the most recently stalled
    /// component and its stall cause from probe data — distinct from the
    /// cycle-limit overrun.
    fn progress(&self) -> Option<u64> {
        None
    }

    /// Land a scheduled fault on this design's state.
    ///
    /// Called by the harness only while a fault schedule is armed (see
    /// [`Harness::arm_faults`]), at the top of the cycle the fault is due,
    /// before the design's combinational logic runs. Implementations map
    /// the spec onto one of their components via the `fault_*` hooks
    /// (`Fifo::fault_mutate`, `DelayLine::fault_mutate`, …) and return
    /// whether the fault found an occupied target; `false` means the
    /// fault was architecturally masked (bubble, empty buffer, or a site
    /// this design does not model). The default supports no injection.
    fn inject(&mut self, _fault: &FaultSpec) -> bool {
        false
    }

    /// Replay this design's run in a fused loop, skipping the
    /// cycle-stepped machinery (see [`ExecBackend`] and DESIGN.md §13).
    ///
    /// Called by the harness **once, at run start** (after
    /// [`Design::setup`], before the first [`Design::cycle`]) and only
    /// when the harness backend fast-forwards, no fault schedule is
    /// armed, and the probe is in summary mode. Implementations either:
    ///
    /// * return `0` to *decline* — the harness falls back to cycle
    ///   stepping with no observable difference (the default, and the
    ///   required answer whenever a soundness precondition fails, e.g. a
    ///   channel rate below the consume width or a reducer that can
    ///   stall); or
    /// * execute the **entire run** — identical softfloat arithmetic in
    ///   identical order (or zeroed operands under
    ///   [`ExecBackend::Native`]), identical per-cycle probe samples,
    ///   bulk-reconstructed busy/stall/flop/io counters — leaving
    ///   [`Design::done`] true, and return the number of cycles the run
    ///   took. A partial fast-forward is not allowed: the fused loop
    ///   bypasses the design's channels and pipelines, so resuming
    ///   `cycle()` mid-run would observe inconsistent state.
    fn fast_forward(&mut self, _probe: &mut Probe, _backend: ExecBackend) -> u64 {
        0
    }
}

/// Drives a [`Design`] to completion and assembles its [`SimReport`].
///
/// A harness owns a [`Probe`]; several designs can be run back-to-back
/// through the same harness (blocked drivers, traced multi-design
/// sessions) and each run reports only its own deltas while the probe
/// accumulates one continuous timeline.
///
/// A harness is `Send` (pinned by a compile-time assertion below): the
/// bench worker pool gives each worker its own harness, and nothing in
/// the harness or probe may ever grow interior shared state (`Rc`, raw
/// pointers, thread-local handles) that would make moving it across
/// threads unsound. Designs scheduled onto the pool must be `Send` for
/// the same reason — the pool's job type enforces that bound.
#[derive(Debug, Default)]
pub struct Harness {
    probe: Probe,
    /// Armed fault schedule, if any. `None` (the default) keeps the run
    /// loop on the zero-cost path: one `Option` test per cycle.
    faults: Option<ArmedFaults>,
    /// How runs execute: cycle-stepped (default), fast-forwarded, or
    /// native-microkernel results over the fast-forward cost loop.
    backend: ExecBackend,
    /// Cycles skipped past the cycle-stepper by `Design::fast_forward`,
    /// cumulative across runs (the wallclock sidecar reports per-run
    /// deltas the same way it reports stall deltas).
    ff_cycles: u64,
}

/// Compile-time audit: the simulation stack owns all of its state, so
/// harnesses (and the probes and reports they produce) can move to pool
/// workers. If a future field breaks this, the build fails here rather
/// than in a downstream crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Harness>();
    assert_send::<Probe>();
    assert_send::<SimReport>();
};

impl Harness {
    /// A harness with a summary-mode probe (the default for `run()`
    /// entry points).
    pub fn new() -> Self {
        Self::with_probe(Probe::new())
    }

    /// A harness recording deep traces (waveforms + trace events).
    pub fn deep() -> Self {
        Self::with_probe(Probe::deep())
    }

    /// A harness over a caller-constructed probe.
    pub fn with_probe(probe: Probe) -> Self {
        Self {
            probe,
            faults: None,
            backend: ExecBackend::Cycle,
            ff_cycles: 0,
        }
    }

    /// A summary-probe harness running on `backend`.
    pub fn with_backend(backend: ExecBackend) -> Self {
        let mut h = Self::new();
        h.backend = backend;
        h
    }

    /// Select the execution backend for subsequent runs.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.backend = backend;
    }

    /// The execution backend subsequent runs will use.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Whether a fault schedule is currently armed. Fault injection and
    /// fast-forwarding are mutually exclusive: an armed harness always
    /// cycle-steps (and native result substitution must not be applied,
    /// or injected faults would be silently healed).
    pub fn faults_armed(&self) -> bool {
        self.faults.is_some()
    }

    /// Cycles skipped past the cycle-stepper by fast-forwarding,
    /// cumulative across this harness's runs (0 under the cycle
    /// backend). Snapshot around a run for the per-run delta.
    pub fn ff_cycles(&self) -> u64 {
        self.ff_cycles
    }

    /// Arm a fault schedule: every subsequent [`Harness::run`] delivers
    /// due [`FaultSpec`]s to the design's [`Design::inject`] at the top
    /// of the scheduled cycle. The cycle counter is cumulative across
    /// runs from this call until [`Harness::disarm_faults`], so designs
    /// that execute as several back-to-back runs (blocked drivers) see
    /// one continuous fault timeline.
    pub fn arm_faults(&mut self, schedule: Vec<FaultSpec>) {
        self.faults = Some(ArmedFaults::new(schedule));
    }

    /// Disarm the fault schedule, returning its delivery log (`None` if
    /// nothing was armed).
    pub fn disarm_faults(&mut self) -> Option<FaultLog> {
        self.faults.take().map(|armed| armed.log())
    }

    /// The delivery log of the currently armed schedule, if any.
    pub fn fault_log(&self) -> Option<FaultLog> {
        self.faults.as_ref().map(ArmedFaults::log)
    }

    /// Enable windowed telemetry on this harness's probe: every
    /// subsequent run seals one [`TelemSeries`](crate::TelemSeries),
    /// drained via [`Probe::take_telemetry`]. See DESIGN.md §14.
    pub fn enable_telemetry(&mut self, window: u64) {
        self.probe.enable_telemetry(window);
    }

    /// Drain the telemetry series sealed by runs since the last call.
    pub fn take_telemetry(&mut self) -> Vec<crate::TelemSeries> {
        self.probe.take_telemetry()
    }

    /// The probe (for queries after a run).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Mutable access to the probe (to pre-register components).
    pub fn probe_mut(&mut self) -> &mut Probe {
        &mut self.probe
    }

    /// Consume the harness, yielding the probe and its recordings.
    pub fn into_probe(self) -> Probe {
        self.probe
    }

    /// Run `design` to completion.
    ///
    /// Returns the report of this run alone (cycles, FP issues, I/O
    /// words, busy cycles), derived from probe counters.
    ///
    /// # Panics
    /// * if the cycle counter reaches [`Design::cycle_limit`] — the
    ///   message names the design and contains `"cycle limit"`;
    /// * if [`Design::progress`] reports a counter and it stays frozen
    ///   for [`LIVELOCK_WINDOW`] consecutive cycles — the message starts
    ///   with `"livelock: no forward progress"` and appends the probe's
    ///   stall diagnosis.
    pub fn run<D: Design + ?Sized>(&mut self, design: &mut D) -> SimReport {
        let mark = self.probe.mark();
        design.setup(&mut self.probe);
        let limit = design.cycle_limit();
        let mut cycles: u64 = 0;
        // One fast-forward attempt, at run start only: the fused replay
        // either executes the whole run (returning its cycle count) or
        // declines with 0 and the stepper below runs untouched. Armed
        // faults and deep probes force the reference path — faults need
        // per-cycle inject dispatch, waveforms need per-cycle samples of
        // components the fused loop bypasses.
        if self.backend.fast_forwards() && self.faults.is_none() && !self.probe.is_deep() {
            let skipped = design.fast_forward(&mut self.probe, self.backend);
            if skipped > 0 {
                assert!(
                    skipped < limit,
                    "{}: simulation exceeded cycle limit {limit}",
                    design.name()
                );
                assert!(
                    design.done(),
                    "{}: fast_forward returned {skipped} cycles without completing the run",
                    design.name()
                );
                cycles = skipped;
                self.ff_cycles += skipped;
            }
        }
        let mut last_progress = design.progress();
        let mut stuck_since: u64 = cycles;
        while !design.done() {
            cycles += 1;
            assert!(
                cycles < limit,
                "{}: simulation exceeded cycle limit {limit}",
                design.name()
            );
            self.probe.begin_cycle(cycles);
            if let Some(armed) = self.faults.as_mut() {
                armed.begin_cycle();
                while let Some(spec) = armed.pop_due() {
                    let landed = design.inject(&spec);
                    armed.record(landed);
                }
            }
            design.cycle(&mut self.probe);
            self.probe.end_cycle();
            let progress = design.progress();
            if progress != last_progress {
                last_progress = progress;
                stuck_since = cycles;
            } else if progress.is_some() {
                assert!(
                    cycles - stuck_since < LIVELOCK_WINDOW,
                    "livelock: no forward progress in '{}' for {LIVELOCK_WINDOW} cycles \
                     (progress counter stuck at {:?} since cycle {stuck_since}); {}",
                    design.name(),
                    progress.unwrap_or(0),
                    self.probe.stall_diagnosis()
                );
            }
        }
        design.drain(&mut self.probe);
        let report = self.probe.report_since(&mark, cycles);
        self.probe.finish_run(cycles);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::StallCause;

    /// Counts up to a target, marking every cycle busy.
    struct Counter {
        n: u64,
        target: u64,
        limit: u64,
    }
    impl Design for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn cycle(&mut self, probe: &mut Probe) {
            self.n += 1;
            probe.flops(1);
        }
        fn done(&self) -> bool {
            self.n >= self.target
        }
        fn cycle_limit(&self) -> u64 {
            self.limit
        }
    }

    #[test]
    fn run_counts_cycles_and_builds_report() {
        let mut h = Harness::new();
        let r = h.run(&mut Counter {
            n: 0,
            target: 42,
            limit: 100,
        });
        assert_eq!(r.cycles, 42);
        assert_eq!(r.flops, 42);
        assert_eq!(r.busy_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "cycle limit")]
    fn run_enforces_limit() {
        let mut h = Harness::new();
        h.run(&mut Counter {
            n: 0,
            target: u64::MAX,
            limit: 10,
        });
    }

    /// Ticks forever but stops making progress after `stall_at` items.
    struct Staller {
        n: u64,
        items: u64,
        stall_at: u64,
    }
    impl Design for Staller {
        fn name(&self) -> &str {
            "staller"
        }
        fn setup(&mut self, probe: &mut Probe) {
            probe.component("staller/feed");
        }
        fn cycle(&mut self, probe: &mut Probe) {
            self.n += 1;
            if self.items < self.stall_at {
                self.items += 1;
            } else {
                let id = probe.component("staller/feed");
                probe.stall(id, StallCause::OutputBackpressured);
            }
        }
        fn done(&self) -> bool {
            false
        }
        fn cycle_limit(&self) -> u64 {
            10 * LIVELOCK_WINDOW
        }
        fn progress(&self) -> Option<u64> {
            Some(self.items)
        }
    }

    #[test]
    fn livelock_fires_before_cycle_limit_and_names_the_component() {
        let res = std::panic::catch_unwind(|| {
            let mut h = Harness::new();
            h.run(&mut Staller {
                n: 0,
                items: 0,
                stall_at: 7,
            });
        });
        let err = res.expect_err("must livelock");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_else(|| {
            err.downcast_ref::<&str>()
                .map(std::string::ToString::to_string)
                .unwrap()
        });
        assert!(msg.contains("livelock: no forward progress"), "{msg}");
        assert!(msg.contains("staller/feed"), "{msg}");
        assert!(msg.contains("output-backpressured"), "{msg}");
    }

    #[test]
    fn slow_but_live_progress_is_not_a_livelock() {
        struct Slow {
            n: u64,
        }
        impl Design for Slow {
            fn name(&self) -> &str {
                "slow"
            }
            fn cycle(&mut self, _probe: &mut Probe) {
                self.n += 1;
            }
            fn done(&self) -> bool {
                self.n >= 3 * LIVELOCK_WINDOW
            }
            fn cycle_limit(&self) -> u64 {
                4 * LIVELOCK_WINDOW
            }
            fn progress(&self) -> Option<u64> {
                // One unit of work just inside every watchdog window.
                Some(self.n / (LIVELOCK_WINDOW - 1))
            }
        }
        let r = Harness::new().run(&mut Slow { n: 0 });
        assert_eq!(r.cycles, 3 * LIVELOCK_WINDOW);
    }

    #[test]
    fn designs_without_progress_tracking_skip_the_watchdog() {
        struct NoProgress {
            n: u64,
        }
        impl Design for NoProgress {
            fn name(&self) -> &str {
                "noprogress"
            }
            fn cycle(&mut self, _probe: &mut Probe) {
                self.n += 1;
            }
            fn done(&self) -> bool {
                self.n >= LIVELOCK_WINDOW + 10
            }
            fn cycle_limit(&self) -> u64 {
                2 * LIVELOCK_WINDOW
            }
        }
        let r = Harness::new().run(&mut NoProgress { n: 0 });
        assert_eq!(r.cycles, LIVELOCK_WINDOW + 10);
    }

    #[test]
    fn sequential_runs_report_their_own_deltas() {
        let mut h = Harness::new();
        let r1 = h.run(&mut Counter {
            n: 0,
            target: 10,
            limit: 100,
        });
        let r2 = h.run(&mut Counter {
            n: 0,
            target: 25,
            limit: 100,
        });
        assert_eq!(r1.cycles, 10);
        assert_eq!(r1.flops, 10);
        assert_eq!(r2.cycles, 25);
        assert_eq!(r2.flops, 25);
    }

    /// A design with one injectable register: accumulates cycle numbers
    /// into `acc`, and `inject` adds a marker value so fault delivery is
    /// observable and cycle-exact.
    struct Injectable {
        n: u64,
        target: u64,
        acc: u64,
        hits: Vec<u64>,
        support_injection: bool,
    }
    impl Design for Injectable {
        fn name(&self) -> &str {
            "injectable"
        }
        fn cycle(&mut self, _probe: &mut Probe) {
            self.n += 1;
            self.acc += self.n;
        }
        fn done(&self) -> bool {
            self.n >= self.target
        }
        fn cycle_limit(&self) -> u64 {
            1000
        }
        fn inject(&mut self, fault: &crate::FaultSpec) -> bool {
            if !self.support_injection {
                return false;
            }
            // Delivered before this cycle's logic: self.n is the
            // previous cycle, so the fault cycle is n + 1.
            self.hits.push(self.n + 1);
            self.acc ^= 1 << 40;
            let _ = fault;
            true
        }
    }

    #[test]
    fn armed_faults_are_delivered_on_their_scheduled_cycle() {
        let mut h = Harness::new();
        h.arm_faults(vec![
            crate::FaultSpec {
                cycle: 3,
                kind: crate::FaultKind::BufferBitFlip { slot: 0, bit: 1 },
            },
            crate::FaultSpec {
                cycle: 7,
                kind: crate::FaultKind::ChannelStall { beats: 2 },
            },
        ]);
        let mut d = Injectable {
            n: 0,
            target: 10,
            acc: 0,
            hits: Vec::new(),
            support_injection: true,
        };
        h.run(&mut d);
        assert_eq!(d.hits, vec![3, 7]);
        let log = h.disarm_faults().expect("was armed");
        assert_eq!(log.applied, 2);
        assert_eq!(log.missed, 0);
        assert_eq!(log.pending, 0);
        assert_eq!(log.cycles, 10);
        assert!(h.disarm_faults().is_none(), "disarm is one-shot");
    }

    #[test]
    fn fault_cycle_counter_is_cumulative_across_runs() {
        let mut h = Harness::new();
        h.arm_faults(vec![crate::FaultSpec {
            cycle: 15,
            kind: crate::FaultKind::PipelineBitFlip { stage: 0, bit: 0 },
        }]);
        let mk = || Injectable {
            n: 0,
            target: 10,
            acc: 0,
            hits: Vec::new(),
            support_injection: true,
        };
        let mut first = mk();
        h.run(&mut first);
        assert!(first.hits.is_empty(), "due at 15, first run ends at 10");
        let mut second = mk();
        h.run(&mut second);
        // Cycle 15 of the armed timeline is cycle 5 of the second run.
        assert_eq!(second.hits, vec![5]);
        assert_eq!(h.fault_log().unwrap().applied, 1);
    }

    #[test]
    fn unsupported_designs_mask_faults_into_the_log() {
        let mut h = Harness::new();
        h.arm_faults(vec![crate::FaultSpec {
            cycle: 2,
            kind: crate::FaultKind::StuckAtZero { slot: 0, bit: 0 },
        }]);
        let mut d = Injectable {
            n: 0,
            target: 5,
            acc: 0,
            hits: Vec::new(),
            support_injection: false,
        };
        h.run(&mut d);
        let log = h.disarm_faults().unwrap();
        assert_eq!(log.applied, 0);
        assert_eq!(log.missed, 1);
    }

    /// Probe-neutrality analogue for the fault layer: a harness that was
    /// never armed — and one that was armed with an *empty* schedule —
    /// produces bit-identical design state and reports.
    #[test]
    fn disarmed_and_empty_schedules_leave_runs_bit_identical() {
        let run_with = |arm: Option<Vec<crate::FaultSpec>>| {
            let mut h = Harness::new();
            if let Some(schedule) = arm {
                h.arm_faults(schedule);
            }
            let mut d = Injectable {
                n: 0,
                target: 50,
                acc: 0,
                hits: Vec::new(),
                support_injection: true,
            };
            let report = h.run(&mut d);
            (d.acc, report)
        };
        let (acc_plain, rep_plain) = run_with(None);
        let (acc_empty, rep_empty) = run_with(Some(Vec::new()));
        assert_eq!(acc_plain, acc_empty);
        assert_eq!(rep_plain, rep_empty);
    }

    #[test]
    fn deep_and_summary_probes_produce_identical_reports() {
        let mut summary = Harness::new();
        let mut deep = Harness::deep();
        let mk = || Counter {
            n: 0,
            target: 33,
            limit: 100,
        };
        assert_eq!(summary.run(&mut mk()), deep.run(&mut mk()));
    }
}
