//! Cycle-scheduled fault injection: the SEU model for the reliability
//! subsystem (`fblas-faults`).
//!
//! The paper's library runs on SRAM-based FPGA fabric, which is
//! susceptible to single-event upsets: a flipped configuration or user
//! register bit silently corrupts the datapath. This module provides the
//! *delivery* half of the fault model — a deterministic schedule of
//! [`FaultSpec`]s armed on a [`Harness`](crate::Harness) — while the
//! architecture-specific *landing sites* are chosen by each design's
//! [`Design::inject`](crate::Design::inject) implementation (a bit of a
//! pipeline register, a FIFO slot, a memory-channel beat, a
//! reduction-buffer word).
//!
//! Determinism contract: a schedule is an explicit list of
//! `(cycle, kind)` pairs, the cycle counter counts harness cycles
//! *cumulatively since arming* (so multi-run designs like the blocked
//! matrix multiplier see one continuous timeline), and nothing here reads
//! a clock or a global RNG. The disarmed path is a single `Option` test
//! per cycle and is covered by a probe-neutrality-style test: byte
//! outputs with a disarmed harness equal those of a plain harness.

/// What to corrupt when a scheduled fault fires.
///
/// The interpretation of `stage`/`slot` is design-relative: each
/// [`Design::inject`](crate::Design::inject) implementation maps the
/// index onto one of its own components (reducing it modulo the
/// component's size), so any index is valid for any design and a seeded
/// campaign can draw indices without knowing design internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of a value in flight inside a pipelined unit
    /// (FPU pipeline register upset).
    PipelineBitFlip {
        /// Pipeline stage to target (reduced modulo the pipeline depth).
        stage: usize,
        /// Bit index into the IEEE-754 binary64 word (reduced modulo 64).
        bit: u32,
    },
    /// Flip one bit of a buffered value (FIFO slot / local-store upset).
    BufferBitFlip {
        /// Buffer slot to target (reduced modulo the occupancy).
        slot: usize,
        /// Bit index into the binary64 word (reduced modulo 64).
        bit: u32,
    },
    /// Suppress a memory channel's deliveries for `beats` cycles
    /// (transient link degradation / dropped beats).
    ChannelStall {
        /// Number of cycles during which reads are denied.
        beats: u64,
    },
    /// Force one bit of a reduction-circuit state word to zero
    /// (stuck-at-0 on a buffer cell).
    StuckAtZero {
        /// Which buffered word to target (reduced modulo the occupancy).
        slot: usize,
        /// Bit index forced to zero (reduced modulo 64).
        bit: u32,
    },
}

impl FaultKind {
    /// Stable name used in campaign records and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::PipelineBitFlip { .. } => "pipeline-bit-flip",
            FaultKind::BufferBitFlip { .. } => "buffer-bit-flip",
            FaultKind::ChannelStall { .. } => "channel-stall",
            FaultKind::StuckAtZero { .. } => "stuck-at-zero",
        }
    }
}

/// One scheduled fault: at harness cycle `cycle` (counted cumulatively
/// since the schedule was armed), deliver `kind` to the running design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Harness cycle (1-based, cumulative since arming) at which the
    /// fault is delivered. A fault scheduled for a cycle that has already
    /// passed fires immediately on the next cycle.
    pub cycle: u64,
    /// What to corrupt.
    pub kind: FaultKind,
}

/// Outcome counters of an armed schedule, returned on disarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultLog {
    /// Faults the design reported as landed (its `inject` returned true).
    pub applied: u64,
    /// Faults that found no occupied target (injected into a bubble, an
    /// empty buffer, or an unsupported site) — architecturally masked.
    pub missed: u64,
    /// Faults still pending when the schedule was disarmed (scheduled
    /// beyond the last simulated cycle).
    pub pending: u64,
    /// Harness cycles elapsed while armed.
    pub cycles: u64,
}

/// An armed fault schedule carried by a [`Harness`](crate::Harness).
///
/// The harness delivers due faults at the top of every cycle, *before*
/// the design's combinational logic runs, so a fault scheduled for cycle
/// `c` corrupts the state that cycle `c` computes with.
#[derive(Debug, Clone)]
pub struct ArmedFaults {
    /// Schedule sorted by cycle (stable, so same-cycle faults keep their
    /// submission order).
    schedule: Vec<FaultSpec>,
    next: usize,
    cycle: u64,
    applied: u64,
    missed: u64,
}

impl ArmedFaults {
    /// Arm a schedule. The specs are sorted by cycle (stable).
    pub fn new(mut schedule: Vec<FaultSpec>) -> Self {
        schedule.sort_by_key(|s| s.cycle);
        Self {
            schedule,
            next: 0,
            cycle: 0,
            applied: 0,
            missed: 0,
        }
    }

    /// Advance the cumulative cycle counter (called once per harness
    /// cycle while armed).
    pub(crate) fn begin_cycle(&mut self) {
        self.cycle += 1;
    }

    /// The next fault due at (or before) the current cycle, consuming it.
    pub(crate) fn pop_due(&mut self) -> Option<FaultSpec> {
        let spec = *self.schedule.get(self.next)?;
        if spec.cycle <= self.cycle {
            self.next += 1;
            Some(spec)
        } else {
            None
        }
    }

    /// Record whether the design landed the fault.
    pub(crate) fn record(&mut self, landed: bool) {
        if landed {
            self.applied += 1;
        } else {
            self.missed += 1;
        }
    }

    /// Snapshot the counters (used for both live queries and disarm).
    pub fn log(&self) -> FaultLog {
        FaultLog {
            applied: self.applied,
            missed: self.missed,
            pending: (self.schedule.len() - self.next) as u64,
            cycles: self.cycle,
        }
    }
}

/// Flip bit `bit % 64` of an IEEE-754 binary64 word. Pure bit
/// manipulation — no native float arithmetic — so it is safe to call
/// from lint-policed datapath code.
pub fn flip_f64_bit(value: f64, bit: u32) -> f64 {
    f64::from_bits(value.to_bits() ^ (1u64 << (bit % 64)))
}

/// Force bit `bit % 64` of a binary64 word to zero (stuck-at-0).
pub fn clear_f64_bit(value: f64, bit: u32) -> f64 {
    f64::from_bits(value.to_bits() & !(1u64 << (bit % 64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_sorted_and_delivered_in_cycle_order() {
        let mut armed = ArmedFaults::new(vec![
            FaultSpec {
                cycle: 5,
                kind: FaultKind::ChannelStall { beats: 2 },
            },
            FaultSpec {
                cycle: 2,
                kind: FaultKind::BufferBitFlip { slot: 0, bit: 3 },
            },
        ]);
        armed.begin_cycle(); // cycle 1
        assert_eq!(armed.pop_due(), None);
        armed.begin_cycle(); // cycle 2
        let f = armed.pop_due().expect("due at 2");
        assert_eq!(f.cycle, 2);
        assert_eq!(armed.pop_due(), None);
        for _ in 0..3 {
            armed.begin_cycle(); // cycles 3..=5
        }
        let f = armed.pop_due().expect("due at 5");
        assert_eq!(f.kind.name(), "channel-stall");
        assert_eq!(armed.pop_due(), None);
    }

    #[test]
    fn log_counts_applied_missed_and_pending() {
        let mk = |cycle| FaultSpec {
            cycle,
            kind: FaultKind::PipelineBitFlip { stage: 0, bit: 51 },
        };
        let mut armed = ArmedFaults::new(vec![mk(1), mk(2), mk(900)]);
        armed.begin_cycle();
        let f = armed.pop_due().unwrap();
        assert_eq!(f.cycle, 1);
        armed.record(true);
        armed.begin_cycle();
        armed.pop_due().unwrap();
        armed.record(false);
        let log = armed.log();
        assert_eq!(log.applied, 1);
        assert_eq!(log.missed, 1);
        assert_eq!(log.pending, 1);
        assert_eq!(log.cycles, 2);
    }

    #[test]
    fn late_fault_fires_on_next_cycle() {
        // A spec scheduled for cycle 1 still fires if the counter is
        // already past it (e.g. armed mid-timeline).
        let mut armed = ArmedFaults::new(vec![FaultSpec {
            cycle: 1,
            kind: FaultKind::StuckAtZero { slot: 4, bit: 9 },
        }]);
        for _ in 0..10 {
            armed.begin_cycle();
        }
        assert!(armed.pop_due().is_some());
    }

    #[test]
    fn bit_helpers_are_exact_inverses_or_idempotent() {
        let v = 1234.5678f64;
        let flipped = flip_f64_bit(v, 17);
        assert_ne!(flipped.to_bits(), v.to_bits());
        assert_eq!(flip_f64_bit(flipped, 17).to_bits(), v.to_bits());
        // Stuck-at-zero is idempotent.
        let cleared = clear_f64_bit(v, 80); // 80 % 64 = 16
        assert_eq!(clear_f64_bit(cleared, 16).to_bits(), cleared.to_bits());
        assert_eq!(cleared.to_bits() & (1 << 16), 0);
    }

    #[test]
    fn sign_bit_flip_negates_without_touching_magnitude() {
        let v = 3.25f64;
        let flipped = flip_f64_bit(v, 63);
        assert_eq!(flipped.to_bits(), (-3.25f64).to_bits());
        // Signed zero: the flip is visible in bits even where `==`
        // cannot see it.
        let nz = flip_f64_bit(0.0, 63);
        assert_eq!(nz.to_bits(), (-0.0f64).to_bits());
        assert_eq!(nz, 0.0);
    }

    #[test]
    fn exponent_flips_can_reach_inf_and_nan() {
        // 1.0 has exponent 0x3FF; flipping bits 52..=62 one at a time
        // from the right value lands exactly on all-ones (Inf).
        let mut v = 1.0f64;
        for bit in 52..63 {
            if v.to_bits() & (1u64 << bit) == 0 {
                v = flip_f64_bit(v, bit);
            }
        }
        assert!(v.is_infinite(), "exponent all-ones, zero mantissa: {v}");
        // One more flip in the mantissa turns Inf into a NaN …
        let nan = flip_f64_bit(v, 0);
        assert!(nan.is_nan());
        // … and the involution property still holds through non-finite
        // values (bit-level, since NaN != NaN).
        assert_eq!(flip_f64_bit(nan, 0).to_bits(), v.to_bits());
    }

    #[test]
    fn mantissa_lsb_flip_is_one_ulp() {
        let v = 1.0f64;
        let bumped = flip_f64_bit(v, 0);
        assert_eq!(bumped.to_bits(), v.to_bits() + 1);
        assert!(bumped > v && bumped - v < 1e-15);
        // Bit index is taken mod 64: bit 64 is the mantissa LSB again.
        assert_eq!(flip_f64_bit(v, 64).to_bits(), bumped.to_bits());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            FaultKind::BufferBitFlip { slot: 0, bit: 0 }.name(),
            "buffer-bit-flip"
        );
        assert_eq!(
            FaultKind::StuckAtZero { slot: 0, bit: 0 }.name(),
            "stuck-at-zero"
        );
    }
}
