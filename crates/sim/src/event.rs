//! Deterministic discrete-event clock: a time-ordered queue with stable
//! FIFO tie-breaking.
//!
//! The cycle-stepped harness is the right engine for the *inside* of a
//! kernel — some unit does work almost every cycle. A serving campaign is
//! the opposite regime: millions of requests whose interesting moments
//! (arrival, admission, dispatch, completion) are sparse in time. The
//! [`EventQueue`] is the substrate `fblas-serve` builds its request
//! front end on: events are ordered by timestamp, and events with equal
//! timestamps pop in *push order* (a monotone sequence number breaks
//! ties), so a campaign replay is a pure function of its inputs — the
//! property that keeps `SERVE_<n>.json` byte-identical at any `--jobs`
//! count and under every execution backend.
//!
//! Timestamps are plain `u64`s; the unit (cycles, nanoseconds) is the
//! caller's contract. `fblas-serve` uses nanoseconds so designs closing
//! timing at different clocks (the 170 MHz tree front end, the 164 MHz
//! XD1 Level-2 array) share one timeline.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: timestamp, tie-breaking sequence, payload.
#[derive(Debug, Clone)]
struct Event<T> {
    time: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    /// Reversed so the `BinaryHeap` (a max-heap) pops the *earliest*
    /// (time, seq) pair first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use fblas_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(30, "late");
/// q.push(10, "first");
/// q.push(10, "second"); // same time: FIFO among equals
/// assert_eq!(q.pop(), Some((10, "first")));
/// assert_eq!(q.pop(), Some((10, "second")));
/// assert_eq!(q.pop(), Some((30, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at `time`. Events at equal times are popped in
    /// push order.
    pub fn push(&mut self, time: u64, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, payload });
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &(t, v) in &[(50u64, 'a'), (10, 'b'), (40, 'c'), (20, 'd')] {
            q.push(t, v);
        }
        let order: Vec<(u64, char)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, 'b'), (20, 'd'), (40, 'c'), (50, 'a')]);
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(7, i);
        }
        for i in 0..100u64 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo_among_equals() {
        let mut q = EventQueue::new();
        q.push(5, "a");
        q.push(5, "b");
        assert_eq!(q.pop(), Some((5, "a")));
        q.push(5, "c");
        q.push(3, "urgent");
        assert_eq!(q.pop(), Some((3, "urgent")));
        assert_eq!(q.pop(), Some((5, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
    }

    #[test]
    fn peek_and_len_observe_without_draining() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(9, ());
        q.push(4, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(4));
        assert_eq!(q.len(), 2, "peek must not drain");
    }
}
