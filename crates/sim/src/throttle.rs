//! Token-bucket bandwidth throttle: the model of a rate-limited channel.
//!
//! Memory channels in the reconfigurable-system model deliver a fixed
//! number of words per FPGA clock cycle — e.g. the XD1 SRAM interface
//! delivers one 64-bit word per bank per cycle, while a DRAM link at
//! 1.3 GB/s feeding a 164 MHz design delivers ≈0.99 words/cycle. The rate
//! is generally fractional, so the throttle accumulates fractional credit
//! each cycle and grants whole words when enough credit is available.

/// A token-bucket rate limiter measured in words per cycle.
///
/// # Examples
///
/// ```
/// use fblas_sim::Throttle;
///
/// // A channel sustaining half a word per cycle delivers on every
/// // second cycle under continuous demand.
/// let mut ch = Throttle::new(0.5);
/// let mut delivered = 0;
/// for _ in 0..10 {
///     ch.tick();
///     if ch.grant(1) {
///         delivered += 1;
///     }
/// }
/// assert_eq!(delivered, 5);
/// ```
///
/// Credit accrues by `rate` every [`Throttle::tick`] and is spent by
/// [`Throttle::grant`]. Credit accumulation is capped at one burst worth
/// (`burst` words, default: `rate.ceil() + 1`), modelling a channel without
/// deep buffering: unused bandwidth in one cycle cannot be banked
/// indefinitely. The `+ 1` guarantees that a consumer draining whole words
/// every cycle loses no fractional credit to the cap.
#[derive(Debug, Clone)]
pub struct Throttle {
    rate: f64,
    burst: f64,
    credit: f64,
    granted: u64,
    cycles: u64,
}

impl Throttle {
    /// Create a throttle granting `rate` words per cycle (may be
    /// fractional), with a credit cap of `rate.ceil() + 1`.
    ///
    /// # Panics
    /// Panics unless `rate` is positive and finite.
    pub fn new(rate: f64) -> Self {
        Self::with_burst(rate, rate.ceil() + 1.0)
    }

    /// Create a throttle with an explicit credit cap.
    pub fn with_burst(rate: f64, burst: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive, got {rate}"
        );
        assert!(
            burst >= rate.min(1.0),
            "burst {burst} too small for rate {rate}"
        );
        Self {
            rate,
            burst,
            credit: 0.0,
            granted: 0,
            cycles: 0,
        }
    }

    /// Words per cycle this throttle sustains.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Advance one cycle, accruing credit.
    pub fn tick(&mut self) {
        self.cycles += 1;
        self.credit = (self.credit + self.rate).min(self.burst);
    }

    /// Number of whole words available this cycle.
    pub fn available(&self) -> u64 {
        self.credit as u64
    }

    /// Try to consume `words` words of credit. Returns true on success.
    pub fn grant(&mut self, words: u64) -> bool {
        if self.credit >= words as f64 {
            self.credit -= words as f64;
            self.granted += words;
            true
        } else {
            false
        }
    }

    /// Consume up to `words` words and return how many were granted.
    pub fn grant_up_to(&mut self, words: u64) -> u64 {
        let n = (self.credit as u64).min(words);
        if n > 0 {
            let ok = self.grant(n);
            debug_assert!(ok);
        }
        n
    }

    /// Total words granted over the throttle's lifetime.
    pub fn total_granted(&self) -> u64 {
        self.granted
    }

    /// Achieved words/cycle so far (granted / elapsed cycles).
    pub fn achieved_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.granted as f64 / self.cycles as f64
        }
    }

    /// Sample channel utilization into a probe: records the words granted
    /// since the last sample, so the component's occupancy histogram shows
    /// the delivered words/cycle distribution. Call once per cycle from
    /// the owning design.
    pub fn probe_utilization(&self, probe: &mut crate::Probe, id: crate::ProbeId) {
        probe.sample_rate(id, self.granted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_rate_grants_every_cycle() {
        let mut t = Throttle::new(2.0);
        for _ in 0..10 {
            t.tick();
            assert!(t.grant(2));
        }
        assert_eq!(t.total_granted(), 20);
    }

    #[test]
    fn fractional_rate_interleaves_grants() {
        // 0.5 words/cycle: a word every other cycle.
        let mut t = Throttle::new(0.5);
        let mut granted = 0;
        for _ in 0..100 {
            t.tick();
            if t.grant(1) {
                granted += 1;
            }
        }
        assert_eq!(granted, 50);
    }

    #[test]
    fn credit_capped_at_burst() {
        let mut t = Throttle::new(1.0);
        for _ in 0..100 {
            t.tick(); // never draining
        }
        // Burst cap is 2 words: idling for 100 cycles banks no more.
        assert_eq!(t.available(), 2);
        assert!(t.grant(2));
        assert!(!t.grant(1));
    }

    #[test]
    fn grant_fails_without_credit_and_leaves_credit_intact() {
        let mut t = Throttle::new(0.25);
        t.tick();
        assert!(!t.grant(1));
        t.tick();
        t.tick();
        t.tick();
        assert!(t.grant(1));
    }

    #[test]
    fn grant_up_to_partial() {
        let mut t = Throttle::with_burst(3.0, 3.0);
        t.tick();
        assert_eq!(t.grant_up_to(5), 3);
        assert_eq!(t.grant_up_to(5), 0);
    }

    #[test]
    fn achieved_rate_converges_to_rate_under_demand() {
        let mut t = Throttle::new(1.3 / 8.0); // e.g. 1.3 GB/s in words at ~1 GHz
        for _ in 0..10_000 {
            t.tick();
            t.grant_up_to(1);
        }
        assert!((t.achieved_rate() - 1.3 / 8.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_rate_rejected() {
        Throttle::new(-1.0);
    }
}
