//! Clock-domain arithmetic: cycles ↔ seconds ↔ FLOPS.
//!
//! The SC'05 designs are evaluated at post-place-&-route clock speeds
//! (170 MHz floating-point units, 164 MHz for the Level-2 design on XD1,
//! 130 MHz for the Level-3 design, ...). The functional simulation counts
//! cycles; a [`ClockDomain`] turns those counts into the seconds, MB/s and
//! MFLOPS the paper reports.

/// A synchronous clock domain running at a fixed frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    mhz: f64,
}

impl ClockDomain {
    /// Create a clock domain from a frequency in MHz.
    ///
    /// # Panics
    /// Panics if `mhz` is not strictly positive and finite.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(
            mhz.is_finite() && mhz > 0.0,
            "clock must be positive, got {mhz} MHz"
        );
        Self { mhz }
    }

    /// Frequency in MHz.
    pub fn mhz(&self) -> f64 {
        self.mhz
    }

    /// Frequency in Hz.
    pub fn hz(&self) -> f64 {
        self.mhz * 1e6
    }

    /// Duration of one clock cycle in seconds.
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / self.hz()
    }

    /// Convert a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.hz()
    }

    /// Convert a duration in seconds to a (rounded-up) cycle count.
    pub fn seconds_to_cycles(&self, seconds: f64) -> u64 {
        (seconds * self.hz()).ceil() as u64
    }

    /// Sustained FLOPS given a number of floating-point operations completed
    /// in `cycles` cycles of this domain.
    pub fn flops(&self, flop_count: u64, cycles: u64) -> f64 {
        assert!(cycles > 0, "cannot compute FLOPS over zero cycles");
        flop_count as f64 / self.cycles_to_seconds(cycles)
    }

    /// Bandwidth in bytes/second achieved by moving `bytes` bytes over
    /// `cycles` cycles of this domain.
    pub fn bandwidth_bytes_per_s(&self, bytes: u64, cycles: u64) -> f64 {
        assert!(cycles > 0, "cannot compute bandwidth over zero cycles");
        bytes as f64 / self.cycles_to_seconds(cycles)
    }
}

/// Formatting helpers for performance reports.
pub mod fmt {
    /// Format a FLOPS value with an appropriate SI suffix (MFLOPS/GFLOPS).
    pub fn flops(v: f64) -> String {
        if v >= 1e9 {
            format!("{:.2} GFLOPS", v / 1e9)
        } else {
            format!("{:.0} MFLOPS", v / 1e6)
        }
    }

    /// Format a byte/s bandwidth with an appropriate SI suffix (MB/s, GB/s).
    pub fn bandwidth(v: f64) -> String {
        if v >= 1e9 {
            format!("{:.1} GB/s", v / 1e9)
        } else {
            format!("{:.1} MB/s", v / 1e6)
        }
    }

    /// Format seconds as milliseconds with three significant digits.
    pub fn millis(v: f64) -> String {
        format!("{:.3} ms", v * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_time_inverse_of_frequency() {
        let c = ClockDomain::from_mhz(170.0);
        assert!((c.cycle_time_s() - 1.0 / 170e6).abs() < 1e-18);
    }

    #[test]
    fn cycles_to_seconds_roundtrip() {
        let c = ClockDomain::from_mhz(130.0);
        let s = c.cycles_to_seconds(16_777_216);
        // 512^3/8 cycles at 130 MHz is the paper's 131 ms matrix multiply.
        assert!((s - 0.129) < 0.01, "expected ~0.129 s, got {s}");
        assert_eq!(c.seconds_to_cycles(s), 16_777_216);
    }

    #[test]
    fn flops_of_known_workload() {
        // 2*n^3 flops at n=512 in n^3/k cycles (k=8) at 130 MHz ≈ 2.08 GFLOPS.
        let c = ClockDomain::from_mhz(130.0);
        let n: u64 = 512;
        let flops = c.flops(2 * n * n * n, n * n * n / 8);
        assert!((flops / 1e9 - 2.08).abs() < 0.01, "got {flops}");
    }

    #[test]
    fn bandwidth_of_known_transfer() {
        // 4 words of 8 bytes per cycle at 170 MHz = 5.44 GB/s (paper's 5.5).
        let c = ClockDomain::from_mhz(170.0);
        let bw = c.bandwidth_bytes_per_s(32, 1);
        assert!((bw / 1e9 - 5.44).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rejected() {
        ClockDomain::from_mhz(0.0);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(fmt::flops(2.06e9), "2.06 GFLOPS");
        assert_eq!(fmt::flops(262e6), "262 MFLOPS");
        assert_eq!(fmt::bandwidth(5.9e9), "5.9 GB/s");
        assert_eq!(fmt::bandwidth(24.3e6), "24.3 MB/s");
    }
}
