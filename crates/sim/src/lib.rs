//! Cycle-stepped dataflow simulation kernel.
//!
//! Every architecture in this workspace (reduction circuits, the tree-based
//! dot-product / matrix-vector designs, the linear-array matrix multiplier)
//! is expressed as a synchronous digital circuit: a collection of stateful
//! components that all observe the same clock. This crate provides the small
//! set of primitives those models are built from:
//!
//! * [`DelayLine`] — a fixed-latency pipeline register chain, the model of a
//!   deeply pipelined floating-point unit's timing behaviour.
//! * [`Fifo`] — a bounded queue with high-water-mark tracking, the model of
//!   an on-chip buffer whose size we must prove bounded.
//! * [`Throttle`] — a token-bucket rate limiter, the model of a
//!   bandwidth-limited memory channel (words per cycle, possibly
//!   fractional).
//! * [`ClockDomain`] — converts cycle counts into wall-clock time and
//!   sustained FLOPS given a clock frequency in MHz.
//! * [`Stats`] — occupancy/utilization counters shared by the models.
//!
//! The kernel is deliberately *not* an event-driven simulator: the
//! architectures in the SC'05 paper are fully synchronous and compute-dense
//! (some unit does work almost every cycle), so stepping every cycle is both
//! simpler and faster than maintaining an event queue.

pub mod clock;
pub mod delay;
pub mod fifo;
pub mod stats;
pub mod throttle;

pub use clock::ClockDomain;
pub use delay::DelayLine;
pub use fifo::Fifo;
pub use stats::{Histogram, Stats};
pub use throttle::Throttle;

/// A synchronous component that advances one clock cycle at a time.
///
/// Implementors typically sample their inputs, update internal state and
/// produce outputs in a single `tick`. Composite designs call `tick` on
/// their sub-components in dataflow order within their own `tick`.
pub trait Component {
    /// Advance the component by one clock cycle.
    fn tick(&mut self);

    /// Number of cycles this component has executed.
    fn cycles(&self) -> u64;
}

/// Run a component until `done` returns true, with a hard cycle limit.
///
/// Returns the number of cycles executed. Panics if the limit is exceeded,
/// which in this workspace always indicates a scheduling bug (a design that
/// claims a latency bound must meet it).
pub fn run_until<C: Component>(c: &mut C, limit: u64, mut done: impl FnMut(&C) -> bool) -> u64 {
    let start = c.cycles();
    while !done(c) {
        assert!(
            c.cycles() - start < limit,
            "simulation exceeded cycle limit {limit} (started at {start})"
        );
        c.tick();
    }
    c.cycles() - start
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        n: u64,
    }
    impl Component for Counter {
        fn tick(&mut self) {
            self.n += 1;
        }
        fn cycles(&self) -> u64 {
            self.n
        }
    }

    #[test]
    fn run_until_counts_cycles() {
        let mut c = Counter { n: 0 };
        let ran = run_until(&mut c, 100, |c| c.n == 42);
        assert_eq!(ran, 42);
    }

    #[test]
    fn run_until_is_relative_to_start() {
        let mut c = Counter { n: 10 };
        let ran = run_until(&mut c, 100, |c| c.n == 25);
        assert_eq!(ran, 15);
    }

    #[test]
    #[should_panic(expected = "cycle limit")]
    fn run_until_enforces_limit() {
        let mut c = Counter { n: 0 };
        run_until(&mut c, 10, |_| false);
    }
}
