//! Cycle-stepped dataflow simulation kernel.
//!
//! Every architecture in this workspace (reduction circuits, the tree-based
//! dot-product / matrix-vector designs, the linear-array matrix multiplier)
//! is expressed as a synchronous digital circuit: a collection of stateful
//! components that all observe the same clock. This crate provides the small
//! set of primitives those models are built from:
//!
//! * [`DelayLine`] — a fixed-latency pipeline register chain, the model of a
//!   deeply pipelined floating-point unit's timing behaviour.
//! * [`Fifo`] — a bounded queue with high-water-mark tracking, the model of
//!   an on-chip buffer whose size we must prove bounded.
//! * [`Throttle`] — a token-bucket rate limiter, the model of a
//!   bandwidth-limited memory channel (words per cycle, possibly
//!   fractional).
//! * [`ClockDomain`] — converts cycle counts into wall-clock time and
//!   sustained FLOPS given a clock frequency in MHz.
//! * [`Stats`] — occupancy/utilization counters shared by the models.
//! * [`Topology`] — the static channel-graph descriptor (`graph` module)
//!   designs export for `fblas-check`'s deadlock-freedom and
//!   throughput-bound analyses.
//!
//! On top of the primitives sits the shared run engine:
//!
//! * [`Design`] — the setup → stream → drain lifecycle every architecture
//!   implements; one [`Design::cycle`] call advances all of a design's
//!   components by one clock.
//! * [`Harness`] — owns the run loop: cycle counting, the hard cycle
//!   limit, the livelock watchdog, and [`SimReport`] assembly.
//! * [`Probe`] — the instrumentation layer: named per-component counters
//!   with stall-cause attribution ([`StallCause`]), occupancy histograms
//!   and high-water marks, and — in deep mode — waveforms exportable as
//!   JSON summaries or Chrome `trace_event` timelines.
//! * [`SimReport`] — the per-run accounting record behind the paper's
//!   tables, built centrally by the harness from probe counters.
//!
//! # Components
//!
//! A *component* here is any stateful struct advanced once per clock from
//! inside [`Design::cycle`] — the delay lines, FIFOs, throttles and
//! reducers above. Composite designs tick their sub-components in
//! dataflow order within one `cycle` call.
//!
//! The kernel is deliberately *not* an event-driven simulator: the
//! architectures in the SC'05 paper are fully synchronous and compute-dense
//! (some unit does work almost every cycle), so stepping every cycle is both
//! simpler and faster than maintaining an event queue.

#![forbid(unsafe_code)]

pub mod backend;
pub mod clock;
pub mod delay;
pub mod event;
pub mod fault;
pub mod fifo;
pub mod graph;
pub mod harness;
pub mod probe;
pub mod report;
pub mod stats;
pub mod telem;
pub mod throttle;

pub use backend::ExecBackend;
pub use clock::ClockDomain;
pub use delay::DelayLine;
pub use event::EventQueue;
pub use fault::{clear_f64_bit, flip_f64_bit, ArmedFaults, FaultKind, FaultLog, FaultSpec};
pub use fifo::{Fifo, FifoFull};
pub use graph::{Edge, EdgeKind, Node, NodeId, NodeRole, Topology};
pub use harness::{Design, Harness, LIVELOCK_WINDOW};
pub use probe::{ComponentStats, DepthRuns, Probe, ProbeId, RunMark, StallCause};
pub use report::SimReport;
pub use stats::{Histogram, LogHistogram, Stats};
pub use telem::{BusyRuns, CompSeries, MarkRuns, StallRuns, TelemSeries, DEFAULT_TELEM_WINDOW};
pub use throttle::Throttle;
