//! Cycle-stepped dataflow simulation kernel.
//!
//! Every architecture in this workspace (reduction circuits, the tree-based
//! dot-product / matrix-vector designs, the linear-array matrix multiplier)
//! is expressed as a synchronous digital circuit: a collection of stateful
//! components that all observe the same clock. This crate provides the small
//! set of primitives those models are built from:
//!
//! * [`DelayLine`] — a fixed-latency pipeline register chain, the model of a
//!   deeply pipelined floating-point unit's timing behaviour.
//! * [`Fifo`] — a bounded queue with high-water-mark tracking, the model of
//!   an on-chip buffer whose size we must prove bounded.
//! * [`Throttle`] — a token-bucket rate limiter, the model of a
//!   bandwidth-limited memory channel (words per cycle, possibly
//!   fractional).
//! * [`ClockDomain`] — converts cycle counts into wall-clock time and
//!   sustained FLOPS given a clock frequency in MHz.
//! * [`Stats`] — occupancy/utilization counters shared by the models.
//!
//! The kernel is deliberately *not* an event-driven simulator: the
//! architectures in the SC'05 paper are fully synchronous and compute-dense
//! (some unit does work almost every cycle), so stepping every cycle is both
//! simpler and faster than maintaining an event queue.

#![forbid(unsafe_code)]

pub mod clock;
pub mod delay;
pub mod fifo;
pub mod stats;
pub mod throttle;

pub use clock::ClockDomain;
pub use delay::DelayLine;
pub use fifo::{Fifo, FifoFull};
pub use stats::{Histogram, Stats};
pub use throttle::Throttle;

/// A synchronous component that advances one clock cycle at a time.
///
/// Implementors typically sample their inputs, update internal state and
/// produce outputs in a single `tick`. Composite designs call `tick` on
/// their sub-components in dataflow order within their own `tick`.
pub trait Component {
    /// Advance the component by one clock cycle.
    fn tick(&mut self);

    /// Number of cycles this component has executed.
    fn cycles(&self) -> u64;

    /// A monotone counter of useful work (words consumed, results
    /// emitted, …), if the component tracks one. [`run_until`] watches it:
    /// a component whose clock advances while its progress counter stays
    /// frozen for [`LIVELOCK_WINDOW`] cycles is live-locked (stuck
    /// back-pressure, a lost token, a wedged handshake) and the run panics
    /// with a diagnosis distinct from the cycle-limit overrun.
    fn progress(&self) -> Option<u64> {
        None
    }
}

/// Cycles without forward progress after which [`run_until`] declares a
/// livelock. Generous: the deepest legitimate stall in these models is a
/// pipeline drain plus a reduction-buffer sweep, far below this.
pub const LIVELOCK_WINDOW: u64 = 100_000;

/// Run a component until `done` returns true, with a hard cycle limit.
///
/// Returns the number of cycles executed.
///
/// # Panics
/// * if the cycle limit is exceeded — a scheduling bug (a design that
///   claims a latency bound must meet it);
/// * if the component reports a [`Component::progress`] counter and it
///   stays frozen for [`LIVELOCK_WINDOW`] consecutive cycles — a livelock,
///   reported as such rather than burning the whole cycle budget.
pub fn run_until<C: Component>(c: &mut C, limit: u64, mut done: impl FnMut(&C) -> bool) -> u64 {
    let start = c.cycles();
    let mut last_progress = c.progress();
    let mut stuck_since = c.cycles();
    while !done(c) {
        assert!(
            c.cycles() - start < limit,
            "simulation exceeded cycle limit {limit} (started at {start})"
        );
        c.tick();
        let progress = c.progress();
        if progress != last_progress {
            last_progress = progress;
            stuck_since = c.cycles();
        } else if progress.is_some() {
            assert!(
                c.cycles() - stuck_since < LIVELOCK_WINDOW,
                "livelock: no forward progress for {LIVELOCK_WINDOW} cycles \
                 (progress counter stuck at {:?} since cycle {stuck_since})",
                progress.unwrap_or(0)
            );
        }
    }
    c.cycles() - start
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        n: u64,
    }
    impl Component for Counter {
        fn tick(&mut self) {
            self.n += 1;
        }
        fn cycles(&self) -> u64 {
            self.n
        }
    }

    #[test]
    fn run_until_counts_cycles() {
        let mut c = Counter { n: 0 };
        let ran = run_until(&mut c, 100, |c| c.n == 42);
        assert_eq!(ran, 42);
    }

    #[test]
    fn run_until_is_relative_to_start() {
        let mut c = Counter { n: 10 };
        let ran = run_until(&mut c, 100, |c| c.n == 25);
        assert_eq!(ran, 15);
    }

    #[test]
    #[should_panic(expected = "cycle limit")]
    fn run_until_enforces_limit() {
        let mut c = Counter { n: 0 };
        run_until(&mut c, 10, |_| false);
    }

    /// Ticks forever but stops making progress after `stall_at` items.
    struct Staller {
        n: u64,
        items: u64,
        stall_at: u64,
    }
    impl Component for Staller {
        fn tick(&mut self) {
            self.n += 1;
            if self.items < self.stall_at {
                self.items += 1;
            }
        }
        fn cycles(&self) -> u64 {
            self.n
        }
        fn progress(&self) -> Option<u64> {
            Some(self.items)
        }
    }

    #[test]
    #[should_panic(expected = "livelock: no forward progress")]
    fn run_until_detects_livelock_before_cycle_limit() {
        let mut c = Staller {
            n: 0,
            items: 0,
            stall_at: 7,
        };
        // The cycle limit alone would allow 10× longer: the watchdog must
        // fire first, with its own message.
        run_until(&mut c, 10 * LIVELOCK_WINDOW, |_| false);
    }

    #[test]
    fn slow_but_live_progress_is_not_a_livelock() {
        struct Slow {
            n: u64,
        }
        impl Component for Slow {
            fn tick(&mut self) {
                self.n += 1;
            }
            fn cycles(&self) -> u64 {
                self.n
            }
            fn progress(&self) -> Option<u64> {
                // One unit of work just inside every watchdog window.
                Some(self.n / (LIVELOCK_WINDOW - 1))
            }
        }
        let mut c = Slow { n: 0 };
        let ran = run_until(&mut c, 4 * LIVELOCK_WINDOW, |c| c.n >= 3 * LIVELOCK_WINDOW);
        assert_eq!(ran, 3 * LIVELOCK_WINDOW);
    }

    #[test]
    fn components_without_progress_tracking_skip_the_watchdog() {
        let mut c = Counter { n: 0 };
        let ran = run_until(&mut c, 2 * LIVELOCK_WINDOW, |c| c.n >= LIVELOCK_WINDOW + 10);
        assert_eq!(ran, LIVELOCK_WINDOW + 10);
    }
}
