//! Per-run simulation reports: the raw numbers behind Tables 3 and 4.
//!
//! A [`SimReport`] is assembled centrally by the
//! [`Harness`](crate::Harness) from [`Probe`](crate::Probe) counters at
//! the end of a run, so every architecture shares one accounting truth:
//!
//! * `cycles` — harness loop iterations from first to last cycle;
//! * `busy_cycles` — cycles in which at least one floating-point unit
//!   issued an operation (a design marks these via
//!   [`Probe::busy`](crate::Probe::busy));
//! * `flops` / `words_in` / `words_out` — accumulated through
//!   [`Probe::flops`](crate::Probe::flops),
//!   [`Probe::io_in`](crate::Probe::io_in) and
//!   [`Probe::io_out`](crate::Probe::io_out).

use crate::clock::ClockDomain;

/// Measured outcome of one architecture simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimReport {
    /// Total clock cycles from first input to last output.
    pub cycles: u64,
    /// Floating-point operations performed (adds + multiplies).
    pub flops: u64,
    /// Words read from external memory.
    pub words_in: u64,
    /// Words written to external memory.
    pub words_out: u64,
    /// Cycles in which at least one floating-point unit issued an op.
    pub busy_cycles: u64,
}

impl SimReport {
    /// Sustained FLOPS at the given clock.
    pub fn sustained_flops(&self, clock: &ClockDomain) -> f64 {
        clock.flops(self.flops, self.cycles)
    }

    /// Total external-memory traffic in bytes (64-bit words).
    pub fn io_bytes(&self) -> u64 {
        (self.words_in + self.words_out) * 8
    }

    /// Achieved external bandwidth in bytes/second at the given clock.
    pub fn achieved_bandwidth(&self, clock: &ClockDomain) -> f64 {
        clock.bandwidth_bytes_per_s(self.io_bytes(), self.cycles)
    }

    /// Wall-clock latency in seconds at the given clock.
    pub fn latency_seconds(&self, clock: &ClockDomain) -> f64 {
        clock.cycles_to_seconds(self.cycles)
    }

    /// Fraction of a peak FLOPS figure this run sustained.
    pub fn fraction_of_peak(&self, clock: &ClockDomain, peak_flops: f64) -> f64 {
        assert!(peak_flops > 0.0);
        self.sustained_flops(clock) / peak_flops
    }

    /// Fraction of cycles in which floating-point work was issued.
    pub fn compute_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            cycles: 1_000,
            flops: 4_000,
            words_in: 2_000,
            words_out: 10,
            busy_cycles: 900,
        }
    }

    #[test]
    fn sustained_flops_at_clock() {
        let r = sample();
        let c = ClockDomain::from_mhz(100.0);
        // 4000 flops in 10 µs = 400 MFLOPS.
        assert!((r.sustained_flops(&c) / 1e6 - 400.0).abs() < 1e-9);
    }

    #[test]
    fn io_accounting() {
        let r = sample();
        assert_eq!(r.io_bytes(), 2010 * 8);
        let c = ClockDomain::from_mhz(100.0);
        let bw = r.achieved_bandwidth(&c);
        assert!((bw - 2010.0 * 8.0 / 10e-6).abs() < 1.0);
    }

    #[test]
    fn peak_fraction() {
        let r = sample();
        let c = ClockDomain::from_mhz(100.0);
        let frac = r.fraction_of_peak(&c, 800e6);
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization() {
        assert!((sample().compute_utilization() - 0.9).abs() < 1e-12);
        assert_eq!(SimReport::default().compute_utilization(), 0.0);
    }
}
