//! Bounded FIFO with occupancy tracking.
//!
//! The paper's central buffer-size claims (the reduction circuit needs two
//! buffers of size α², the matrix-multiply PE needs two local stores of
//! size m²/k) are verified in this workspace by running the architectures
//! and observing the high-water mark of the FIFOs/buffers involved —
//! [`Fifo`] records that mark and panics on overflow, so an architecture
//! that violates its claimed bound fails its tests loudly.

use std::collections::VecDeque;

/// Rejection returned by [`Fifo::try_push`]: the queue was at capacity.
/// Carries the rejected item back to the caller so a back-pressured
/// architecture can hold it and retry on a later cycle.
pub struct FifoFull<T>(pub T);

impl<T> std::fmt::Debug for FifoFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FifoFull")
    }
}

impl<T> std::fmt::Display for FifoFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("fifo at capacity")
    }
}

/// A bounded first-in first-out queue that records its high-water mark.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    total_pushed: u64,
}

impl<T> Fifo<T> {
    /// Create a FIFO with the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be >= 1");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
            total_pushed: 0,
        }
    }

    /// Push an item.
    ///
    /// # Panics
    /// Panics if the FIFO is full: in a hardware model, pushing into a full
    /// buffer is data loss and always a scheduling bug.
    pub fn push(&mut self, item: T) {
        assert!(
            self.items.len() < self.capacity,
            "fifo overflow: capacity {} exceeded",
            self.capacity
        );
        self.items.push_back(item);
        self.total_pushed += 1;
        self.high_water = self.high_water.max(self.items.len());
    }

    /// Try to push an item, returning [`FifoFull`] (carrying the item
    /// back) if at capacity. This is the back-pressure form: use it where
    /// the architecture handles a full buffer by stalling; use [`Fifo::push`]
    /// where a full buffer violates a claimed bound and must panic.
    pub fn try_push(&mut self, item: T) -> Result<(), FifoFull<T>> {
        if self.items.len() < self.capacity {
            self.push(item);
            Ok(())
        } else {
            Err(FifoFull(item))
        }
    }

    /// Pop the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peek at the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total number of items ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Iterate over the items from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Sample the current occupancy into a probe: feeds the component's
    /// occupancy histogram, high-water mark and (deep mode) waveform.
    /// Call once per cycle from the owning design.
    pub fn probe_occupancy(&self, probe: &mut crate::Probe, id: crate::ProbeId) {
        probe.sample_depth(id, self.items.len());
    }

    /// Fault-injection hook: mutate the item in `slot` (0 = oldest,
    /// reduced modulo the current occupancy), modelling an SEU in a
    /// buffer cell. Returns false when the FIFO is empty — the fault hit
    /// unoccupied storage and is architecturally masked.
    ///
    /// Only call this from a [`Design::inject`](crate::Design::inject)
    /// implementation (enforced by the `fault-hook-purity` DRC rule):
    /// that path runs solely while a fault schedule is armed, keeping
    /// ordinary simulation provably unperturbed.
    pub fn fault_mutate(&mut self, slot: usize, f: impl FnOnce(&mut T)) -> bool {
        if self.items.is_empty() {
            return false;
        }
        let idx = slot % self.items.len();
        f(&mut self.items[idx]);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i);
        }
        assert_eq!(
            (0..4).map(|_| f.pop().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn high_water_mark_tracks_peak_not_current() {
        let mut f = Fifo::new(8);
        f.push(1);
        f.push(2);
        f.push(3);
        f.pop();
        f.pop();
        assert_eq!(f.len(), 1);
        assert_eq!(f.high_water(), 3);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut f = Fifo::new(2);
        f.push(1);
        f.push(2);
        f.push(3);
    }

    #[test]
    fn try_push_returns_item_when_full() {
        let mut f = Fifo::new(1);
        assert!(f.try_push(10).is_ok());
        let FifoFull(rejected) = f.try_push(11).unwrap_err();
        assert_eq!(rejected, 11);
        assert!(f.is_full());
        assert_eq!(f.total_pushed(), 1, "rejected pushes are not counted");
    }

    #[test]
    #[should_panic(expected = "fifo capacity must be >= 1")]
    fn depth_zero_fifo_is_rejected_at_construction() {
        // A zero-capacity buffer can never accept the token it owes the
        // loop it sits on (the graph analyzer's `required >= 1` floor);
        // the model refuses to build one rather than deadlock later.
        let _ = Fifo::<u64>::new(0);
    }

    #[test]
    fn depth_one_fifo_cycles_full_empty_full() {
        let mut f = Fifo::new(1);
        assert!(f.is_empty() && !f.is_full());
        assert!(f.try_push(1).is_ok());
        assert!(f.is_full());
        // At depth 1, a second push must fail *until* the slot drains —
        // there is no in-between occupancy.
        assert!(f.try_push(2).is_err());
        assert_eq!(f.pop(), Some(1));
        assert!(f.is_empty());
        assert!(f.try_push(2).is_ok(), "drained slot accepts again");
        assert_eq!(f.high_water(), 1);
        assert_eq!(f.total_pushed(), 2);
    }

    #[test]
    fn front_does_not_consume() {
        let mut f = Fifo::new(2);
        f.push(42);
        assert_eq!(f.front(), Some(&42));
        assert_eq!(f.len(), 1);
        assert_eq!(f.pop(), Some(42));
        assert!(f.is_empty());
    }

    #[test]
    fn fault_mutate_hits_occupied_slots_and_misses_empty() {
        let mut f = Fifo::new(4);
        assert!(!f.fault_mutate(0, |v: &mut u64| *v ^= 1), "empty fifo");
        f.push(8u64);
        f.push(16u64);
        // slot reduced modulo occupancy: 5 % 2 = 1 targets the newest.
        assert!(f.fault_mutate(5, |v| *v ^= 1));
        assert_eq!(f.pop(), Some(8));
        assert_eq!(f.pop(), Some(17));
    }

    #[test]
    fn total_pushed_counts_lifetime_items() {
        let mut f = Fifo::new(2);
        for i in 0..10 {
            f.push(i);
            f.pop();
        }
        assert_eq!(f.total_pushed(), 10);
    }
}
