//! Time-resolved telemetry: deterministic windowed series per run.
//!
//! When enabled on a [`Probe`](crate::Probe), every per-cycle sample is
//! additionally folded into fixed-width cycle windows: global busy
//! cycles, per-component busy marks, per-cause stall counts, and
//! occupancy/bandwidth sample sums. One [`TelemSeries`] is sealed per
//! harness run; runs are *run-relative* (window 0 always starts at the
//! run's cycle 1), so the series a job produces is independent of what
//! else its worker harness executed before it — the property that keeps
//! `observatory run --jobs N` byte-deterministic.
//!
//! Fused fast-forward replays reconstruct the same windows through the
//! probe's *positioned* batched-recording API
//! ([`Probe::record_busy_cycles_at`](crate::Probe::record_busy_cycles_at)
//! and friends): a positioned batch spreads its count across the windows
//! its cycle span covers, landing on the exact vectors the per-cycle
//! path would have produced. The telemetry parity suites assert
//! bit-equality of stepped and fast-forwarded series.
//!
//! Completion latencies ride along: [`Probe::latency`](crate::Probe::latency)
//! records per-block/per-request latencies into a per-component
//! [`LogHistogram`] inside the current series. All latency recording is
//! a no-op while telemetry is disabled, so the always-on probe cost is
//! unchanged.

use crate::stats::LogHistogram;

/// Default telemetry window width, in cycles. Chosen so the paper-matrix
/// runs (≈500–1 000 000 cycles) produce tens-to-hundreds of windows:
/// enough to segment fill/steady/drain phases, small enough that the
/// committed `TELEM_<n>.json` store stays reviewable.
pub const DEFAULT_TELEM_WINDOW: u64 = 4096;

/// Windowed counters of one probe component over one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompSeries {
    /// Component name as registered (e.g. `"dot/front-end"`).
    pub name: String,
    /// FP-issue marks per window.
    pub busy: Vec<u64>,
    /// Stalled cycles per cause per window, indexed like
    /// [`StallCause::ALL`](crate::StallCause::ALL).
    pub stalls: [Vec<u64>; 4],
    /// Sum of occupancy/bandwidth samples per window.
    pub depth_sum: Vec<u64>,
    /// Number of occupancy/bandwidth samples per window.
    pub depth_samples: Vec<u64>,
    /// Completion-latency histogram (per-block/per-request), whole-run.
    pub latency: LogHistogram,
}

impl CompSeries {
    /// True if any counter of this component moved during the run.
    fn active(&self) -> bool {
        self.busy.iter().any(|&v| v > 0)
            || self.stalls.iter().flatten().any(|&v| v > 0)
            || self.depth_samples.iter().any(|&v| v > 0)
            || self.latency.samples() > 0
    }

    /// Pad every window vector to exactly `n` windows.
    fn pad_to(&mut self, n: usize) {
        self.busy.resize(n, 0);
        for s in &mut self.stalls {
            s.resize(n, 0);
        }
        self.depth_sum.resize(n, 0);
        self.depth_samples.resize(n, 0);
    }
}

/// The sealed telemetry of one harness run: global busy windows plus one
/// [`CompSeries`] per component that recorded anything this run (in
/// registration order — components registered by *earlier* runs on a
/// shared probe that stayed silent are excluded, which is what makes the
/// series independent of worker job history).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemSeries {
    /// Cycles the run took.
    pub cycles: u64,
    /// Window width in cycles.
    pub window: u64,
    /// Busy cycles per window.
    pub busy: Vec<u64>,
    /// Active components' windowed counters.
    pub comps: Vec<CompSeries>,
}

impl TelemSeries {
    /// Number of windows (the last may be partial).
    pub fn windows(&self) -> usize {
        self.busy.len()
    }

    /// Width in cycles of window `w` (all `window` wide except a
    /// partial tail).
    pub fn window_width(&self, w: usize) -> u64 {
        let full = self.cycles / self.window;
        if w < full as usize {
            self.window
        } else {
            self.cycles - full * self.window
        }
    }
}

/// Accumulates windowed counters during a run; owned by the probe.
#[derive(Debug, Clone)]
pub(crate) struct TelemRecorder {
    window: u64,
    /// Window index of the current run-relative cycle, computed once per
    /// cycle in `begin_cycle` so the per-sample hooks stay division-free.
    cur_w: usize,
    busy: Vec<u64>,
    comps: Vec<CompTelem>,
    sealed: Vec<TelemSeries>,
}

#[derive(Debug, Clone, Default)]
struct CompTelem {
    busy: Vec<u64>,
    stalls: [Vec<u64>; 4],
    depth_sum: Vec<u64>,
    depth_samples: Vec<u64>,
    latency: LogHistogram,
}

/// Grow-and-add on a lazily sized window vector.
fn bump(v: &mut Vec<u64>, w: usize, n: u64) {
    if w >= v.len() {
        v.resize(w + 1, 0);
    }
    v[w] = v[w].saturating_add(n);
}

impl TelemRecorder {
    pub(crate) fn new(window: u64) -> Self {
        assert!(window >= 1, "telemetry window must be at least one cycle");
        Self {
            window,
            cur_w: 0,
            busy: Vec::new(),
            comps: Vec::new(),
            sealed: Vec::new(),
        }
    }

    pub(crate) fn window(&self) -> u64 {
        self.window
    }

    fn comp(&mut self, idx: usize) -> &mut CompTelem {
        if idx >= self.comps.len() {
            self.comps.resize_with(idx + 1, CompTelem::default);
        }
        &mut self.comps[idx]
    }

    // ---- per-cycle path ----

    pub(crate) fn begin_cycle(&mut self, cycle: u64) {
        self.cur_w = ((cycle.max(1) - 1) / self.window) as usize;
    }

    pub(crate) fn busy_cycle(&mut self) {
        bump(&mut self.busy, self.cur_w, 1);
    }

    pub(crate) fn busy_mark(&mut self, idx: usize) {
        let w = self.cur_w;
        bump(&mut self.comp(idx).busy, w, 1);
    }

    pub(crate) fn stall(&mut self, idx: usize, cause: usize) {
        let w = self.cur_w;
        bump(&mut self.comp(idx).stalls[cause], w, 1);
    }

    pub(crate) fn depth_sample(&mut self, idx: usize, depth: u64) {
        let w = self.cur_w;
        let c = self.comp(idx);
        bump(&mut c.depth_sum, w, depth);
        bump(&mut c.depth_samples, w, 1);
    }

    pub(crate) fn latency(&mut self, idx: usize, value: u64, n: u64) {
        self.comp(idx).latency.record_n(value, n);
    }

    // ---- positioned batched path (fast-forward reconstruction) ----
    //
    // A span covers run-relative cycles [start, start + n); each helper
    // splits the span across the windows it touches. Spans are short
    // relative to runs, so the per-window loop is negligible against the
    // per-cycle work it replaces.

    /// Call `f(window, cycles_in_window)` for each window the span
    /// [start, start+n) intersects.
    fn each_window(window: u64, start: u64, n: u64, mut f: impl FnMut(usize, u64)) {
        if n == 0 {
            return;
        }
        let start = start.max(1);
        let mut c = start;
        let end = start + n;
        while c < end {
            let w = (c - 1) / window;
            let next = w * window + window + 1;
            let take = next.min(end) - c;
            f(w as usize, take);
            c += take;
        }
    }

    pub(crate) fn busy_cycles_at(&mut self, start: u64, n: u64) {
        let window = self.window;
        let busy = &mut self.busy;
        Self::each_window(window, start, n, |w, take| bump(busy, w, take));
    }

    pub(crate) fn busy_marks_at(&mut self, idx: usize, start: u64, n: u64) {
        let window = self.window;
        let c = self.comp(idx);
        Self::each_window(window, start, n, |w, take| bump(&mut c.busy, w, take));
    }

    pub(crate) fn stalls_at(&mut self, idx: usize, cause: usize, start: u64, n: u64) {
        let window = self.window;
        let c = self.comp(idx);
        Self::each_window(window, start, n, |w, take| {
            bump(&mut c.stalls[cause], w, take);
        });
    }

    pub(crate) fn depths_at(&mut self, idx: usize, depth: u64, start: u64, n: u64) {
        let window = self.window;
        let c = self.comp(idx);
        Self::each_window(window, start, n, |w, take| {
            bump(&mut c.depth_sum, w, depth.saturating_mul(take));
            bump(&mut c.depth_samples, w, take);
        });
    }

    // ---- run lifecycle ----

    /// Seal the current run into a [`TelemSeries`], naming components
    /// from the probe's registry. Components with no activity this run
    /// are dropped (they belong to other runs sharing the probe).
    pub(crate) fn seal(&mut self, cycles: u64, names: &[String]) {
        let n_windows = if cycles == 0 {
            0
        } else {
            cycles.div_ceil(self.window) as usize
        };
        let mut busy = std::mem::take(&mut self.busy);
        busy.resize(n_windows, 0);
        let mut comps = Vec::new();
        for (idx, raw) in std::mem::take(&mut self.comps).into_iter().enumerate() {
            let mut series = CompSeries {
                name: names.get(idx).cloned().unwrap_or_default(),
                busy: raw.busy,
                stalls: raw.stalls,
                depth_sum: raw.depth_sum,
                depth_samples: raw.depth_samples,
                latency: raw.latency,
            };
            if series.active() {
                series.pad_to(n_windows);
                comps.push(series);
            }
        }
        self.sealed.push(TelemSeries {
            cycles,
            window: self.window,
            busy,
            comps,
        });
        self.cur_w = 0;
    }

    /// Drain every sealed series (oldest first).
    pub(crate) fn take(&mut self) -> Vec<TelemSeries> {
        std::mem::take(&mut self.sealed)
    }

    /// Peek the sealed series without draining them (trace exporters).
    pub(crate) fn sealed(&self) -> &[TelemSeries] {
        &self.sealed
    }
}

/// Contiguous-span accumulator for *busy cycles* inside a fused
/// fast-forward loop: `mark` each busy cycle in ascending order, and
/// maximal contiguous spans land through
/// [`Probe::record_busy_cycles_at`](crate::Probe::record_busy_cycles_at).
#[derive(Debug, Default)]
pub struct BusyRuns {
    start: u64,
    len: u64,
}

impl BusyRuns {
    /// Start an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that run-relative cycle `t` was busy.
    pub fn mark(&mut self, probe: &mut crate::Probe, t: u64) {
        if t == self.start + self.len {
            self.len += 1;
        } else {
            probe.record_busy_cycles_at(self.start, self.len);
            self.start = t;
            self.len = 1;
        }
    }

    /// Flush the trailing span.
    pub fn finish(self, probe: &mut crate::Probe) {
        probe.record_busy_cycles_at(self.start, self.len);
    }
}

/// Contiguous-span accumulator for one component's *FP-issue marks*
/// inside a fused fast-forward loop (positioned analogue of counting
/// marks and calling
/// [`Probe::record_busy_marks`](crate::Probe::record_busy_marks) once).
#[derive(Debug)]
pub struct MarkRuns {
    id: crate::ProbeId,
    start: u64,
    len: u64,
}

impl MarkRuns {
    /// Start an empty accumulator for component `id`.
    pub fn new(id: crate::ProbeId) -> Self {
        Self {
            id,
            start: 0,
            len: 0,
        }
    }

    /// Record an FP-issue mark of the component at run-relative cycle `t`.
    pub fn mark(&mut self, probe: &mut crate::Probe, t: u64) {
        if t == self.start + self.len {
            self.len += 1;
        } else {
            probe.record_busy_marks_at(self.id, self.start, self.len);
            self.start = t;
            self.len = 1;
        }
    }

    /// Flush the trailing span.
    pub fn finish(self, probe: &mut crate::Probe) {
        probe.record_busy_marks_at(self.id, self.start, self.len);
    }
}

/// Contiguous-span accumulator for one component's stalls of one cause
/// inside a fused fast-forward loop. Spans land through
/// [`Probe::record_stalls_at`](crate::Probe::record_stalls_at), which
/// also maintains the last-stall diagnosis exactly like the per-cycle
/// path.
#[derive(Debug)]
pub struct StallRuns {
    id: crate::ProbeId,
    cause: crate::StallCause,
    start: u64,
    len: u64,
}

impl StallRuns {
    /// Start an empty accumulator for component `id`, cause `cause`.
    pub fn new(id: crate::ProbeId, cause: crate::StallCause) -> Self {
        Self {
            id,
            cause,
            start: 0,
            len: 0,
        }
    }

    /// Record a stalled cycle at run-relative cycle `t`.
    pub fn mark(&mut self, probe: &mut crate::Probe, t: u64) {
        if t == self.start + self.len {
            self.len += 1;
        } else {
            probe.record_stalls_at(self.id, self.cause, self.start, self.len);
            self.start = t;
            self.len = 1;
        }
    }

    /// Flush the trailing span.
    pub fn finish(self, probe: &mut crate::Probe) {
        probe.record_stalls_at(self.id, self.cause, self.start, self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_spans_split_correctly() {
        let mut hits: Vec<(usize, u64)> = Vec::new();
        TelemRecorder::each_window(4, 3, 7, |w, n| hits.push((w, n)));
        // Cycles 3..=9 over 4-wide windows: [3,4]→w0, [5,8]→w1, [9]→w2.
        assert_eq!(hits, vec![(0, 2), (1, 4), (2, 1)]);
    }

    #[test]
    fn span_of_zero_is_a_no_op() {
        let mut hits = 0;
        TelemRecorder::each_window(4, 10, 0, |_, _| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn seal_pads_and_drops_inactive_components() {
        let mut r = TelemRecorder::new(4);
        r.begin_cycle(1);
        r.busy_cycle();
        r.busy_mark(1);
        r.seal(10, &["silent".into(), "active".into()]);
        let series = r.take();
        assert_eq!(series.len(), 1);
        let s = &series[0];
        assert_eq!(s.cycles, 10);
        assert_eq!(s.windows(), 3);
        assert_eq!(s.busy, vec![1, 0, 0]);
        assert_eq!(s.comps.len(), 1);
        assert_eq!(s.comps[0].name, "active");
        assert_eq!(s.comps[0].busy, vec![1, 0, 0]);
        assert_eq!(s.window_width(0), 4);
        assert_eq!(s.window_width(2), 2);
        assert!(r.take().is_empty(), "take drains");
    }

    /// Regression (observatory `--telemetry-window` edge cases): a
    /// window wider than the whole run must degrade to exactly one
    /// window holding the entire series — deterministically, with the
    /// partial-tail width equal to the run length — and the per-cycle
    /// and positioned paths must agree on it. A zero-width window is a
    /// constructor error (the CLI layer rejects it before any recorder
    /// exists; see `fblas-bench`'s shared `cli` helpers).
    #[test]
    fn window_wider_than_the_run_is_one_giant_window() {
        let giant = 1u64 << 40;
        let mut stepped = TelemRecorder::new(giant);
        for t in 1..=100u64 {
            stepped.begin_cycle(t);
            if t % 2 == 0 {
                stepped.busy_cycle();
                stepped.busy_mark(0);
            }
        }
        stepped.seal(100, &["c".into()]);
        let mut batched = TelemRecorder::new(giant);
        for t in 1..=100u64 {
            if t % 2 == 0 {
                batched.busy_cycles_at(t, 1);
                batched.busy_marks_at(0, t, 1);
            }
        }
        batched.seal(100, &["c".into()]);
        let a = stepped.take();
        let b = batched.take();
        assert_eq!(a, b, "stepped and positioned series must be identical");
        let s = &a[0];
        assert_eq!(s.windows(), 1, "one giant window");
        assert_eq!(s.busy, vec![50]);
        assert_eq!(s.comps[0].busy, vec![50]);
        assert_eq!(s.window_width(0), 100, "tail width is the run length");
    }

    #[test]
    #[should_panic(expected = "telemetry window must be at least one cycle")]
    fn zero_width_window_is_rejected_at_construction() {
        let _ = TelemRecorder::new(0);
    }

    #[test]
    fn positioned_and_per_cycle_paths_agree() {
        let mut stepped = TelemRecorder::new(4);
        for t in 1..=10u64 {
            stepped.begin_cycle(t);
            if (3..=9).contains(&t) {
                stepped.busy_cycle();
                stepped.busy_mark(0);
                stepped.stall(0, 3);
                stepped.depth_sample(0, 2);
            }
        }
        stepped.seal(10, &["c".into()]);
        let mut batched = TelemRecorder::new(4);
        batched.busy_cycles_at(3, 7);
        batched.busy_marks_at(0, 3, 7);
        batched.stalls_at(0, 3, 3, 7);
        batched.depths_at(0, 2, 3, 7);
        batched.seal(10, &["c".into()]);
        assert_eq!(stepped.take(), batched.take());
    }
}
