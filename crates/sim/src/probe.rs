//! Instrumentation layer: named per-component counters, stall-cause
//! attribution, occupancy waveforms and trace exporters.
//!
//! A [`Probe`] is the single accounting truth for a simulation run. The
//! [`Harness`](crate::Harness) owns one and passes it to every
//! [`Design::cycle`](crate::Design::cycle) call; the design reports what
//! happened this cycle — floating-point issues ([`Probe::busy`] +
//! [`Probe::flops`]), memory traffic ([`Probe::io_in`] / [`Probe::io_out`]),
//! stalls with a cause ([`Probe::stall`]) and buffer depths
//! ([`Probe::sample_depth`]) — and the harness folds the counters into a
//! [`SimReport`](crate::SimReport) when the run completes.
//!
//! Probes have two modes:
//!
//! * **summary** ([`Probe::new`]) — only the cheap always-on counters run:
//!   totals, per-cause stall counts, high-water marks and occupancy
//!   histograms. This is the default and is what every `run()` entry point
//!   uses; the counters *are* the report, so disabling deep tracing cannot
//!   change any measured number.
//! * **deep** ([`Probe::deep`]) — additionally records change-compressed
//!   occupancy waveforms and per-cycle stall events, exportable as a JSON
//!   summary ([`Probe::summary_json`]) or a Chrome `trace_event` timeline
//!   ([`Probe::chrome_trace`]) for `chrome://tracing` / Perfetto.
//!
//! Cycle counts and `SimReport` fields are bit-identical between the two
//! modes (the probe-parity integration tests assert this): deep mode only
//! *observes* more, it never feeds back into the design.

use crate::stats::Histogram;
use crate::telem::{TelemRecorder, TelemSeries};

/// Why a component failed to do useful work in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Upstream did not deliver enough data (e.g. a memory channel's
    /// token bucket ran dry before a full SIMD group was available).
    InputStarved,
    /// Downstream refused data (e.g. the reduction backlog FIFO hit its
    /// depth gate).
    OutputBackpressured,
    /// A read-after-write hazard window forced a wait (e.g. the column
    /// `MvM` updating a y element still inside the adder pipeline).
    HazardWindow,
    /// Inputs are exhausted and the pipeline is flushing its tail.
    Drain,
}

impl StallCause {
    /// All causes, in the order used by per-cause arrays and exports.
    pub const ALL: [StallCause; 4] = [
        StallCause::InputStarved,
        StallCause::OutputBackpressured,
        StallCause::HazardWindow,
        StallCause::Drain,
    ];

    /// Stable position of this cause in per-cause arrays (matches
    /// [`StallCause::ALL`] order).
    pub fn index(self) -> usize {
        match self {
            StallCause::InputStarved => 0,
            StallCause::OutputBackpressured => 1,
            StallCause::HazardWindow => 2,
            StallCause::Drain => 3,
        }
    }

    /// Stable kebab-case name used in exports and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::InputStarved => "input-starved",
            StallCause::OutputBackpressured => "output-backpressured",
            StallCause::HazardWindow => "hazard-window",
            StallCause::Drain => "drain",
        }
    }
}

/// Handle to a registered component (index into the probe's tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeId(usize);

/// Run-length encoder for a varying occupancy series inside a fused
/// fast-forward loop: push one depth per cycle (starting at run-relative
/// cycle 1), and maximal runs of equal depths land in the probe as
/// single positioned [`Probe::record_depths_at`] batches — the exact
/// histogram *and* telemetry windows a per-cycle [`Probe::sample_depth`]
/// sequence would have produced, at one integer compare per cycle for
/// the (common) steady-state plateaus.
#[derive(Debug)]
pub struct DepthRuns {
    id: ProbeId,
    depth: usize,
    run: u64,
    /// Run-relative cycle of the current run's first sample.
    at: u64,
}

impl DepthRuns {
    /// Start an empty series for component `id`.
    pub fn new(id: ProbeId) -> Self {
        Self {
            id,
            depth: 0,
            run: 0,
            at: 1,
        }
    }

    /// Observe this cycle's depth.
    pub fn push(&mut self, probe: &mut Probe, depth: usize) {
        if depth == self.depth {
            self.run += 1;
        } else {
            probe.record_depths_at(self.id, self.depth, self.at, self.run);
            self.at += self.run;
            self.depth = depth;
            self.run = 1;
        }
    }

    /// Flush the trailing run.
    pub fn finish(self, probe: &mut Probe) {
        probe.record_depths_at(self.id, self.depth, self.at, self.run);
    }
}

/// Number of occupancy-histogram buckets per component.
const OCCUPANCY_BUCKETS: usize = 64;

#[derive(Debug, Clone)]
struct Comp {
    name: String,
    stalls: [u64; 4],
    last_stall: Option<(StallCause, u64)>,
    busy_marks: u64,
    hist: Histogram,
    depth_sum: u64,
    high_water: usize,
    last_total: u64,
    wave_last: Option<usize>,
    waveform: Vec<(u64, usize)>,
    stall_events: Vec<(u64, StallCause)>,
}

impl Comp {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            stalls: [0; 4],
            last_stall: None,
            busy_marks: 0,
            hist: Histogram::new(OCCUPANCY_BUCKETS),
            depth_sum: 0,
            high_water: 0,
            last_total: 0,
            wave_last: None,
            waveform: Vec::new(),
            stall_events: Vec::new(),
        }
    }
}

/// Copy of one component's always-on counters, exported by
/// [`Probe::component_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentStats {
    /// Component name as registered (e.g. `"dot/front-end"`).
    pub name: String,
    /// FP-issue marks the component recorded.
    pub busy_marks: u64,
    /// Stalled cycles per cause, indexed like [`StallCause::ALL`].
    pub stalls: [u64; 4],
    /// Highest occupancy sampled.
    pub occupancy_high_water: usize,
    /// Number of occupancy samples taken.
    pub occupancy_samples: u64,
}

/// Snapshot of the probe's run-scoped counters, taken by the harness at
/// the start of a run so a shared probe can report per-run deltas.
#[derive(Debug, Clone, Copy)]
pub struct RunMark {
    busy_cycles: u64,
    flops: u64,
    words_in: u64,
    words_out: u64,
}

/// Instrumentation sink shared by every design in a run. See the module
/// docs for the summary/deep split.
#[derive(Debug, Clone)]
pub struct Probe {
    deep: bool,
    time_base: u64,
    now: u64,
    busy_this_cycle: bool,
    busy_cycles: u64,
    flops: u64,
    words_in: u64,
    words_out: u64,
    busy_wave_last: Option<bool>,
    busy_waveform: Vec<(u64, bool)>,
    comps: Vec<Comp>,
    /// Windowed time-series recorder; `None` (the default) keeps every
    /// telemetry hook to a single branch.
    telem: Option<TelemRecorder>,
}

impl Default for Probe {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe {
    /// A summary-mode probe: counters only, no waveforms.
    pub fn new() -> Self {
        Self {
            deep: false,
            time_base: 0,
            now: 0,
            busy_this_cycle: false,
            busy_cycles: 0,
            flops: 0,
            words_in: 0,
            words_out: 0,
            busy_wave_last: None,
            busy_waveform: Vec::new(),
            comps: Vec::new(),
            telem: None,
        }
    }

    /// A deep-mode probe: counters plus waveforms and trace events.
    pub fn deep() -> Self {
        let mut p = Self::new();
        p.deep = true;
        p
    }

    /// True if this probe records waveforms and trace events.
    pub fn is_deep(&self) -> bool {
        self.deep
    }

    /// Enable windowed telemetry (DESIGN.md §14): from now on every
    /// per-cycle sample is additionally folded into `window`-cycle
    /// windows, completion latencies are recorded, and one
    /// [`TelemSeries`] is sealed per run. Idempotent per window width;
    /// re-enabling with a different width restarts the recorder.
    pub fn enable_telemetry(&mut self, window: u64) {
        match &self.telem {
            Some(t) if t.window() == window => {}
            _ => self.telem = Some(TelemRecorder::new(window)),
        }
    }

    /// True if windowed telemetry is enabled. Fused fast-forward
    /// implementations that cannot position their batched records must
    /// check this and decline (return 0) so the cycle stepper produces
    /// the windows instead.
    pub fn telemetry_enabled(&self) -> bool {
        self.telem.is_some()
    }

    /// The telemetry window width, if telemetry is enabled.
    pub fn telemetry_window(&self) -> Option<u64> {
        self.telem.as_ref().map(TelemRecorder::window)
    }

    /// Drain the telemetry series sealed since the last call (one per
    /// completed run, oldest first). Empty if telemetry is disabled.
    pub fn take_telemetry(&mut self) -> Vec<TelemSeries> {
        self.telem
            .as_mut()
            .map(TelemRecorder::take)
            .unwrap_or_default()
    }

    /// The current run-relative cycle (1-based) — what
    /// [`Probe::begin_cycle`] last observed. Designs use this to
    /// timestamp block starts for completion-latency recording.
    pub fn run_cycle(&self) -> u64 {
        self.now - self.time_base
    }

    /// Register (or look up) a component by name. Registration is
    /// idempotent: a blocked driver re-running a design reuses the rows.
    ///
    /// Re-registration resets the [`Probe::sample_rate`] monotone base:
    /// designs rebuild their channels per run, so a new run's counters
    /// restart at zero, and carrying the previous run's base across
    /// would make the first delta of the new run depend on what else the
    /// shared harness executed before it.
    pub fn component(&mut self, name: &str) -> ProbeId {
        if let Some(i) = self.comps.iter().position(|c| c.name == name) {
            self.comps[i].last_total = 0;
            return ProbeId(i);
        }
        self.comps.push(Comp::new(name));
        ProbeId(self.comps.len() - 1)
    }

    // ---- per-cycle recording (called by the harness and designs) ----

    /// Start a cycle. Called by the harness; `cycle` is 1-based within
    /// the current run.
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.now = self.time_base + cycle;
        self.busy_this_cycle = false;
        if let Some(t) = self.telem.as_mut() {
            t.begin_cycle(cycle);
        }
    }

    /// Close the cycle: fold the FP-issue flag into `busy_cycles`.
    pub fn end_cycle(&mut self) {
        if self.busy_this_cycle {
            self.busy_cycles += 1;
            if let Some(t) = self.telem.as_mut() {
                t.busy_cycle();
            }
        }
        if self.deep && self.busy_wave_last != Some(self.busy_this_cycle) {
            self.busy_wave_last = Some(self.busy_this_cycle);
            self.busy_waveform.push((self.now, self.busy_this_cycle));
        }
    }

    /// Advance the trace time base past a finished run of `cycles`
    /// cycles, so consecutive runs through one probe do not overlap on
    /// the exported timeline. Seals the run's telemetry series, if
    /// telemetry is enabled.
    pub fn finish_run(&mut self, cycles: u64) {
        if let Some(t) = self.telem.as_mut() {
            let names: Vec<String> = self.comps.iter().map(|c| c.name.clone()).collect();
            t.seal(cycles, &names);
        }
        self.time_base += cycles + 1;
    }

    /// Mark a floating-point issue by `id` this cycle. Any mark makes the
    /// cycle a busy cycle; the per-component mark count is kept for
    /// attribution.
    pub fn busy(&mut self, id: ProbeId) {
        self.busy_this_cycle = true;
        self.comps[id.0].busy_marks += 1;
        if let Some(t) = self.telem.as_mut() {
            t.busy_mark(id.0);
        }
    }

    /// Account `n` floating-point operations.
    pub fn flops(&mut self, n: u64) {
        self.flops += n;
    }

    /// Account `n` words read from external memory.
    pub fn io_in(&mut self, n: u64) {
        self.words_in += n;
    }

    /// Account `n` words written to external memory.
    pub fn io_out(&mut self, n: u64) {
        self.words_out += n;
    }

    /// Attribute a stalled cycle of component `id` to `cause`.
    pub fn stall(&mut self, id: ProbeId, cause: StallCause) {
        let c = &mut self.comps[id.0];
        c.stalls[cause.index()] += 1;
        c.last_stall = Some((cause, self.now));
        if self.deep {
            c.stall_events.push((self.now, cause));
        }
        if let Some(t) = self.telem.as_mut() {
            t.stall(id.0, cause.index());
        }
    }

    /// Sample an occupancy (FIFO depth, pipeline fill, buffered words)
    /// for component `id`: feeds the occupancy histogram and the
    /// high-water mark; in deep mode also the change-compressed waveform.
    pub fn sample_depth(&mut self, id: ProbeId, depth: usize) {
        let c = &mut self.comps[id.0];
        c.hist.record(depth);
        c.depth_sum += depth as u64;
        c.high_water = c.high_water.max(depth);
        if self.deep && c.wave_last != Some(depth) {
            c.wave_last = Some(depth);
            c.waveform.push((self.now, depth));
        }
        if let Some(t) = self.telem.as_mut() {
            t.depth_sample(id.0, depth as u64);
        }
    }

    /// Record the completion latency (in cycles) of one block/request
    /// attributed to component `id`. Feeds the per-component
    /// [`LogHistogram`](crate::stats::LogHistogram) of the current
    /// telemetry series; a no-op while telemetry is disabled, so the
    /// always-on probe cost is unchanged.
    pub fn latency(&mut self, id: ProbeId, cycles: u64) {
        if let Some(t) = self.telem.as_mut() {
            t.latency(id.0, cycles, 1);
        }
    }

    /// Batched [`Probe::latency`]: `n` blocks that all completed with
    /// the same latency (histograms are order-free, so fused
    /// fast-forward replays use this for constant-latency pipelines).
    pub fn record_latencies(&mut self, id: ProbeId, cycles: u64, n: u64) {
        if let Some(t) = self.telem.as_mut() {
            t.latency(id.0, cycles, n);
        }
    }

    /// Sample a monotone word counter (e.g. a channel's total words
    /// delivered): the per-cycle delta is recorded as the component's
    /// utilization sample, so the histogram shows words/cycle.
    pub fn sample_rate(&mut self, id: ProbeId, total: u64) {
        let delta = total.saturating_sub(self.comps[id.0].last_total) as usize;
        self.comps[id.0].last_total = total;
        self.sample_depth(id, delta);
    }

    // ---- batched recording (fast-forward reconstruction) ----
    //
    // A fused fast-forward (DESIGN.md §13) reconstructs the counters a
    // cycle-stepped run would have produced without paying one method
    // call per cycle: it accumulates plain integers in its replay loop
    // and lands them here in bulk. Every summary-mode counter is a sum,
    // a max or a last-write, so batched application is exact — the
    // parity suites assert bit-equality of the resulting reports. Deep
    // probes are excluded (the harness never fast-forwards them):
    // waveforms and trace events are order-sensitive and genuinely need
    // the per-cycle path.

    /// Batched [`Probe::end_cycle`] outcome: add `n` busy cycles.
    pub fn record_busy_cycles(&mut self, n: u64) {
        debug_assert!(!self.deep, "bulk recording on a deep probe");
        debug_assert!(
            self.telem.is_none(),
            "unpositioned batch recording with telemetry enabled; \
             use record_busy_cycles_at"
        );
        self.busy_cycles += n;
    }

    /// Batched [`Probe::busy`]: add `n` FP-issue marks to `id` without
    /// touching the per-cycle busy flag (pair with
    /// [`Probe::record_busy_cycles`]).
    pub fn record_busy_marks(&mut self, id: ProbeId, n: u64) {
        debug_assert!(!self.deep, "bulk recording on a deep probe");
        debug_assert!(
            self.telem.is_none(),
            "unpositioned batch recording with telemetry enabled; \
             use record_busy_marks_at"
        );
        self.comps[id.0].busy_marks += n;
    }

    /// Batched [`Probe::stall`]: attribute `n` stalled cycles of `id` to
    /// `cause`, the latest at run-relative cycle `last_cycle` (feeds the
    /// stall diagnosis exactly like the per-cycle path). No-op when
    /// `n == 0`.
    pub fn record_stalls(&mut self, id: ProbeId, cause: StallCause, n: u64, last_cycle: u64) {
        debug_assert!(!self.deep, "bulk recording on a deep probe");
        debug_assert!(
            self.telem.is_none(),
            "unpositioned batch recording with telemetry enabled; \
             use record_stalls_at"
        );
        if n == 0 {
            return;
        }
        let c = &mut self.comps[id.0];
        c.stalls[cause.index()] += n;
        c.last_stall = Some((cause, self.time_base + last_cycle));
    }

    /// Batched [`Probe::sample_depth`]: record `n` occupancy samples of
    /// the same `depth` for `id`. No-op when `n == 0`.
    pub fn record_depths(&mut self, id: ProbeId, depth: usize, n: u64) {
        debug_assert!(!self.deep, "bulk recording on a deep probe");
        debug_assert!(
            self.telem.is_none(),
            "unpositioned batch recording with telemetry enabled; \
             use record_depths_at"
        );
        if n == 0 {
            return;
        }
        let c = &mut self.comps[id.0];
        c.hist.record_n(depth, n);
        c.depth_sum += depth as u64 * n;
        c.high_water = c.high_water.max(depth);
    }

    // ---- positioned batched recording (telemetry-aware fast-forward) ----
    //
    // When windowed telemetry is enabled an aggregate count is not
    // enough: the recorder must know *which* run-relative cycles a batch
    // covers so it can split the count across windows. The `_at` variants
    // take a 1-based span start `start` (covering `start..start + n`),
    // update exactly the same always-on counters as their unpositioned
    // twins, and additionally feed the telemetry windows. The fused
    // fast-forwards use only these, so one code path serves telemetry-on
    // and telemetry-off runs; the unpositioned variants debug-assert
    // telemetry is off so an accidental mix is caught in tests.

    /// Positioned [`Probe::record_busy_cycles`]: `n` busy cycles covering
    /// run-relative cycles `start..start + n`. No-op when `n == 0`.
    pub fn record_busy_cycles_at(&mut self, start: u64, n: u64) {
        debug_assert!(!self.deep, "bulk recording on a deep probe");
        if n == 0 {
            return;
        }
        self.busy_cycles += n;
        if let Some(t) = self.telem.as_mut() {
            t.busy_cycles_at(start, n);
        }
    }

    /// Positioned [`Probe::record_busy_marks`]: one FP-issue mark of `id`
    /// per cycle of `start..start + n`. No-op when `n == 0`.
    pub fn record_busy_marks_at(&mut self, id: ProbeId, start: u64, n: u64) {
        debug_assert!(!self.deep, "bulk recording on a deep probe");
        if n == 0 {
            return;
        }
        self.comps[id.0].busy_marks += n;
        if let Some(t) = self.telem.as_mut() {
            t.busy_marks_at(id.0, start, n);
        }
    }

    /// Positioned [`Probe::record_stalls`]: one stalled cycle of `id`
    /// attributed to `cause` per cycle of `start..start + n`; the stall
    /// diagnosis sees the span's last cycle. No-op when `n == 0`.
    pub fn record_stalls_at(&mut self, id: ProbeId, cause: StallCause, start: u64, n: u64) {
        debug_assert!(!self.deep, "bulk recording on a deep probe");
        if n == 0 {
            return;
        }
        let c = &mut self.comps[id.0];
        c.stalls[cause.index()] += n;
        c.last_stall = Some((cause, self.time_base + start + n - 1));
        if let Some(t) = self.telem.as_mut() {
            t.stalls_at(id.0, cause.index(), start, n);
        }
    }

    /// Positioned [`Probe::record_depths`]: one occupancy sample of
    /// `depth` for `id` per cycle of `start..start + n`. No-op when
    /// `n == 0`.
    pub fn record_depths_at(&mut self, id: ProbeId, depth: usize, start: u64, n: u64) {
        debug_assert!(!self.deep, "bulk recording on a deep probe");
        if n == 0 {
            return;
        }
        let c = &mut self.comps[id.0];
        c.hist.record_n(depth, n);
        c.depth_sum += depth as u64 * n;
        c.high_water = c.high_water.max(depth);
        if let Some(t) = self.telem.as_mut() {
            t.depths_at(id.0, depth as u64, start, n);
        }
    }

    /// Batched [`Probe::sample_rate`] epilogue: after recording a run's
    /// per-cycle word deltas via [`Probe::record_depths`], advance the
    /// monotone base so a later per-cycle `sample_rate` continues from
    /// the right total.
    pub fn record_rate_base(&mut self, id: ProbeId, total: u64) {
        debug_assert!(!self.deep, "bulk recording on a deep probe");
        self.comps[id.0].last_total = total;
    }

    // ---- queries ----

    /// Busy cycles accumulated so far (across all runs on this probe).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Highest occupancy sampled for `id`.
    pub fn high_water(&self, id: ProbeId) -> usize {
        self.comps[id.0].high_water
    }

    /// Occupancy histogram of `id` (every [`Probe::sample_depth`] sample).
    pub fn occupancy(&self, id: ProbeId) -> &Histogram {
        &self.comps[id.0].hist
    }

    /// Stalled cycles of `id` attributed to `cause`.
    pub fn stalls(&self, id: ProbeId, cause: StallCause) -> u64 {
        self.comps[id.0].stalls[cause.index()]
    }

    /// Total stalled cycles of `id` across all causes.
    pub fn total_stalls(&self, id: ProbeId) -> u64 {
        self.comps[id.0].stalls.iter().sum()
    }

    /// FP-issue marks recorded by `id`.
    pub fn busy_marks(&self, id: ProbeId) -> u64 {
        self.comps[id.0].busy_marks
    }

    /// Aggregated stall totals across all components, indexed like
    /// [`StallCause::ALL`]. Snapshot before and after a run to attribute
    /// a single run's stalls on a shared probe (the `RunRecord`
    /// conversion path does exactly this).
    pub fn stall_totals(&self) -> [u64; 4] {
        let mut totals = [0u64; 4];
        for c in &self.comps {
            for (t, s) in totals.iter_mut().zip(&c.stalls) {
                *t += s;
            }
        }
        totals
    }

    /// Per-component counter snapshot, in registration order: one
    /// [`ComponentStats`] per registered component. This is the read-only
    /// export surface for observability tooling (run records, external
    /// dashboards) — it copies the cheap counters and leaves waveforms to
    /// the trace exporters.
    pub fn component_stats(&self) -> Vec<ComponentStats> {
        self.comps
            .iter()
            .map(|c| ComponentStats {
                name: c.name.clone(),
                busy_marks: c.busy_marks,
                stalls: c.stalls,
                occupancy_high_water: c.high_water,
                occupancy_samples: c.hist.samples(),
            })
            .collect()
    }

    /// Snapshot the run-scoped counters; the harness pairs this with
    /// [`Probe::report_since`] to produce per-run reports from a shared
    /// probe.
    pub fn mark(&self) -> RunMark {
        RunMark {
            busy_cycles: self.busy_cycles,
            flops: self.flops,
            words_in: self.words_in,
            words_out: self.words_out,
        }
    }

    /// Build the report for a run of `cycles` cycles that started at
    /// `mark`.
    pub fn report_since(&self, mark: &RunMark, cycles: u64) -> crate::SimReport {
        crate::SimReport {
            cycles,
            flops: self.flops - mark.flops,
            words_in: self.words_in - mark.words_in,
            words_out: self.words_out - mark.words_out,
            busy_cycles: self.busy_cycles - mark.busy_cycles,
        }
    }

    /// One-line description of the most recently stalled component, for
    /// the livelock watchdog: names the component, its last stall cause
    /// and its per-cause totals.
    pub fn stall_diagnosis(&self) -> String {
        let last = self
            .comps
            .iter()
            .filter_map(|c| c.last_stall.map(|(cause, at)| (at, cause, c)))
            .max_by_key(|&(at, _, _)| at);
        match last {
            None => "no stalls recorded by probes".to_string(),
            Some((at, cause, c)) => {
                let totals: Vec<String> = StallCause::ALL
                    .iter()
                    .map(|&k| format!("{}={}", k.name(), c.stalls[k.index()]))
                    .collect();
                format!(
                    "last stall: component '{}' {} at cycle {} ({})",
                    c.name,
                    cause.name(),
                    at,
                    totals.join(", ")
                )
            }
        }
    }

    // ---- exporters ----

    /// Summary of every counter as a JSON object. Deterministic: field
    /// and component order are fixed, all values are integers.
    pub fn summary_json(&self) -> String {
        let mut comps = Vec::with_capacity(self.comps.len());
        for c in &self.comps {
            let stalls: Vec<String> = StallCause::ALL
                .iter()
                .map(|&k| format!("\"{}\":{}", k.name(), c.stalls[k.index()]))
                .collect();
            let samples = c.hist.samples();
            let mean_milli = (c.depth_sum * 1000).checked_div(samples).unwrap_or(0);
            comps.push(format!(
                "{{\"name\":\"{}\",\"busy_marks\":{},\"stalls\":{{{}}},\
                 \"occupancy_high_water\":{},\"occupancy_samples\":{},\
                 \"occupancy_mean_milli\":{}}}",
                escape(&c.name),
                c.busy_marks,
                stalls.join(","),
                c.high_water,
                samples,
                mean_milli,
            ));
        }
        format!(
            "{{\"busy_cycles\":{},\"flops\":{},\"words_in\":{},\
             \"words_out\":{},\"components\":[{}]}}",
            self.busy_cycles,
            self.flops,
            self.words_in,
            self.words_out,
            comps.join(",")
        )
    }

    /// Export the recorded timeline as a Chrome `trace_event` JSON
    /// document (load in `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// Emits, per component: a thread-name metadata record, an occupancy
    /// counter track ("C" events, one per change), and one complete-span
    /// ("X") event per contiguous stall run, named by its cause. When
    /// windowed telemetry is enabled, per-window counter tracks ride
    /// along: a global busy-cycles-per-window track plus one
    /// busy/stalled track per active component, one "C" event per
    /// window, timestamped at the window's first cycle on the same
    /// multi-run timeline the waveforms use. The output is deterministic
    /// down to the byte for a given run (the golden-trace test relies on
    /// this). Time is reported in cycle-as-microsecond units. Waveforms
    /// and stall spans are only recorded on a deep probe; a summary
    /// probe exports metadata (and telemetry tracks, if enabled) but no
    /// per-cycle events.
    pub fn chrome_trace(&self) -> String {
        let mut ev: Vec<String> = Vec::new();
        ev.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"fblas harness\"}}"
                .to_string(),
        );
        for (i, c) in self.comps.iter().enumerate() {
            ev.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                i + 1,
                escape(&c.name)
            ));
        }
        for (at, busy) in &self.busy_waveform {
            ev.push(format!(
                "{{\"name\":\"fp busy\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\
                 \"ts\":{},\"args\":{{\"busy\":{}}}}}",
                at,
                u8::from(*busy)
            ));
        }
        for (i, c) in self.comps.iter().enumerate() {
            for (at, depth) in &c.waveform {
                ev.push(format!(
                    "{{\"name\":\"{} occupancy\",\"ph\":\"C\",\"pid\":1,\
                     \"tid\":{},\"ts\":{},\"args\":{{\"depth\":{}}}}}",
                    escape(&c.name),
                    i + 1,
                    at,
                    depth
                ));
            }
            for (start, dur, cause) in merge_spans(&c.stall_events) {
                ev.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                     \"ts\":{},\"dur\":{},\"args\":{{\"component\":\"{}\"}}}}",
                    cause.name(),
                    i + 1,
                    start,
                    dur,
                    escape(&c.name)
                ));
            }
        }
        if let Some(t) = self.telem.as_ref() {
            // Per-run series are run-relative; reconstruct each run's
            // absolute start offset by walking the sealed list the same
            // way finish_run advances the time base (cycles + 1 apart).
            let mut offset = 0u64;
            for s in t.sealed() {
                for (w, &busy) in s.busy.iter().enumerate() {
                    ev.push(format!(
                        "{{\"name\":\"busy/window\",\"ph\":\"C\",\"pid\":1,\
                         \"tid\":0,\"ts\":{},\"args\":{{\"busy\":{}}}}}",
                        offset + w as u64 * s.window + 1,
                        busy
                    ));
                }
                for c in &s.comps {
                    let tid = self
                        .comps
                        .iter()
                        .position(|p| p.name == c.name)
                        .map_or(0, |i| i + 1);
                    for w in 0..s.windows() {
                        let stalled: u64 = c.stalls.iter().map(|v| v[w]).sum();
                        ev.push(format!(
                            "{{\"name\":\"{}/window\",\"ph\":\"C\",\"pid\":1,\
                             \"tid\":{},\"ts\":{},\
                             \"args\":{{\"busy\":{},\"stalled\":{}}}}}",
                            escape(&c.name),
                            tid,
                            offset + w as u64 * s.window + 1,
                            c.busy[w],
                            stalled
                        ));
                    }
                }
                offset += s.cycles + 1;
            }
        }
        format!(
            "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n",
            ev.join(",\n")
        )
    }

    /// Write [`Probe::chrome_trace`] to `path`.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace())
    }
}

/// Merge per-cycle stall events into contiguous (start, duration, cause)
/// spans. Events arrive in nondecreasing cycle order.
fn merge_spans(events: &[(u64, StallCause)]) -> Vec<(u64, u64, StallCause)> {
    let mut spans: Vec<(u64, u64, StallCause)> = Vec::new();
    for &(at, cause) in events {
        match spans.last_mut() {
            Some((start, dur, c)) if *c == cause && at == *start + *dur => *dur += 1,
            _ => spans.push((at, 1, cause)),
        }
    }
    spans
}

/// Escape a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut p = Probe::new();
        let a = p.component("a");
        p.begin_cycle(1);
        p.busy(a);
        p.flops(2);
        p.io_in(4);
        p.end_cycle();
        p.begin_cycle(2);
        p.stall(a, StallCause::InputStarved);
        p.end_cycle();
        assert_eq!(p.busy_cycles(), 1);
        assert_eq!(p.stalls(a, StallCause::InputStarved), 1);
        assert_eq!(p.total_stalls(a), 1);
        assert_eq!(p.busy_marks(a), 1);
    }

    #[test]
    fn stall_totals_aggregate_across_components() {
        let mut p = Probe::new();
        let a = p.component("a");
        let b = p.component("b");
        p.begin_cycle(1);
        p.stall(a, StallCause::InputStarved);
        p.stall(b, StallCause::InputStarved);
        p.stall(b, StallCause::Drain);
        p.end_cycle();
        assert_eq!(p.stall_totals(), [2, 0, 0, 1]);
    }

    #[test]
    fn component_stats_snapshot_copies_counters() {
        let mut p = Probe::new();
        let a = p.component("alpha");
        p.begin_cycle(1);
        p.busy(a);
        p.sample_depth(a, 9);
        p.stall(a, StallCause::HazardWindow);
        p.end_cycle();
        let stats = p.component_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "alpha");
        assert_eq!(stats[0].busy_marks, 1);
        assert_eq!(stats[0].stalls, [0, 0, 1, 0]);
        assert_eq!(stats[0].occupancy_high_water, 9);
        assert_eq!(stats[0].occupancy_samples, 1);
    }

    #[test]
    fn component_registration_is_idempotent() {
        let mut p = Probe::new();
        let a = p.component("x");
        let b = p.component("x");
        assert_eq!(a, b);
        assert_ne!(p.component("y"), a);
    }

    #[test]
    fn report_since_returns_deltas() {
        let mut p = Probe::new();
        p.begin_cycle(1);
        p.flops(10);
        p.io_in(3);
        p.io_out(1);
        p.end_cycle();
        let m = p.mark();
        p.begin_cycle(2);
        let a = p.component("a");
        p.busy(a);
        p.flops(5);
        p.end_cycle();
        let r = p.report_since(&m, 1);
        assert_eq!(r.cycles, 1);
        assert_eq!(r.flops, 5);
        assert_eq!(r.words_in, 0);
        assert_eq!(r.busy_cycles, 1);
    }

    #[test]
    fn depth_sampling_tracks_high_water_and_histogram() {
        let mut p = Probe::new();
        let f = p.component("fifo");
        for d in [0usize, 3, 7, 2] {
            p.begin_cycle(1);
            p.sample_depth(f, d);
            p.end_cycle();
        }
        assert_eq!(p.high_water(f), 7);
        assert_eq!(p.occupancy(f).samples(), 4);
        assert_eq!(p.occupancy(f).max_seen(), 7);
    }

    #[test]
    fn rate_sampling_records_deltas() {
        let mut p = Probe::new();
        let ch = p.component("chan");
        p.sample_rate(ch, 4);
        p.sample_rate(ch, 7);
        p.sample_rate(ch, 7);
        assert_eq!(p.high_water(ch), 4);
        assert_eq!(p.occupancy(ch).samples(), 3);
    }

    #[test]
    fn deep_waveforms_are_change_compressed() {
        let mut p = Probe::deep();
        let f = p.component("fifo");
        for (cy, d) in [(1u64, 2usize), (2, 2), (3, 5), (4, 5), (5, 1)] {
            p.begin_cycle(cy);
            p.sample_depth(f, d);
            p.end_cycle();
        }
        let trace = p.chrome_trace();
        // Three changes → three counter events for the fifo.
        assert_eq!(trace.matches("fifo occupancy").count(), 3);
    }

    #[test]
    fn stall_spans_merge() {
        let ev = [
            (3u64, StallCause::Drain),
            (4, StallCause::Drain),
            (5, StallCause::InputStarved),
            (9, StallCause::InputStarved),
        ];
        let spans = merge_spans(&ev);
        assert_eq!(
            spans,
            vec![
                (3, 2, StallCause::Drain),
                (5, 1, StallCause::InputStarved),
                (9, 1, StallCause::InputStarved),
            ]
        );
    }

    #[test]
    fn diagnosis_names_latest_stall() {
        let mut p = Probe::new();
        let a = p.component("alpha");
        let b = p.component("beta");
        p.begin_cycle(1);
        p.stall(a, StallCause::InputStarved);
        p.end_cycle();
        p.begin_cycle(2);
        p.stall(b, StallCause::HazardWindow);
        p.end_cycle();
        let d = p.stall_diagnosis();
        assert!(d.contains("beta"), "{d}");
        assert!(d.contains("hazard-window"), "{d}");
    }

    #[test]
    fn summary_json_is_valid_shape() {
        let mut p = Probe::new();
        let a = p.component("a");
        p.begin_cycle(1);
        p.busy(a);
        p.sample_depth(a, 3);
        p.end_cycle();
        let j = p.summary_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"busy_cycles\":1"));
        assert!(j.contains("\"occupancy_high_water\":3"));
    }

    #[test]
    fn trace_is_deterministic() {
        let run = || {
            let mut p = Probe::deep();
            let a = p.component("a");
            for cy in 1..=10u64 {
                p.begin_cycle(cy);
                if cy % 3 == 0 {
                    p.stall(a, StallCause::OutputBackpressured);
                } else {
                    p.busy(a);
                }
                p.sample_depth(a, (cy % 4) as usize);
                p.end_cycle();
            }
            p.chrome_trace()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn telemetry_windows_fold_per_cycle_samples() {
        let mut p = Probe::new();
        p.enable_telemetry(4);
        let a = p.component("a");
        for cy in 1..=10u64 {
            p.begin_cycle(cy);
            if cy <= 6 {
                p.busy(a);
                p.sample_depth(a, 2);
            } else {
                p.stall(a, StallCause::Drain);
            }
            p.end_cycle();
        }
        p.latency(a, 7);
        p.finish_run(10);
        let series = p.take_telemetry();
        assert_eq!(series.len(), 1);
        let s = &series[0];
        assert_eq!(s.cycles, 10);
        assert_eq!(s.busy, vec![4, 2, 0]);
        assert_eq!(s.comps.len(), 1);
        assert_eq!(s.comps[0].busy, vec![4, 2, 0]);
        assert_eq!(s.comps[0].stalls[StallCause::Drain.index()], vec![0, 2, 2]);
        assert_eq!(s.comps[0].depth_sum, vec![8, 4, 0]);
        assert_eq!(s.comps[0].depth_samples, vec![4, 2, 0]);
        assert_eq!(s.comps[0].latency.samples(), 1);
        assert_eq!(s.comps[0].latency.percentile(0.5), 7);
        assert!(p.take_telemetry().is_empty(), "take drains");
    }

    #[test]
    fn telemetry_disabled_records_and_returns_nothing() {
        let mut p = Probe::new();
        let a = p.component("a");
        p.begin_cycle(1);
        p.busy(a);
        p.latency(a, 3);
        p.end_cycle();
        p.finish_run(1);
        assert!(!p.telemetry_enabled());
        assert!(p.take_telemetry().is_empty());
    }

    #[test]
    fn positioned_batches_match_per_cycle_telemetry() {
        let stepped = {
            let mut p = Probe::new();
            p.enable_telemetry(4);
            let a = p.component("a");
            for cy in 1..=10u64 {
                p.begin_cycle(cy);
                if (3..=9).contains(&cy) {
                    p.busy(a);
                    p.sample_depth(a, 5);
                } else {
                    p.stall(a, StallCause::InputStarved);
                }
                p.end_cycle();
            }
            p.finish_run(10);
            p
        };
        let batched = {
            let mut p = Probe::new();
            p.enable_telemetry(4);
            let a = p.component("a");
            p.record_busy_cycles_at(3, 7);
            p.record_busy_marks_at(a, 3, 7);
            p.record_depths_at(a, 5, 3, 7);
            p.record_stalls_at(a, StallCause::InputStarved, 1, 2);
            p.record_stalls_at(a, StallCause::InputStarved, 10, 1);
            p.finish_run(10);
            p
        };
        assert_eq!(
            stepped.clone().take_telemetry(),
            batched.clone().take_telemetry()
        );
        assert_eq!(stepped.busy_cycles(), batched.busy_cycles());
        assert_eq!(stepped.component_stats(), batched.component_stats());
    }

    #[test]
    fn positioned_stalls_feed_the_diagnosis() {
        let mut p = Probe::new();
        p.enable_telemetry(4);
        let a = p.component("alpha");
        p.record_stalls_at(a, StallCause::Drain, 5, 3);
        let d = p.stall_diagnosis();
        assert!(d.contains("alpha"), "{d}");
        assert!(d.contains("at cycle 7"), "{d}");
    }

    #[test]
    fn enable_telemetry_is_idempotent_per_width() {
        let mut p = Probe::new();
        p.enable_telemetry(8);
        let a = p.component("a");
        p.begin_cycle(1);
        p.busy(a);
        p.end_cycle();
        p.enable_telemetry(8); // same width: keeps the recorder
        p.finish_run(1);
        assert_eq!(p.take_telemetry().len(), 1);
        assert_eq!(p.telemetry_window(), Some(8));
        p.enable_telemetry(16); // new width: restarts
        assert_eq!(p.telemetry_window(), Some(16));
    }

    #[test]
    fn chrome_trace_folds_telemetry_counter_tracks() {
        let mut p = Probe::new();
        p.enable_telemetry(4);
        let a = p.component("a");
        for cy in 1..=6u64 {
            p.begin_cycle(cy);
            p.busy(a);
            p.end_cycle();
        }
        p.finish_run(6);
        // Second run: offsets continue past cycles + 1.
        p.begin_cycle(1);
        p.busy(a);
        p.end_cycle();
        p.finish_run(1);
        let trace = p.chrome_trace();
        assert!(trace.contains("\"name\":\"busy/window\""), "{trace}");
        assert!(trace.contains("\"name\":\"a/window\""), "{trace}");
        // Run 1 windows start at ts 1 and 5; run 2's single window at 8.
        assert!(trace.contains("\"ts\":5"), "{trace}");
        assert!(trace.contains("\"ts\":8"), "{trace}");
    }

    #[test]
    fn finish_run_offsets_timeline() {
        let mut p = Probe::deep();
        let a = p.component("a");
        p.begin_cycle(1);
        p.sample_depth(a, 1);
        p.end_cycle();
        p.finish_run(1);
        p.begin_cycle(1);
        p.sample_depth(a, 2);
        p.end_cycle();
        let trace = p.chrome_trace();
        assert!(trace.contains("\"ts\":1"));
        assert!(trace.contains("\"ts\":3"), "{trace}");
    }
}
