//! Fixed-latency delay line: the timing model of a pipelined functional unit.
//!
//! A floating-point adder with α pipeline stages accepts (at most) one new
//! operation per cycle and produces the corresponding result exactly α
//! cycles later. [`DelayLine`] models exactly that: a ring buffer of
//! `latency` slots, each either empty (`None`, a pipeline bubble) or
//! carrying an in-flight value.
//!
//! The read-after-write hazard that motivates the paper's reduction circuit
//! falls straight out of this model: a value pushed at cycle `t` is not
//! observable until cycle `t + latency`, so a dependent operation issued
//! before then would read stale data.

/// A pipeline with fixed latency and an issue rate of one item per cycle.
///
/// Each call to [`DelayLine::step`] advances the pipeline one cycle: the
/// item that entered `latency` cycles ago (if any) emerges, and the new
/// item (if any) enters stage 0.
///
/// # Examples
///
/// ```
/// use fblas_sim::DelayLine;
///
/// // A 3-stage pipeline: a value emerges exactly 3 steps after entering.
/// let mut pipe = DelayLine::new(3);
/// assert_eq!(pipe.step(Some("op")), None);
/// assert_eq!(pipe.step(None), None);
/// assert_eq!(pipe.step(None), None);
/// assert_eq!(pipe.step(None), Some("op"));
/// ```
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    slots: Vec<Option<T>>,
    /// Index of the slot that will emerge on the next `step`.
    head: usize,
    in_flight: usize,
    total_entered: u64,
    total_cycles: u64,
}

impl<T> DelayLine<T> {
    /// Create a delay line with the given latency in cycles.
    ///
    /// # Panics
    /// Panics if `latency` is zero; a zero-latency unit is combinational
    /// and needs no delay line.
    pub fn new(latency: usize) -> Self {
        assert!(latency > 0, "delay line latency must be >= 1");
        let mut slots = Vec::with_capacity(latency);
        slots.resize_with(latency, || None);
        Self {
            slots,
            head: 0,
            in_flight: 0,
            total_entered: 0,
            total_cycles: 0,
        }
    }

    /// The pipeline depth in cycles.
    pub fn latency(&self) -> usize {
        self.slots.len()
    }

    /// Number of items currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// True if no items are in flight (all slots are bubbles).
    pub fn is_empty(&self) -> bool {
        self.in_flight == 0
    }

    /// The item that will emerge on the *next* [`DelayLine::step`], if any.
    ///
    /// Synchronous designs need this to route a result in the same cycle
    /// in which it becomes architecturally visible, before deciding what
    /// to issue next (hardware sees both on the same clock edge).
    pub fn peek(&self) -> Option<&T> {
        self.slots[self.head].as_ref()
    }

    /// Advance one cycle: insert `input` into the first stage and return
    /// whatever reaches the last stage this cycle.
    pub fn step(&mut self, input: Option<T>) -> Option<T> {
        self.total_cycles += 1;
        if input.is_some() {
            self.total_entered += 1;
        }
        let out = std::mem::replace(&mut self.slots[self.head], input);
        match (&out, self.slots[self.head].is_some()) {
            (Some(_), false) => self.in_flight -= 1,
            (None, true) => self.in_flight += 1,
            _ => {}
        }
        self.head = (self.head + 1) % self.slots.len();
        out
    }

    /// Total items that have entered the pipeline.
    pub fn total_entered(&self) -> u64 {
        self.total_entered
    }

    /// Fraction of elapsed cycles in which a new item was issued.
    ///
    /// This is the pipeline utilization the paper maximizes: the reduction
    /// circuit keeps the single adder busy while the naive stalling design
    /// leaves it mostly idle.
    pub fn utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.total_entered as f64 / self.total_cycles as f64
        }
    }

    /// Sample the pipeline fill (items in flight) into a probe. Call once
    /// per cycle from the owning design.
    pub fn probe_occupancy(&self, probe: &mut crate::Probe, id: crate::ProbeId) {
        probe.sample_depth(id, self.in_flight);
    }

    /// Fault-injection hook: mutate the in-flight item at `stage` (0 =
    /// the slot emerging on the next step, reduced modulo the latency),
    /// modelling an SEU in a pipeline register. Returns false when the
    /// targeted stage holds a bubble — the fault is architecturally
    /// masked.
    ///
    /// Only call this from a [`Design::inject`](crate::Design::inject)
    /// implementation (enforced by the `fault-hook-purity` DRC rule).
    pub fn fault_mutate(&mut self, stage: usize, f: impl FnOnce(&mut T)) -> bool {
        let len = self.slots.len();
        let idx = (self.head + stage % len) % len;
        match self.slots[idx].as_mut() {
            Some(item) => {
                f(item);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_emerges_after_exactly_latency_cycles() {
        let mut d = DelayLine::new(14);
        assert_eq!(d.step(Some(7u32)), None);
        for _ in 0..13 {
            assert_eq!(d.step(None), None);
        }
        // 14th step after insertion: the value emerges.
        assert_eq!(d.step(None), Some(7));
    }

    #[test]
    fn back_to_back_issue_preserves_order_and_spacing() {
        let mut d = DelayLine::new(3);
        let mut out = Vec::new();
        for i in 0..10u32 {
            out.push(d.step(Some(i)));
        }
        for _ in 0..3 {
            out.push(d.step(None));
        }
        let got: Vec<u32> = out.into_iter().flatten().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bubbles_pass_through() {
        let mut d = DelayLine::new(2);
        assert_eq!(d.step(Some(1u8)), None);
        assert_eq!(d.step(None), None);
        assert_eq!(d.step(Some(2)), Some(1));
        assert_eq!(d.step(None), None);
        assert_eq!(d.step(None), Some(2));
        assert!(d.is_empty());
    }

    #[test]
    fn peek_previews_next_step_without_consuming() {
        let mut d = DelayLine::new(2);
        d.step(Some(5u8));
        assert_eq!(d.peek(), None);
        d.step(None);
        assert_eq!(d.peek(), Some(&5));
        assert_eq!(d.peek(), Some(&5)); // non-consuming
        assert_eq!(d.step(None), Some(5));
        assert_eq!(d.peek(), None);
    }

    #[test]
    fn in_flight_tracks_occupancy() {
        let mut d = DelayLine::new(4);
        d.step(Some(1u8));
        d.step(Some(2));
        assert_eq!(d.in_flight(), 2);
        d.step(None);
        d.step(None);
        assert_eq!(d.in_flight(), 2);
        d.step(None); // first emerges
        assert_eq!(d.in_flight(), 1);
        d.step(None); // second emerges
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn utilization_counts_issued_fraction() {
        let mut d = DelayLine::new(2);
        d.step(Some(0u8));
        d.step(None);
        d.step(Some(1));
        d.step(None);
        assert!((d.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_rejected() {
        DelayLine::<u8>::new(0);
    }

    #[test]
    fn fault_mutate_targets_stage_relative_to_emergence() {
        let mut d = DelayLine::new(3);
        d.step(Some(10u8)); // will emerge in 3 more steps
        d.step(Some(20u8));
        // Stage 1 is the slot emerging one step after the head: with two
        // items two steps from emerging, stage 1 holds the older item.
        assert!(d.fault_mutate(1, |v| *v += 1));
        assert!(!d.fault_mutate(0, |_| {}), "head slot is a bubble");
        assert_eq!(d.step(None), None);
        assert_eq!(d.step(None), Some(11));
        assert_eq!(d.step(None), Some(20));
    }
}
