//! Property-based tests of the simulation kernel primitives: the
//! architectures' correctness arguments rest on these invariants.

use fblas_sim::{DelayLine, Fifo, Throttle};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever enters a delay line leaves in order, exactly `latency`
    /// steps later, bubbles included.
    #[test]
    fn delay_line_preserves_order_and_latency(
        latency in 1usize..40,
        pattern in prop::collection::vec(any::<bool>(), 1..200)
    ) {
        let mut d = DelayLine::new(latency);
        let mut sent: Vec<(usize, usize)> = Vec::new(); // (value, step)
        let mut got: Vec<(usize, usize)> = Vec::new();
        let mut counter = 0usize;
        for (step, &fire) in pattern.iter().enumerate() {
            let input = fire.then(|| {
                counter += 1;
                sent.push((counter, step));
                counter
            });
            if let Some(v) = d.step(input) {
                got.push((v, step));
            }
        }
        // Drain.
        let mut step = pattern.len();
        while !d.is_empty() {
            if let Some(v) = d.step(None) {
                got.push((v, step));
            }
            step += 1;
        }
        prop_assert_eq!(got.len(), sent.len());
        for ((sv, s_in), (gv, s_out)) in sent.iter().zip(&got) {
            prop_assert_eq!(sv, gv, "order preserved");
            prop_assert_eq!(s_out - s_in, latency, "exact latency");
        }
    }

    /// A FIFO is exactly a queue: pop order equals push order, and the
    /// high-water mark equals the maximum in-flight count.
    #[test]
    fn fifo_is_a_queue(ops in prop::collection::vec(any::<bool>(), 1..300)) {
        let mut f = Fifo::new(1 << 20);
        let mut model = std::collections::VecDeque::new();
        let mut next = 0usize;
        let mut peak = 0usize;
        for op in ops {
            if op {
                f.push(next);
                model.push_back(next);
                next += 1;
                peak = peak.max(model.len());
            } else {
                prop_assert_eq!(f.pop(), model.pop_front());
            }
            prop_assert_eq!(f.len(), model.len());
        }
        prop_assert_eq!(f.high_water(), peak);
    }

    /// Under continuous demand, a throttle's delivered word count over T
    /// cycles is within one word of rate·T: no banked bursts, no loss.
    #[test]
    fn throttle_long_run_rate_is_exact(
        rate_millis in 10u64..4000, // rate in thousandths of a word/cycle
        cycles in 100u64..5000
    ) {
        let rate = rate_millis as f64 / 1000.0;
        let mut t = Throttle::new(rate);
        let mut delivered = 0u64;
        for _ in 0..cycles {
            t.tick();
            delivered += t.grant_up_to(u64::MAX);
        }
        let ideal = rate * cycles as f64;
        prop_assert!(
            (delivered as f64 - ideal).abs() <= rate.ceil() + 1.0,
            "delivered {delivered} vs ideal {ideal}"
        );
    }

    /// The throttle never grants more than its cumulative budget at any
    /// prefix of the run (causality).
    #[test]
    fn throttle_never_oversupplies_prefix(
        rate_millis in 10u64..4000,
        demand in prop::collection::vec(0u64..4, 1..300)
    ) {
        let rate = rate_millis as f64 / 1000.0;
        let mut t = Throttle::new(rate);
        let mut delivered = 0u64;
        for (i, &want) in demand.iter().enumerate() {
            t.tick();
            let got = t.grant_up_to(want);
            prop_assert!(got <= want);
            delivered += got;
            let budget = rate * (i + 1) as f64 + rate.ceil() + 1.0;
            prop_assert!(
                (delivered as f64) <= budget,
                "prefix {i}: delivered {delivered} > budget {budget}"
            );
        }
    }
}
