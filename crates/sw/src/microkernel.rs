//! Blocked softfloat microkernels: the *native* execution backend's
//! numeric engine (DESIGN.md §13).
//!
//! Under `ExecBackend::Native` a design's cost accounting still comes
//! from its fused fast-forward replay, but the numeric answer is
//! computed here — on the host, with packed panels and register-blocked
//! tiles in the style of an optimized CPU BLAS — while every FLOP is
//! routed through the `fblas-fpu` softfloat primitives so results stay
//! bit-compatible with the FPGA datapath's arithmetic.
//!
//! Bit-identity domains (pinned by tests here and by the parity suite
//! in `fblas-bench`):
//!
//! * [`axpy`], [`scal`] and the column-order [`gemv`] fold replicate the
//!   datapath's per-element operation order exactly, so they are
//!   bit-identical to the cycle-stepped designs for **all** inputs.
//! * [`dot`], [`asum`] and row-order matrix-vector products accumulate
//!   sequentially where the datapath uses a balanced adder tree plus
//!   the §4.3 reduction circuit; those agree bit-for-bit on
//!   association-independent data (e.g. the integer-valued workloads
//!   every committed benchmark uses) and to rounding otherwise.
//! * [`gemm`] accumulates each output element in ascending-q order from
//!   a zero seed regardless of blocking, so it is bit-identical to the
//!   crate's native-`f64` reference ladder on integer data and to any
//!   q-ascending softfloat evaluation on all data (blocking invariance,
//!   pinned by a randomized test).

use fblas_fpu::softfloat::{add_f64, mul_f64, SIGN_MASK};

/// Register-tile height (rows of C computed per microkernel call).
pub const MR: usize = 4;
/// Register-tile width (columns of C computed per microkernel call).
pub const NR: usize = 4;
/// Column-panel width used by [`gemv`] to keep the x slice hot.
const GEMV_PANEL: usize = 256;

/// |x| by clearing the sign bit — the datapath's wire-level magnitude.
#[inline]
fn magnitude(v: f64) -> f64 {
    f64::from_bits(v.to_bits() & !SIGN_MASK)
}

/// Softfloat dot product, sequential accumulation in index order.
pub fn dot(u: &[f64], v: &[f64]) -> f64 {
    assert_eq!(u.len(), v.len(), "vectors must have equal length");
    let mut acc = 0.0f64;
    for (a, b) in u.iter().zip(v) {
        acc = add_f64(acc, mul_f64(*a, *b));
    }
    acc
}

/// Softfloat y ← a·x + y, element order and operand order exactly as the
/// k-lane datapath computes it (`add(mul(a, xᵢ), yᵢ)`).
pub fn axpy(a: f64, x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "vectors must have equal length");
    x.iter()
        .zip(y)
        .map(|(xi, yi)| add_f64(mul_f64(a, *xi), *yi))
        .collect()
}

/// Softfloat x ← a·x, operand order as the multiplier lanes compute it.
pub fn scal(a: f64, x: &[f64]) -> Vec<f64> {
    x.iter().map(|xi| mul_f64(a, *xi)).collect()
}

/// Softfloat Σ|xᵢ|: free magnitude extraction, sequential accumulation.
pub fn asum(x: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for v in x {
        acc = add_f64(acc, magnitude(*v));
    }
    acc
}

/// Softfloat y ← A·x (+ y₀), dense row-major `rows × cols`.
///
/// Column-panelled for cache locality, but each `y[i]` accumulates
/// directly in ascending-j order from its seed — the same per-element
/// association the column-major MVM datapath produces (one
/// `add(yᵢ, aᵢⱼ·xⱼ)` per column), and the order the deduplicated native
/// ladder in [`crate::gemv`] uses.
pub fn gemv(a: &[f64], rows: usize, cols: usize, x: &[f64], y0: Option<&[f64]>) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(x.len(), cols, "x length mismatch");
    let mut y = match y0 {
        Some(seed) => {
            assert_eq!(seed.len(), rows, "y0 length mismatch");
            seed.to_vec()
        }
        None => vec![0.0f64; rows],
    };
    let mut lo = 0;
    while lo < cols {
        let hi = (lo + GEMV_PANEL).min(cols);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &a[i * cols + lo..i * cols + hi];
            let xs = &x[lo..hi];
            for (aij, xj) in row.iter().zip(xs) {
                *yi = add_f64(*yi, mul_f64(*aij, *xj));
            }
        }
        lo = hi;
    }
    y
}

/// Softfloat C ← A·B, dense row-major n×n, packed + register-blocked.
///
/// B is packed one NR-wide column panel at a time (contiguous, so the
/// q-loop streams it unit-stride); each MR×NR tile of C lives in a flat
/// register-tile accumulator array across the whole q sweep. Every
/// element still accumulates in ascending-q order from a zero seed, so
/// blocking never changes a single bit of the result.
pub fn gemm(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "A shape mismatch");
    assert_eq!(b.len(), n * n, "B shape mismatch");
    let mut c = vec![0.0f64; n * n];
    let mut bp = vec![0.0f64; n * NR];
    for j0 in (0..n).step_by(NR) {
        let nw = NR.min(n - j0);
        // Pack the B panel: bp[q·nw + jj] = B[q][j0 + jj].
        for q in 0..n {
            bp[q * nw..(q + 1) * nw].copy_from_slice(&b[q * n + j0..q * n + j0 + nw]);
        }
        for i0 in (0..n).step_by(MR) {
            let mh = MR.min(n - i0);
            let mut acc = [0.0f64; MR * NR];
            for q in 0..n {
                let brow = &bp[q * nw..(q + 1) * nw];
                for ii in 0..mh {
                    let aiq = a[(i0 + ii) * n + q];
                    let tile = &mut acc[ii * NR..ii * NR + nw];
                    for (cv, bv) in tile.iter_mut().zip(brow) {
                        *cv = add_f64(*cv, mul_f64(aiq, *bv));
                    }
                }
            }
            for ii in 0..mh {
                c[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + nw]
                    .copy_from_slice(&acc[ii * NR..ii * NR + nw]);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* stream of finite doubles in (-8, 8).
    fn random_vec(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 50) as f64 - 8.0
            })
            .collect()
    }

    fn int_vec(seed: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 7 + seed * 3 + 1) % 16) as f64 - 8.0)
            .collect()
    }

    /// Unblocked q-ascending softfloat multiply: the association oracle.
    fn gemm_softfloat_ref(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
        let mut c = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for q in 0..n {
                    acc = add_f64(acc, mul_f64(a[i * n + q], b[q * n + j]));
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn gemm_blocking_never_changes_bits_on_random_data() {
        for n in [1usize, 3, 4, 5, 8, 13, 16, 17] {
            let a = random_vec(n as u64, n * n);
            let b = random_vec(n as u64 + 99, n * n);
            let tiled = gemm(&a, &b, n);
            let flat = gemm_softfloat_ref(&a, &b, n);
            assert!(
                tiled
                    .iter()
                    .zip(&flat)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "n = {n}"
            );
        }
    }

    #[test]
    fn gemm_matches_native_ladder_on_integers() {
        for n in [4usize, 8, 17] {
            let a: Vec<f64> = (0..n * n).map(|i| ((i * 5 + 3) % 8) as f64).collect();
            let b: Vec<f64> = (0..n * n).map(|i| ((i * 7 + 1) % 8) as f64).collect();
            assert_eq!(gemm(&a, &b, n), crate::gemm_naive(&a, &b, n), "n = {n}");
        }
    }

    #[test]
    fn gemv_panelling_never_changes_bits_on_random_data() {
        for (rows, cols) in [(1usize, 1usize), (7, 300), (16, 257), (33, 512)] {
            let a = random_vec(7, rows * cols);
            let x = random_vec(8, cols);
            // An unpanelled j-ascending fold is the association oracle.
            let flat: Vec<f64> = (0..rows)
                .map(|i| {
                    let mut acc = 0.0f64;
                    for j in 0..cols {
                        acc = add_f64(acc, mul_f64(a[i * cols + j], x[j]));
                    }
                    acc
                })
                .collect();
            let panelled = gemv(&a, rows, cols, &x, None);
            assert!(
                panelled
                    .iter()
                    .zip(&flat)
                    .all(|(p, f)| p.to_bits() == f.to_bits()),
                "{rows}x{cols}"
            );
        }
    }

    #[test]
    fn gemv_seeds_from_y0() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let y = gemv(&a, 2, 2, &[1.0, 1.0], Some(&[10.0, 20.0]));
        assert_eq!(y, vec![13.0, 27.0]);
    }

    #[test]
    fn level1_matches_native_on_integers() {
        let x = int_vec(1, 777);
        let y = int_vec(2, 777);
        assert_eq!(dot(&x, &y), crate::dot_naive(&x, &y));
        assert_eq!(asum(&x), crate::asum(&x));
        let mut yn = y.clone();
        crate::axpy(3.0, &x, &mut yn);
        assert_eq!(axpy(3.0, &x, &y), yn);
        let mut xn = x.clone();
        crate::scal(-2.0, &mut xn);
        assert_eq!(scal(-2.0, &x), xn);
    }

    #[test]
    fn asum_drops_sign_of_negative_zero() {
        assert_eq!(asum(&[-0.0, -1.0, 2.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dot_mismatched_lengths_rejected() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
