//! Software matrix-vector multiply: the Level-2 baseline.
//!
//! Matrices are dense row-major `&[f64]` of shape `rows × cols`.

/// Naive y = A·x, one row at a time.
pub fn gemv_naive(a: &[f64], rows: usize, cols: usize, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(x.len(), cols, "x length mismatch");
    (0..rows)
        .map(|i| {
            let row = &a[i * cols..(i + 1) * cols];
            row.iter().zip(x).map(|(aij, xj)| aij * xj).sum()
        })
        .collect()
}

/// Cache-blocked y = A·x: column panels sized to keep the x slice in
/// cache while several rows stream — the software analogue of the
/// paper's block matrix-vector multiply (§4.2).
pub fn gemv_blocked(a: &[f64], rows: usize, cols: usize, x: &[f64], panel: usize) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(x.len(), cols, "x length mismatch");
    assert!(panel > 0, "panel width must be positive");
    let mut y = vec![0.0f64; rows];
    let mut lo = 0;
    while lo < cols {
        let hi = (lo + panel).min(cols);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &a[i * cols + lo..i * cols + hi];
            let xs = &x[lo..hi];
            let mut acc = 0.0;
            for (aij, xj) in row.iter().zip(xs) {
                acc += aij * xj;
            }
            *yi += acc;
        }
        lo = hi;
    }
    y
}

/// Multi-threaded y = A·x: row ranges distributed over scoped threads
/// (disjoint output slices, no synchronization needed).
pub fn gemv_parallel(a: &[f64], rows: usize, cols: usize, x: &[f64], threads: usize) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(x.len(), cols, "x length mismatch");
    assert!(threads >= 1, "need at least one thread");
    let mut y = vec![0.0f64; rows];
    let rows_per = rows.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest: &mut [f64] = &mut y;
        let mut row0 = 0usize;
        while row0 < rows {
            let chunk = rows_per.min(rows - row0);
            let (panel, tail) = rest.split_at_mut(chunk);
            rest = tail;
            let lo = row0;
            s.spawn(move || {
                for (i, yi) in panel.iter_mut().enumerate() {
                    let row = &a[(lo + i) * cols..(lo + i + 1) * cols];
                    *yi = row.iter().zip(x).map(|(aij, xj)| aij * xj).sum();
                }
            });
            row0 += chunk;
        }
    });
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_case(rows: usize, cols: usize) -> (Vec<f64>, Vec<f64>) {
        let a = (0..rows * cols).map(|i| ((i * 5 + 3) % 9) as f64).collect();
        let x = (0..cols).map(|j| ((j * 2 + 1) % 9) as f64).collect();
        (a, x)
    }

    #[test]
    fn naive_small_case() {
        // [[1,2],[3,4]] · [1,1] = [3,7]
        let y = gemv_naive(&[1.0, 2.0, 3.0, 4.0], 2, 2, &[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn blocked_matches_naive_exactly_on_integers() {
        for (rows, cols, panel) in [(8, 8, 3), (16, 32, 8), (33, 17, 5), (1, 64, 64)] {
            let (a, x) = int_case(rows, cols);
            assert_eq!(
                gemv_blocked(&a, rows, cols, &x, panel),
                gemv_naive(&a, rows, cols, &x),
                "{rows}x{cols} panel {panel}"
            );
        }
    }

    #[test]
    fn parallel_matches_naive() {
        for threads in [1, 2, 5, 16] {
            let (a, x) = int_case(37, 29);
            assert_eq!(
                gemv_parallel(&a, 37, 29, &x, threads),
                gemv_naive(&a, 37, 29, &x),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn non_square() {
        let (a, x) = int_case(3, 5);
        let y = gemv_naive(&a, 3, 5, &x);
        assert_eq!(y.len(), 3);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape() {
        gemv_naive(&[1.0], 2, 2, &[1.0, 2.0]);
    }
}
