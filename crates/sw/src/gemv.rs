//! Software matrix-vector multiply: the Level-2 baseline.
//!
//! Matrices are dense row-major `&[f64]` of shape `rows × cols`. As
//! with [`crate::gemm`], every rung runs through the single
//! [`gemv_panel`] loop nest: each `y[i]` accumulates directly in
//! ascending-j order regardless of panel width or thread count, so all
//! rungs agree bit-for-bit on **any** input. (The blocked rung
//! historically kept a per-panel partial sum and folded it in at panel
//! end — a different association that diverged from the naive rung on
//! rounding-sensitive data; deduplicating onto one nest fixed that.)
//! The softfloat analogue is [`crate::microkernel::gemv`].

/// Reference y = A·x: the panelled engine with one whole-row panel.
pub fn gemv_naive(a: &[f64], rows: usize, cols: usize, x: &[f64]) -> Vec<f64> {
    gemv_blocked(a, rows, cols, x, cols.max(1))
}

/// Cache-blocked y = A·x: column panels sized to keep the x slice in
/// cache while several rows stream — the software analogue of the
/// paper's block matrix-vector multiply (§4.2).
pub fn gemv_blocked(a: &[f64], rows: usize, cols: usize, x: &[f64], panel: usize) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(x.len(), cols, "x length mismatch");
    assert!(panel > 0, "panel width must be positive");
    let mut y = vec![0.0f64; rows];
    gemv_panel(a, 0, cols, x, panel, &mut y);
    y
}

/// The one shared loop nest: accumulate `y[i] += A[lo+i][·]·x` for the
/// row range covered by the `y` slice, column-panelled, folding each
/// product straight into `y[i]` so the association is ascending-j for
/// every panel width.
fn gemv_panel(a: &[f64], lo: usize, cols: usize, x: &[f64], panel: usize, y: &mut [f64]) {
    let mut c0 = 0;
    while c0 < cols {
        let c1 = (c0 + panel).min(cols);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &a[(lo + i) * cols + c0..(lo + i) * cols + c1];
            let xs = &x[c0..c1];
            for (aij, xj) in row.iter().zip(xs) {
                *yi += aij * xj;
            }
        }
        c0 = c1;
    }
}

/// Multi-threaded y = A·x: row ranges distributed over scoped threads
/// (disjoint output slices, no synchronization needed), each running
/// the shared [`gemv_panel`] nest.
pub fn gemv_parallel(a: &[f64], rows: usize, cols: usize, x: &[f64], threads: usize) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(x.len(), cols, "x length mismatch");
    assert!(threads >= 1, "need at least one thread");
    let mut y = vec![0.0f64; rows];
    let rows_per = rows.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest: &mut [f64] = &mut y;
        let mut row0 = 0usize;
        while row0 < rows {
            let chunk = rows_per.min(rows - row0);
            let (panel, tail) = rest.split_at_mut(chunk);
            rest = tail;
            let lo = row0;
            s.spawn(move || gemv_panel(a, lo, cols, x, cols.max(1), panel));
            row0 += chunk;
        }
    });
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_case(rows: usize, cols: usize) -> (Vec<f64>, Vec<f64>) {
        let a = (0..rows * cols).map(|i| ((i * 5 + 3) % 9) as f64).collect();
        let x = (0..cols).map(|j| ((j * 2 + 1) % 9) as f64).collect();
        (a, x)
    }

    /// Deterministic xorshift64* stream of finite doubles in (-8, 8).
    fn random_vec(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 50) as f64 - 8.0
            })
            .collect()
    }

    #[test]
    fn naive_small_case() {
        // [[1,2],[3,4]] · [1,1] = [3,7]
        let y = gemv_naive(&[1.0, 2.0, 3.0, 4.0], 2, 2, &[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    /// The dedupe regression: one loop nest behind every rung means the
    /// ladder is bit-identical on *random* (rounding-sensitive) data —
    /// the pre-dedupe blocked rung's per-panel partial sums failed this.
    #[test]
    fn all_rungs_bit_identical_on_random_data() {
        for (rows, cols) in [(7usize, 31usize), (33, 17), (16, 128)] {
            let a = random_vec(rows as u64, rows * cols);
            let x = random_vec(cols as u64 + 5, cols);
            let reference = gemv_naive(&a, rows, cols, &x);
            let bits = |y: &[f64]| y.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            for panel in [1usize, 5, 8, 1024] {
                assert_eq!(
                    bits(&gemv_blocked(&a, rows, cols, &x, panel)),
                    bits(&reference),
                    "{rows}x{cols} panel {panel}"
                );
            }
            for threads in [2usize, 5, 16] {
                assert_eq!(
                    bits(&gemv_parallel(&a, rows, cols, &x, threads)),
                    bits(&reference),
                    "{rows}x{cols} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn blocked_matches_naive_exactly_on_integers() {
        for (rows, cols, panel) in [(8, 8, 3), (16, 32, 8), (33, 17, 5), (1, 64, 64)] {
            let (a, x) = int_case(rows, cols);
            assert_eq!(
                gemv_blocked(&a, rows, cols, &x, panel),
                gemv_naive(&a, rows, cols, &x),
                "{rows}x{cols} panel {panel}"
            );
        }
    }

    #[test]
    fn parallel_matches_naive() {
        for threads in [1, 2, 5, 16] {
            let (a, x) = int_case(37, 29);
            assert_eq!(
                gemv_parallel(&a, 37, 29, &x, threads),
                gemv_naive(&a, 37, 29, &x),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn non_square() {
        let (a, x) = int_case(3, 5);
        let y = gemv_naive(&a, 3, 5, &x);
        assert_eq!(y.len(), 3);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape() {
        gemv_naive(&[1.0], 2, 2, &[1.0, 2.0]);
    }
}
