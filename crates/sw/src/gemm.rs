//! Software dense matrix multiply: the §6.3 CPU comparison ladder.
//!
//! All matrices are dense row-major `&[f64]`, square n×n. Every rung of
//! the ladder — reference, cache-blocked, multi-threaded — runs through
//! the single [`gemm_panel`] loop nest, so there is exactly one numeric
//! implementation: each C element accumulates its products in
//! ascending-q order from a zero seed regardless of block size or
//! thread count, and all rungs agree bit-for-bit on **any** input (not
//! just integer data; pinned by regression tests below). The softfloat
//! analogue for the native execution backend lives in
//! [`crate::microkernel`].

/// Reference multiply: the blocked engine degenerated to one
/// whole-matrix block. Historically a separate (i, j, q) triple loop;
/// deduplicated onto [`gemm_panel`] so the crate has one numeric gemm.
pub fn gemm_naive(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    gemm_blocked(a, b, n, n.max(1))
}

/// Cache-blocked matrix multiply — the "cache blocking to maximize
/// cache reuse" optimization §2.2 lists, and the software mirror of the
/// paper's m×m on-chip blocking.
pub fn gemm_blocked(a: &[f64], b: &[f64], n: usize, block: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "A shape mismatch");
    assert_eq!(b.len(), n * n, "B shape mismatch");
    assert!(block > 0, "block size must be positive");
    let mut c = vec![0.0f64; n * n];
    gemm_panel(a, 0, n, n, b, block, &mut c);
    c
}

/// The one shared loop nest: multiply the A row-panel of `rows` rows
/// starting at absolute row `lo` against all of B (n×n), accumulating
/// into the `rows × n` C panel. Blocked i0/q0/j0 with an (i, q, j)
/// interior; per-element accumulation is ascending-q for every block
/// size, which is what makes the whole ladder bit-identical.
fn gemm_panel(a: &[f64], lo: usize, rows: usize, n: usize, b: &[f64], block: usize, c: &mut [f64]) {
    for i0 in (0..rows).step_by(block) {
        let imax = (i0 + block).min(rows);
        for q0 in (0..n).step_by(block) {
            let qmax = (q0 + block).min(n);
            for j0 in (0..n).step_by(block) {
                let jmax = (j0 + block).min(n);
                for i in i0..imax {
                    for q in q0..qmax {
                        let aiq = a[(lo + i) * n + q];
                        let brow = &b[q * n + j0..q * n + jmax];
                        let crow = &mut c[i * n + j0..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aiq * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Blocked multiply over an explicitly transposed B: turns the inner
/// loop into two unit-stride streams (the "register blocking to reduce
/// the number of memory accesses" rung of §2.2's optimization ladder).
pub fn gemm_transposed(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "A shape mismatch");
    assert_eq!(b.len(), n * n, "B shape mismatch");
    let mut bt = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            bt[j * n + i] = b[i * n + j];
        }
    }
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        let arow = &a[i * n..(i + 1) * n];
        for j in 0..n {
            let bcol = &bt[j * n..(j + 1) * n];
            let mut acc = 0.0;
            for (av, bv) in arow.iter().zip(bcol) {
                acc += av * bv;
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Multi-threaded blocked multiply: row panels distributed over scoped
/// threads (each panel writes a disjoint slice of C, so no
/// synchronization is needed beyond the scope join).
pub fn gemm_parallel(a: &[f64], b: &[f64], n: usize, block: usize, threads: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "A shape mismatch");
    assert_eq!(b.len(), n * n, "B shape mismatch");
    assert!(threads >= 1, "need at least one thread");
    let mut c = vec![0.0f64; n * n];
    let rows_per = n.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest: &mut [f64] = &mut c;
        let mut row0 = 0usize;
        while row0 < n {
            let rows = rows_per.min(n - row0);
            let (panel, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let lo = row0;
            s.spawn(move || gemm_panel(a, lo, rows, n, b, block, panel));
            row0 += rows;
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_pair(n: usize) -> (Vec<f64>, Vec<f64>) {
        (
            (0..n * n).map(|i| ((i * 5 + 3) % 8) as f64).collect(),
            (0..n * n).map(|i| ((i * 7 + 1) % 8) as f64).collect(),
        )
    }

    /// Deterministic xorshift64* stream of finite doubles in (-8, 8).
    fn random_vec(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 50) as f64 - 8.0
            })
            .collect()
    }

    #[test]
    fn naive_small_case() {
        let c = gemm_naive(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0], 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    /// The dedupe regression: every rung runs the same loop nest, so the
    /// whole ladder is bit-identical on *random* (rounding-sensitive)
    /// data, not merely on exact integer workloads.
    #[test]
    fn all_rungs_bit_identical_on_random_data() {
        for n in [5usize, 16, 33] {
            let a = random_vec(n as u64, n * n);
            let b = random_vec(n as u64 + 7, n * n);
            let reference = gemm_naive(&a, &b, n);
            let bits = |c: &[f64]| c.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            for block in [1usize, 3, 8, 64] {
                assert_eq!(
                    bits(&gemm_blocked(&a, &b, n, block)),
                    bits(&reference),
                    "n = {n}, block = {block}"
                );
            }
            for threads in [2usize, 3, 8] {
                assert_eq!(
                    bits(&gemm_parallel(&a, &b, n, 8, threads)),
                    bits(&reference),
                    "n = {n}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn blocked_matches_naive_exactly_on_integers() {
        for (n, block) in [(8, 4), (17, 5), (32, 8), (33, 16), (64, 64)] {
            let (a, b) = int_pair(n);
            assert_eq!(
                gemm_blocked(&a, &b, n, block),
                gemm_naive(&a, &b, n),
                "n = {n}, block = {block}"
            );
        }
    }

    #[test]
    fn transposed_matches_naive_exactly() {
        // Same inner-loop q order as naive ⇒ identical rounding.
        for n in [4usize, 17, 48] {
            let (a, b) = int_pair(n);
            assert_eq!(gemm_transposed(&a, &b, n), gemm_naive(&a, &b, n), "n = {n}");
        }
    }

    #[test]
    fn parallel_matches_blocked() {
        for threads in [1, 2, 3, 8] {
            let (a, b) = int_pair(48);
            assert_eq!(
                gemm_parallel(&a, &b, 48, 16, threads),
                gemm_blocked(&a, &b, 48, 16),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn identity_matrix() {
        let n = 16;
        let (_, b) = int_pair(n);
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        assert_eq!(gemm_blocked(&eye, &b, n, 8), b);
    }

    #[test]
    fn more_threads_than_rows() {
        let (a, b) = int_pair(4);
        assert_eq!(gemm_parallel(&a, &b, 4, 2, 16), gemm_naive(&a, &b, 4));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape() {
        gemm_naive(&[1.0], &[1.0], 2);
    }
}
