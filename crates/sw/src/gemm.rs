//! Software dense matrix multiply: the §6.3 CPU comparison ladder.
//!
//! All matrices are dense row-major `&[f64]`, square n×n.

/// Naive triple loop (i, j, q): the unoptimized baseline with poor cache
/// behaviour on B.
pub fn gemm_naive(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "A shape mismatch");
    assert_eq!(b.len(), n * n, "B shape mismatch");
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for q in 0..n {
                acc += a[i * n + q] * b[q * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Cache-blocked (i,q,j ordering inside blocks) matrix multiply — the
/// "cache blocking to maximize cache reuse" optimization §2.2 lists, and
/// the software mirror of the paper's m×m on-chip blocking.
pub fn gemm_blocked(a: &[f64], b: &[f64], n: usize, block: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "A shape mismatch");
    assert_eq!(b.len(), n * n, "B shape mismatch");
    assert!(block > 0, "block size must be positive");
    let mut c = vec![0.0f64; n * n];
    gemm_blocked_into(a, b, n, block, &mut c);
    c
}

fn gemm_blocked_into(a: &[f64], b: &[f64], n: usize, block: usize, c: &mut [f64]) {
    for i0 in (0..n).step_by(block) {
        let imax = (i0 + block).min(n);
        for q0 in (0..n).step_by(block) {
            let qmax = (q0 + block).min(n);
            for j0 in (0..n).step_by(block) {
                let jmax = (j0 + block).min(n);
                for i in i0..imax {
                    for q in q0..qmax {
                        let aiq = a[i * n + q];
                        let brow = &b[q * n + j0..q * n + jmax];
                        let crow = &mut c[i * n + j0..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aiq * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Blocked multiply over an explicitly transposed B: turns the inner
/// loop into two unit-stride streams (the "register blocking to reduce
/// the number of memory accesses" rung of §2.2's optimization ladder).
pub fn gemm_transposed(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "A shape mismatch");
    assert_eq!(b.len(), n * n, "B shape mismatch");
    let mut bt = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            bt[j * n + i] = b[i * n + j];
        }
    }
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        let arow = &a[i * n..(i + 1) * n];
        for j in 0..n {
            let bcol = &bt[j * n..(j + 1) * n];
            let mut acc = 0.0;
            for (av, bv) in arow.iter().zip(bcol) {
                acc += av * bv;
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Multi-threaded blocked multiply: row panels distributed over scoped
/// threads (each panel writes a disjoint slice of C, so no
/// synchronization is needed beyond the scope join).
pub fn gemm_parallel(a: &[f64], b: &[f64], n: usize, block: usize, threads: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "A shape mismatch");
    assert_eq!(b.len(), n * n, "B shape mismatch");
    assert!(threads >= 1, "need at least one thread");
    let mut c = vec![0.0f64; n * n];
    let rows_per = n.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest: &mut [f64] = &mut c;
        let mut row0 = 0usize;
        while row0 < n {
            let rows = rows_per.min(n - row0);
            let (panel, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let lo = row0;
            s.spawn(move || {
                // Blocked multiply of the A row-panel against all of B.
                for i0 in (0..rows).step_by(block) {
                    let imax = (i0 + block).min(rows);
                    for q0 in (0..n).step_by(block) {
                        let qmax = (q0 + block).min(n);
                        for j0 in (0..n).step_by(block) {
                            let jmax = (j0 + block).min(n);
                            for i in i0..imax {
                                for q in q0..qmax {
                                    let aiq = a[(lo + i) * n + q];
                                    let brow = &b[q * n + j0..q * n + jmax];
                                    let crow = &mut panel[i * n + j0..i * n + jmax];
                                    for (cv, bv) in crow.iter_mut().zip(brow) {
                                        *cv += aiq * bv;
                                    }
                                }
                            }
                        }
                    }
                }
            });
            row0 += rows;
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_pair(n: usize) -> (Vec<f64>, Vec<f64>) {
        (
            (0..n * n).map(|i| ((i * 5 + 3) % 8) as f64).collect(),
            (0..n * n).map(|i| ((i * 7 + 1) % 8) as f64).collect(),
        )
    }

    #[test]
    fn naive_small_case() {
        let c = gemm_naive(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0], 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn blocked_matches_naive_exactly_on_integers() {
        for (n, block) in [(8, 4), (17, 5), (32, 8), (33, 16), (64, 64)] {
            let (a, b) = int_pair(n);
            assert_eq!(
                gemm_blocked(&a, &b, n, block),
                gemm_naive(&a, &b, n),
                "n = {n}, block = {block}"
            );
        }
    }

    #[test]
    fn transposed_matches_naive_exactly() {
        // Same inner-loop q order as naive ⇒ identical rounding.
        for n in [4usize, 17, 48] {
            let (a, b) = int_pair(n);
            assert_eq!(gemm_transposed(&a, &b, n), gemm_naive(&a, &b, n), "n = {n}");
        }
    }

    #[test]
    fn parallel_matches_blocked() {
        for threads in [1, 2, 3, 8] {
            let (a, b) = int_pair(48);
            assert_eq!(
                gemm_parallel(&a, &b, 48, 16, threads),
                gemm_blocked(&a, &b, 48, 16),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn identity_matrix() {
        let n = 16;
        let (_, b) = int_pair(n);
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        assert_eq!(gemm_blocked(&eye, &b, n, 8), b);
    }

    #[test]
    fn more_threads_than_rows() {
        let (a, b) = int_pair(4);
        assert_eq!(gemm_parallel(&a, &b, 4, 2, 16), gemm_naive(&a, &b, 4));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape() {
        gemm_naive(&[1.0], &[1.0], 2);
    }
}
