//! Software dot product: the Level-1 baseline.

/// Straightforward sequential dot product.
pub fn dot_naive(u: &[f64], v: &[f64]) -> f64 {
    assert_eq!(u.len(), v.len(), "vectors must have equal length");
    u.iter().zip(v).map(|(a, b)| a * b).sum()
}

/// Four-way unrolled dot product with independent accumulators — the
/// "loop unrolling to reduce loop overhead" optimization §2.2 lists,
/// which also breaks the sequential-addition dependence chain (the
/// software analogue of the paper's interleaved partial sums).
pub fn dot_unrolled(u: &[f64], v: &[f64]) -> f64 {
    assert_eq!(u.len(), v.len(), "vectors must have equal length");
    let mut acc = [0.0f64; 4];
    let chunks = u.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += u[i] * v[i];
        acc[1] += u[i + 1] * v[i + 1];
        acc[2] += u[i + 2] * v[i + 2];
        acc[3] += u[i + 3] * v[i + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..u.len() {
        tail += u[i] * v[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        (
            (0..n).map(|i| ((i * 7 + 1) % 10) as f64).collect(),
            (0..n).map(|i| ((i * 3 + 2) % 10) as f64).collect(),
        )
    }

    #[test]
    fn naive_small_case() {
        assert_eq!(dot_naive(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn unrolled_matches_naive_exactly_on_integers() {
        for n in [0, 1, 3, 4, 7, 64, 1000, 1023] {
            let (u, v) = int_vecs(n);
            assert_eq!(dot_unrolled(&u, &v), dot_naive(&u, &v), "n = {n}");
        }
    }

    #[test]
    fn empty_vectors() {
        assert_eq!(dot_naive(&[], &[]), 0.0);
        assert_eq!(dot_unrolled(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths() {
        dot_naive(&[1.0], &[1.0, 2.0]);
    }
}
