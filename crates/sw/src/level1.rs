//! Software Level-1 baselines beyond dot: oracles for the streaming
//! designs in `fblas-core::level1`.

/// y ← a·x + y.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "vectors must have equal length");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// x ← a·x.
pub fn scal(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Σ|xᵢ|.
pub fn asum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// ‖x‖₂ with scaling against overflow (the LAPACK-style safe form —
/// sturdier than the FPGA design's plain sum-of-squares, which is the
/// behaviour the hardware actually has; tests compare both within range).
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Index of the element with the largest magnitude (BLAS `idamax`);
/// `None` for an empty vector.
pub fn iamax(x: &[f64]) -> Option<usize> {
    x.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.abs().total_cmp(&b.abs()))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_small() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn scal_small() {
        let mut x = [1.0, -2.0, 3.0];
        scal(-2.0, &mut x);
        assert_eq!(x, [-2.0, 4.0, -6.0]);
    }

    #[test]
    fn asum_small() {
        assert_eq!(asum(&[1.0, -2.0, 3.0]), 6.0);
        assert_eq!(asum(&[]), 0.0);
    }

    #[test]
    fn nrm2_pythagorean() {
        assert_eq!(nrm2(&[3.0, 4.0]), 5.0);
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn nrm2_does_not_overflow_on_huge_components() {
        let v = nrm2(&[1e300, 1e300]);
        assert!(v.is_finite());
        assert!((v / 1e300 - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn iamax_finds_largest_magnitude() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(iamax(&[]), None);
        assert_eq!(iamax(&[0.0]), Some(0));
    }

    #[test]
    fn agrees_with_fpga_designs_on_moderate_data() {
        // The FPGA asum/nrm2 designs use plain summation; within normal
        // range the safe form agrees to rounding.
        let x: Vec<f64> = (0..100).map(|i| f64::from((i * 7) % 13) - 6.0).collect();
        let plain = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((nrm2(&x) - plain).abs() < 1e-12 * plain.max(1.0));
    }
}
