//! Software BLAS baselines.
//!
//! §6.3 of the paper compares the FPGA design against `dgemm` from
//! vendor math libraries on contemporary CPUs (Opteron/ACML 4.1 GFLOPS,
//! Xeon/MKL 5.5 GFLOPS, Pentium 4 5.0 GFLOPS) and notes those libraries
//! apply "common software optimizations": loop unrolling, register
//! blocking and cache blocking. This crate implements that ladder of
//! optimizations — naive, cache-blocked, and multi-threaded variants of
//! dot, gemv and gemm — serving both as correctness oracles for the
//! architecture simulations and as the measured CPU side of the
//! comparison (via the Criterion benches in `fblas-bench`).

#![forbid(unsafe_code)]

pub mod dot;
pub mod gemm;
pub mod gemv;
pub mod level1;
pub mod microkernel;

pub use dot::{dot_naive, dot_unrolled};
pub use gemm::{gemm_blocked, gemm_naive, gemm_parallel, gemm_transposed};
pub use gemv::{gemv_blocked, gemv_naive, gemv_parallel};
pub use level1::{asum, axpy, iamax, nrm2, scal};
