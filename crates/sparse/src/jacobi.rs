//! Jacobi iterative solver on the `SpMV` design (the authors' \[18\]).
//!
//! Solves A·x = b by the iteration x⁽ᵗ⁺¹⁾ = D⁻¹·(b − (A − D)·x⁽ᵗ⁾), where
//! D is the diagonal of A. Each iteration is one `SpMV` of the off-diagonal
//! part on the FPGA design plus an element-wise update; the solver
//! accumulates the cycle cost of every simulated `SpMV` so the report
//! reflects what the hardware would spend. Strict diagonal dominance is a
//! sufficient convergence condition, which [`JacobiSolver::solve`]
//! checks and reports.

use crate::csr::CsrMatrix;
use crate::spmv::{SpmvDesign, SpmvParams};
use fblas_core::report::SimReport;
use fblas_sim::ClockDomain;

/// Outcome of a Jacobi solve.
#[derive(Debug, Clone)]
pub struct JacobiOutcome {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the residual tolerance was met.
    pub converged: bool,
    /// Final max-norm of b − A·x.
    pub residual: f64,
    /// Accumulated hardware accounting across all `SpMV` runs.
    pub report: SimReport,
    /// Clock domain of the underlying design.
    pub clock: ClockDomain,
}

/// Jacobi iterative solver driving the FPGA `SpMV` design.
///
/// # Examples
///
/// ```
/// use fblas_sparse::{CsrMatrix, JacobiSolver, SpmvParams};
///
/// // A strictly diagonally dominant 3×3 system.
/// let a = CsrMatrix::from_triplets(3, 3, &[
///     (0, 0, 4.0), (0, 1, -1.0),
///     (1, 0, -1.0), (1, 1, 4.0), (1, 2, -1.0),
///     (2, 1, -1.0), (2, 2, 4.0),
/// ]);
/// let b = vec![3.0, 2.0, 3.0];
/// let solver = JacobiSolver::new(SpmvParams::with_k(2), 1e-12, 200);
/// let out = solver.solve(&a, &b);
/// assert!(out.converged);
/// assert!((out.x[0] - 1.0).abs() < 1e-10);
/// assert!((out.x[1] - 1.0).abs() < 1e-10);
/// assert!((out.x[2] - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct JacobiSolver {
    design: SpmvDesign,
    /// Max-norm residual tolerance.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl JacobiSolver {
    /// Create a solver over a k-lane `SpMV` design.
    pub fn new(params: SpmvParams, tolerance: f64, max_iterations: usize) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "need at least one iteration");
        Self {
            design: SpmvDesign::new(params),
            tolerance,
            max_iterations,
        }
    }

    /// Solve A·x = b from a zero initial guess.
    ///
    /// # Panics
    /// Panics if any diagonal entry of A is missing or zero (the Jacobi
    /// split needs D⁻¹).
    pub fn solve(&self, a: &CsrMatrix, b: &[f64]) -> JacobiOutcome {
        let n = a.n_rows();
        assert_eq!(a.n_cols(), n, "Jacobi needs a square system");
        assert_eq!(b.len(), n, "right-hand side length mismatch");

        let diag: Vec<f64> = (0..n)
            .map(|i| {
                let d = a
                    .diagonal(i)
                    .unwrap_or_else(|| panic!("row {i} has no diagonal entry"));
                assert!(d != 0.0, "zero diagonal in row {i}");
                d
            })
            .collect();

        // Off-diagonal part R = A − D as its own CRS matrix.
        let off_triplets: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| {
                a.row(i)
                    .filter(move |&(c, _)| c != i)
                    .map(move |(c, v)| (i, c, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        let r = CsrMatrix::from_triplets(n, n, &off_triplets);

        let mut x = vec![0.0f64; n];
        let mut total = SimReport::default();
        let mut iterations = 0;
        let mut residual = f64::INFINITY;

        while iterations < self.max_iterations {
            // One SpMV of R on the FPGA design.
            let out = self.design.run(&r, &x);
            total.cycles += out.report.cycles;
            total.flops += out.report.flops;
            total.words_in += out.report.words_in;
            total.words_out += out.report.words_out;
            total.busy_cycles += out.report.busy_cycles;

            for i in 0..n {
                x[i] = (b[i] - out.y[i]) / diag[i];
            }
            // The divide-and-subtract update is n more flops of each kind.
            total.flops += 2 * n as u64;
            iterations += 1;

            residual = self.residual_norm(a, &x, b);
            if residual <= self.tolerance {
                break;
            }
        }

        JacobiOutcome {
            x,
            iterations,
            converged: residual <= self.tolerance,
            residual,
            report: total,
            clock: self.design.clock(),
        }
    }

    fn residual_norm(&self, a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.ref_spmv(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (bi - ax).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A strictly diagonally dominant tridiagonal system.
    fn dd_system(n: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let mut trip = Vec::new();
        for i in 0..n {
            trip.push((i, i, 4.0));
            if i > 0 {
                trip.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                trip.push((i, i + 1, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &trip);
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = a.ref_spmv(&x_true);
        (a, x_true, b)
    }

    #[test]
    fn converges_on_diagonally_dominant_system() {
        let (a, x_true, b) = dd_system(50);
        assert!(a.is_strictly_diagonally_dominant());
        let solver = JacobiSolver::new(SpmvParams::with_k(4), 1e-10, 500);
        let out = solver.solve(&a, &b);
        assert!(out.converged, "residual {}", out.residual);
        for (got, want) in out.x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn iteration_cap_respected() {
        let (a, _, b) = dd_system(30);
        let solver = JacobiSolver::new(SpmvParams::with_k(2), 1e-30, 3);
        let out = solver.solve(&a, &b);
        assert_eq!(out.iterations, 3);
        assert!(!out.converged);
    }

    #[test]
    fn hardware_cycles_accumulate_per_iteration() {
        let (a, _, b) = dd_system(30);
        let s1 = JacobiSolver::new(SpmvParams::with_k(2), 1e-30, 1);
        let s3 = JacobiSolver::new(SpmvParams::with_k(2), 1e-30, 3);
        let c1 = s1.solve(&a, &b).report.cycles;
        let c3 = s3.solve(&a, &b).report.cycles;
        assert_eq!(c3, 3 * c1, "cycles must sum across iterations");
    }

    #[test]
    fn diagonal_system_converges_in_one_iteration() {
        let a =
            CsrMatrix::from_triplets(4, 4, &[(0, 0, 2.0), (1, 1, 4.0), (2, 2, 5.0), (3, 3, 8.0)]);
        let b = vec![2.0, 8.0, 15.0, 32.0];
        let solver = JacobiSolver::new(SpmvParams::with_k(2), 1e-12, 10);
        let out = solver.solve(&a, &b);
        assert_eq!(out.x, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    #[should_panic(expected = "no diagonal entry")]
    fn missing_diagonal_rejected() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        JacobiSolver::new(SpmvParams::with_k(2), 1e-6, 10).solve(&a, &[1.0, 1.0]);
    }
}
