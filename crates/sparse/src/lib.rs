//! Extensions from the paper's concluding remarks (§7).
//!
//! Beyond the three BLAS operations, the authors point to two follow-on
//! designs built from the same components:
//!
//! * [`spmv`] — floating-point **sparse** matrix-vector multiply
//!   (FPGA'05 \[32\]): the tree-based Level-2 architecture fed from a
//!   Compressed Row Storage matrix. Row lengths are arbitrary, so the
//!   reduction sets have arbitrary sizes — the workload that motivates
//!   the §4.3 circuit's "multiple sets of arbitrary size" property. The
//!   design "makes no assumption on the sparsity of the matrix".
//! * [`jacobi`] — a Jacobi iterative solver \[18\] layered on the `SpMV`
//!   design, "usually used as a preconditioner for the more efficient
//!   methods like conjugate gradient".
//! * [`cg`] — that more efficient method: preconditioned conjugate
//!   gradient whose matrix-vector products and inner products run on the
//!   FPGA designs, with Jacobi as the preconditioner.
//!
//! [`csr`] provides the Compressed Row Storage substrate both build on.

#![forbid(unsafe_code)]

pub mod blocked;
pub mod cg;
pub mod csr;
pub mod jacobi;
pub mod spmv;

pub use blocked::BlockedSpmv;
pub use cg::{CgOutcome, CgSolver};
pub use csr::CsrMatrix;
pub use jacobi::{JacobiOutcome, JacobiSolver};
pub use spmv::{SpmvDesign, SpmvOutcome, SpmvParams};
