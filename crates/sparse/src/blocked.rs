//! Blocked sparse matrix-vector multiply: x larger than on-chip storage.
//!
//! The §4.2 blocking story applied to the sparse design: the matrix is
//! cut into column panels of width b (the on-chip x budget); each panel
//! streams its CRS entries through the tree architecture while its x
//! slice sits in BRAM, and every row's panel result is carried into the
//! next panel's reduction set as one extra injected value — the same
//! accumulator-free chaining the dense blocked driver uses.

use crate::csr::CsrMatrix;
use crate::spmv::{SpmvDesign, SpmvOutcome, SpmvParams};
use fblas_core::report::SimReport;

/// Column-blocked driver over the `SpMV` design.
#[derive(Debug, Clone)]
pub struct BlockedSpmv {
    design: SpmvDesign,
    /// On-chip x capacity in words.
    pub b: usize,
}

impl BlockedSpmv {
    /// Create a blocked driver with x panels of `b` words.
    pub fn new(params: SpmvParams, b: usize) -> Self {
        assert!(b >= 1, "panel must hold at least one x word");
        Self {
            design: SpmvDesign::new(params),
            b,
        }
    }

    /// The underlying design.
    pub fn design(&self) -> &SpmvDesign {
        &self.design
    }

    /// Compute y = A·x, one column panel at a time.
    pub fn run(&self, a: &CsrMatrix, x: &[f64]) -> SpmvOutcome {
        assert_eq!(x.len(), a.n_cols(), "x must match the matrix width");
        let n_cols = a.n_cols();
        let panels = n_cols.div_ceil(self.b);

        let mut outcome: Option<SpmvOutcome> = None;
        let mut total = SimReport::default();
        for p in 0..panels {
            let lo = p * self.b;
            let hi = (lo + self.b).min(n_cols);
            let panel = a.column_panel(lo, hi);
            let out = match &outcome {
                None => self.design.run(&panel, &x[lo..hi]),
                Some(prev) => self.design.run_with_initial(&panel, &x[lo..hi], &prev.y),
            };
            total.cycles += out.report.cycles;
            total.flops += out.report.flops;
            total.words_in += out.report.words_in;
            total.busy_cycles += out.report.busy_cycles;
            total.words_out = out.report.words_out;
            outcome = Some(out);
        }

        let mut last = outcome.expect("at least one panel");
        last.report = total;
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn irregular(n: usize) -> CsrMatrix {
        let mut trip = Vec::new();
        for i in 0..n {
            trip.push((i, i, 3.0 + (i % 4) as f64));
            for d in 1..=(i % 6) {
                if i + d < n {
                    trip.push((i, i + d, (d % 3) as f64 + 1.0));
                }
                if i >= d * 3 {
                    trip.push((i, i - d * 3, 2.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &trip)
    }

    #[test]
    fn blocked_matches_unblocked_and_reference() {
        let a = irregular(120);
        let x: Vec<f64> = (0..120).map(|j| f64::from((j * 5 + 1) % 8)).collect();
        let full = SpmvDesign::new(SpmvParams::with_k(4)).run(&a, &x);
        for b in [16usize, 40, 64, 120, 200] {
            let blocked = BlockedSpmv::new(SpmvParams::with_k(4), b).run(&a, &x);
            assert_eq!(blocked.y, a.ref_spmv(&x), "b = {b}");
            assert_eq!(blocked.y, full.y, "b = {b}");
        }
    }

    #[test]
    fn rows_empty_in_some_panels_carry_partials() {
        // Row 0 only has entries in the first panel; row 2 only in the
        // last: partial carrying must pass both through untouched.
        let a =
            CsrMatrix::from_triplets(3, 9, &[(0, 0, 2.0), (1, 1, 1.0), (1, 8, 3.0), (2, 7, 5.0)]);
        let x: Vec<f64> = (0..9).map(|j| f64::from(j + 1)).collect();
        let out = BlockedSpmv::new(SpmvParams::with_k(2), 3).run(&a, &x);
        assert_eq!(out.y, a.ref_spmv(&x));
    }

    #[test]
    fn single_panel_degenerates_to_plain_run() {
        let a = irregular(40);
        let x: Vec<f64> = (0..40).map(|j| f64::from(j % 5)).collect();
        let plain = SpmvDesign::new(SpmvParams::with_k(2)).run(&a, &x);
        let blocked = BlockedSpmv::new(SpmvParams::with_k(2), 40).run(&a, &x);
        assert_eq!(plain.y, blocked.y);
        assert_eq!(plain.report.cycles, blocked.report.cycles);
    }

    #[test]
    fn flops_include_injected_partials() {
        let a = irregular(60);
        let x = vec![1.0; 60];
        let one = BlockedSpmv::new(SpmvParams::with_k(2), 60).run(&a, &x);
        let four = BlockedSpmv::new(SpmvParams::with_k(2), 15).run(&a, &x);
        // More panels ⇒ more carried-partial additions ⇒ more cycles.
        assert!(four.report.cycles > one.report.cycles);
    }
}
