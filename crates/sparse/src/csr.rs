//! Compressed Row Storage (CRS/CSR) sparse matrices.
//!
//! The paper's `SpMV` design \[32\] "accepts matrices in Compressed Row
//! Storage format": three arrays — values, column indices, and row
//! pointers — with no assumption about the sparsity structure.

/// A sparse matrix in Compressed Row Storage format.
///
/// # Examples
///
/// ```
/// use fblas_sparse::CsrMatrix;
///
/// let m = CsrMatrix::from_dense(&[2.0, 0.0, 0.0, 3.0], 2, 2);
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.ref_spmv(&[1.0, 2.0]), vec![2.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row i's entries.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from (row, col, value) triplets; duplicates are summed.
    pub fn from_triplets(n_rows: usize, n_cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; n_rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut last: Option<(usize, usize)> = None;
        for &(r, c, v) in &sorted {
            assert!(r < n_rows && c < n_cols, "triplet ({r},{c}) out of bounds");
            if last == Some((r, c)) {
                *values.last_mut().expect("duplicate follows an entry") += v;
                continue;
            }
            last = Some((r, c));
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] += 1;
        }
        for i in 0..n_rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build from a dense row-major matrix, dropping exact zeros.
    pub fn from_dense(data: &[f64], n_rows: usize, n_cols: usize) -> Self {
        assert_eq!(data.len(), n_rows * n_cols, "shape mismatch");
        let mut triplets = Vec::new();
        for i in 0..n_rows {
            for j in 0..n_cols {
                let v = data[i * n_cols + j];
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        Self::from_triplets(n_rows, n_cols, &triplets)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The (column, value) entries of row i.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Number of entries in row i.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// The diagonal entry of row i, if stored.
    pub fn diagonal(&self, i: usize) -> Option<f64> {
        self.row(i).find(|&(c, _)| c == i).map(|(_, v)| v)
    }

    /// Whether the matrix is strictly diagonally dominant (a sufficient
    /// condition for Jacobi convergence).
    pub fn is_strictly_diagonally_dominant(&self) -> bool {
        (0..self.n_rows.min(self.n_cols)).all(|i| {
            let diag = self.diagonal(i).unwrap_or(0.0).abs();
            let off: f64 = self
                .row(i)
                .filter(|&(c, _)| c != i)
                .map(|(_, v)| v.abs())
                .sum();
            diag > off
        })
    }

    /// Extract columns `lo..hi` as their own CSR matrix (columns
    /// reindexed to start at zero) — the panel decomposition the blocked
    /// `SpMV` driver uses when x exceeds on-chip storage.
    pub fn column_panel(&self, lo: usize, hi: usize) -> CsrMatrix {
        assert!(lo < hi && hi <= self.n_cols, "bad panel range {lo}..{hi}");
        let mut trip = Vec::new();
        for i in 0..self.n_rows {
            for (c, v) in self.row(i) {
                if (lo..hi).contains(&c) {
                    trip.push((i, c - lo, v));
                }
            }
        }
        CsrMatrix::from_triplets(self.n_rows, hi - lo, &trip)
    }

    /// Whether the matrix equals its transpose (required for CG).
    pub fn is_symmetric(&self) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        (0..self.n_rows).all(|i| {
            self.row(i)
                .all(|(j, v)| self.row(j).find(|&(c, _)| c == i).map(|(_, w)| w) == Some(v))
        })
    }

    /// Reference y = A·x in plain f64.
    pub fn ref_spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols, "x length mismatch");
        (0..self.n_rows)
            .map(|i| self.row(i).map(|(c, v)| v * x[c]).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_roundtrip() {
        let dense = vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0, 5.0];
        let m = CsrMatrix::from_dense(&dense, 3, 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(m.row(1).collect::<Vec<_>>(), vec![(1, 3.0)]);
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(0, 4.0), (2, 5.0)]);
    }

    #[test]
    fn triplets_sum_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 3.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.diagonal(0), Some(3.0));
        assert_eq!(m.diagonal(1), Some(3.0));
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 1, 5.0)]);
        assert_eq!(m.row_nnz(0), 1);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.ref_spmv(&[1.0, 1.0, 1.0]), vec![5.0, 0.0, 0.0]);
    }

    #[test]
    fn spmv_reference() {
        let dense = vec![2.0, 1.0, 0.0, 3.0];
        let m = CsrMatrix::from_dense(&dense, 2, 2);
        assert_eq!(m.ref_spmv(&[1.0, 2.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn diagonal_dominance() {
        let dd = CsrMatrix::from_dense(&[4.0, 1.0, 2.0, 5.0], 2, 2);
        assert!(dd.is_strictly_diagonally_dominant());
        let not = CsrMatrix::from_dense(&[1.0, 2.0, 3.0, 1.0], 2, 2);
        assert!(!not.is_strictly_diagonally_dominant());
    }

    #[test]
    fn column_panels_partition_the_matrix() {
        let dense = vec![1.0, 2.0, 0.0, 3.0, 0.0, 4.0, 5.0, 0.0, 6.0];
        let m = CsrMatrix::from_dense(&dense, 3, 3);
        let left = m.column_panel(0, 2);
        let right = m.column_panel(2, 3);
        assert_eq!(left.nnz() + right.nnz(), m.nnz());
        assert_eq!(left.n_cols(), 2);
        assert_eq!(right.n_cols(), 1);
        // Reindexed column: original column 2 becomes panel column 0.
        assert_eq!(right.row(1).collect::<Vec<_>>(), vec![(0, 4.0)]);
    }

    #[test]
    fn symmetry_check() {
        let sym = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (2, 2, 1.0),
            ],
        );
        assert!(sym.is_symmetric());
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!asym.is_symmetric());
        let rect = CsrMatrix::from_triplets(2, 3, &[]);
        assert!(!rect.is_symmetric());
    }

    #[test]
    fn missing_diagonal() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert_eq!(m.diagonal(0), None);
        assert!(!m.is_strictly_diagonally_dominant());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_triplet_rejected() {
        CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
