//! Preconditioned conjugate gradient on the FPGA kernels.
//!
//! §7 of the paper positions the Jacobi solver as a *preconditioner* "for
//! the more efficient methods like conjugate gradient (CG)". This module
//! closes that loop: a CG solver whose matrix-vector products run on the
//! `SpMV` design and whose inner products run on the Level-1 dot design,
//! with an optional Jacobi (diagonal) preconditioner. The element-wise
//! vector updates run on the host processor, the intended FPGA/CPU split
//! of the reconfigurable-system model.

use crate::csr::CsrMatrix;
use crate::spmv::{SpmvDesign, SpmvParams};
use fblas_core::dot::{DotParams, DotProductDesign};
use fblas_core::report::SimReport;
use fblas_sim::ClockDomain;

/// Outcome of a conjugate-gradient solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the residual tolerance was met.
    pub converged: bool,
    /// Final 2-norm of the residual b − A·x.
    pub residual: f64,
    /// Accumulated FPGA accounting (`SpMV` + dot runs).
    pub report: SimReport,
    /// Clock domain of the designs.
    pub clock: ClockDomain,
}

/// Conjugate-gradient solver over the FPGA `SpMV` and dot designs.
#[derive(Debug, Clone)]
pub struct CgSolver {
    spmv: SpmvDesign,
    dot: DotProductDesign,
    /// Residual 2-norm tolerance.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Apply the Jacobi (diagonal) preconditioner.
    pub jacobi_preconditioner: bool,
}

impl CgSolver {
    /// Create a solver with k-lane `SpMV` and 2-lane dot designs.
    pub fn new(params: SpmvParams, tolerance: f64, max_iterations: usize) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "need at least one iteration");
        Self {
            spmv: SpmvDesign::new(params),
            dot: DotProductDesign::standalone(DotParams::table3(), 170.0),
            tolerance,
            max_iterations,
            jacobi_preconditioner: true,
        }
    }

    /// Solve A·x = b (A symmetric positive definite) from a zero guess.
    pub fn solve(&self, a: &CsrMatrix, b: &[f64]) -> CgOutcome {
        let n = a.n_rows();
        assert_eq!(a.n_cols(), n, "CG needs a square system");
        assert_eq!(b.len(), n, "right-hand side length mismatch");
        debug_assert!(
            a.is_symmetric(),
            "conjugate gradient requires a symmetric matrix"
        );

        let inv_diag: Option<Vec<f64>> = if self.jacobi_preconditioner {
            Some(
                (0..n)
                    .map(|i| {
                        let d = a
                            .diagonal(i)
                            .unwrap_or_else(|| panic!("row {i} has no diagonal entry"));
                        assert!(d > 0.0, "SPD matrix needs positive diagonal, row {i}");
                        1.0 / d
                    })
                    .collect(),
            )
        } else {
            None
        };

        let mut total = SimReport::default();
        let fpga_dot = |u: &[f64], v: &[f64], total: &mut SimReport| -> f64 {
            let out = self.dot.run(u, v);
            total.cycles += out.report.cycles;
            total.flops += out.report.flops;
            total.words_in += out.report.words_in;
            total.words_out += out.report.words_out;
            total.busy_cycles += out.report.busy_cycles;
            out.result
        };

        let mut x = vec![0.0f64; n];
        let mut r = b.to_vec();
        let z: Vec<f64> = match &inv_diag {
            Some(d) => r.iter().zip(d).map(|(ri, di)| ri * di).collect(),
            None => r.clone(),
        };
        let mut p = z.clone();
        let mut rz = fpga_dot(&r, &z, &mut total);
        let mut iterations = 0usize;
        let mut residual = fpga_dot(&r, &r, &mut total).sqrt();

        while residual > self.tolerance && iterations < self.max_iterations {
            // FPGA: q = A·p.
            let q = {
                let out = self.spmv.run(a, &p);
                total.cycles += out.report.cycles;
                total.flops += out.report.flops;
                total.words_in += out.report.words_in;
                total.words_out += out.report.words_out;
                total.busy_cycles += out.report.busy_cycles;
                out.y
            };
            let pq = fpga_dot(&p, &q, &mut total);
            let alpha = rz / pq;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * q[i];
            }
            total.flops += 4 * n as u64; // host-side updates
            let z_new: Vec<f64> = match &inv_diag {
                Some(d) => r.iter().zip(d).map(|(ri, di)| ri * di).collect(),
                None => r.clone(),
            };
            let rz_new = fpga_dot(&r, &z_new, &mut total);
            let beta = rz_new / rz;
            for i in 0..n {
                p[i] = z_new[i] + beta * p[i];
            }
            total.flops += 2 * n as u64;
            rz = rz_new;
            residual = fpga_dot(&r, &r, &mut total).sqrt();
            iterations += 1;
        }

        CgOutcome {
            x,
            iterations,
            converged: residual <= self.tolerance,
            residual,
            report: total,
            clock: self.spmv.clock(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SPD tridiagonal system with manufactured solution.
    fn spd_system(n: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let mut trip = Vec::new();
        for i in 0..n {
            trip.push((i, i, 4.0));
            if i > 0 {
                trip.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                trip.push((i, i + 1, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &trip);
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 5) as f64 - 2.0) / 2.0).collect();
        let b = a.ref_spmv(&x_true);
        (a, x_true, b)
    }

    #[test]
    fn converges_on_spd_system() {
        let (a, x_true, b) = spd_system(100);
        let solver = CgSolver::new(SpmvParams::with_k(4), 1e-10, 300);
        let out = solver.solve(&a, &b);
        assert!(out.converged, "residual {}", out.residual);
        for (got, want) in out.x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn preconditioning_does_not_hurt_iteration_count() {
        let (a, _, b) = spd_system(100);
        let mut plain = CgSolver::new(SpmvParams::with_k(4), 1e-10, 300);
        plain.jacobi_preconditioner = false;
        let pre = CgSolver::new(SpmvParams::with_k(4), 1e-10, 300);
        let it_plain = plain.solve(&a, &b).iterations;
        let it_pre = pre.solve(&a, &b).iterations;
        // Constant diagonal ⇒ Jacobi preconditioning is a scalar rescale:
        // iteration counts must be essentially identical, and both finite.
        assert!(it_pre <= it_plain + 2, "pre {it_pre} vs plain {it_plain}");
    }

    #[test]
    fn cg_beats_jacobi_in_iterations() {
        use crate::jacobi::JacobiSolver;
        let (a, _, b) = spd_system(80);
        let cg = CgSolver::new(SpmvParams::with_k(4), 1e-9, 500).solve(&a, &b);
        let jac = JacobiSolver::new(SpmvParams::with_k(4), 1e-9, 500).solve(&a, &b);
        assert!(cg.converged && jac.converged);
        assert!(
            cg.iterations < jac.iterations,
            "CG {} should beat Jacobi {}",
            cg.iterations,
            jac.iterations
        );
    }

    #[test]
    fn hardware_accounting_grows_with_iterations() {
        let (a, _, b) = spd_system(60);
        let loose = CgSolver::new(SpmvParams::with_k(2), 1e-2, 300).solve(&a, &b);
        let tight = CgSolver::new(SpmvParams::with_k(2), 1e-12, 300).solve(&a, &b);
        assert!(tight.iterations > loose.iterations);
        assert!(tight.report.cycles > loose.report.cycles);
    }

    #[test]
    #[should_panic(expected = "positive diagonal")]
    fn non_spd_diagonal_rejected() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, -1.0), (1, 1, 1.0)]);
        CgSolver::new(SpmvParams::with_k(2), 1e-6, 10).solve(&a, &[1.0, 1.0]);
    }
}
