//! Sparse matrix-vector multiply on the tree-based architecture
//! (the authors' FPGA'05 design \[32\]).
//!
//! The row-major Level-2 architecture generalizes directly: k multipliers
//! receive k (value, column) pairs of the current CRS row per cycle, look
//! the columns up in the on-chip copy of x, and feed the adder tree; the
//! reduction circuit accumulates each row's product stream. Because row
//! lengths are arbitrary, the reduction sets have arbitrary sizes — this
//! is the workload for which the §4.3 circuit's "multiple sets of
//! arbitrary size, no stalls" property exists. Rows with no stored
//! entries bypass the datapath entirely (yᵢ = 0).

use crate::csr::CsrMatrix;
use fblas_core::reduce::{ReduceInput, Reducer, SingleAdderReducer};
use fblas_fpu::softfloat::{add_f64, mul_f64};
use fblas_fpu::{ADDER_STAGES, MULTIPLIER_STAGES};
use fblas_sim::{
    ClockDomain, DelayLine, Design, EdgeKind, Harness, Probe, ProbeId, StallCause, Throttle,
    Topology,
};
use fblas_system::io_bound_peak_mvm;

/// Parameters of the `SpMV` design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpmvParams {
    /// Multiplier lanes (power of two for the adder tree).
    pub k: usize,
    /// Adder pipeline depth α.
    pub adder_stages: usize,
    /// Multiplier pipeline depth.
    pub mult_stages: usize,
    /// CRS (value, column) pairs delivered per cycle.
    pub entries_per_cycle: f64,
}

impl SpmvParams {
    /// A k-lane configuration fed at full rate.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            adder_stages: ADDER_STAGES,
            mult_stages: MULTIPLIER_STAGES,
            entries_per_cycle: k as f64,
        }
    }
}

/// Result of one `SpMV` run.
#[derive(Debug, Clone)]
pub struct SpmvOutcome {
    /// The computed y = A·x.
    pub y: Vec<f64>,
    /// Cycle/flop/word accounting. `words_in` counts value + index words.
    pub report: fblas_sim::SimReport,
    /// Clock domain (tree-design rate).
    pub clock: ClockDomain,
    /// I/O-bound peak: every stored entry costs a value word and an index
    /// word, and contributes two flops.
    pub peak_flops: f64,
    /// High-water mark of the reduction buffers (probe-derived).
    pub reduction_buffer_high_water: usize,
}

impl SpmvOutcome {
    /// Fraction of the I/O-bound peak sustained.
    pub fn fraction_of_peak(&self) -> f64 {
        self.report.fraction_of_peak(&self.clock, self.peak_flops)
    }
}

/// The tree-based `SpMV` design.
#[derive(Debug, Clone)]
pub struct SpmvDesign {
    params: SpmvParams,
    clock: ClockDomain,
}

impl SpmvDesign {
    /// Instantiate at the tree-design clock (170 MHz).
    pub fn new(params: SpmvParams) -> Self {
        assert!(
            params.k.is_power_of_two(),
            "adder tree needs power-of-two k"
        );
        Self {
            params,
            clock: ClockDomain::from_mhz(170.0),
        }
    }

    /// The parameter set.
    pub fn params(&self) -> &SpmvParams {
        &self.params
    }

    /// The clock domain.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Static channel graph: the CRS entry stream (value + column index
    /// per token, two FLOPs each) feeds the k-lane tree front end with x
    /// gathered from its local store; row partial streams accumulate in
    /// the §4.3 reduction circuit behind a gated backlog, as in the
    /// row-major `MvM` design.
    pub fn topology(&self) -> Topology {
        let p = &self.params;
        let mut t = Topology::new(format!("spmv[k={}]", p.k));
        let entries = t.source("entry-stream");
        let xs = t.junction("x-store");
        let mult = t.pe("mult-bank", p.k as f64);
        let tree = t.pe("adder-tree", (p.k - 1) as f64);
        let reducer = t.pe("reduction", 1.0);
        let y = t.sink("y-port");
        t.edge(
            "entry-feed",
            entries,
            mult,
            EdgeKind::Channel {
                words_per_cycle: p.entries_per_cycle,
                flops_per_word: 2.0,
            },
        );
        t.edge("x-gather", xs, mult, EdgeKind::Wire);
        t.edge("lockstep", mult, tree, EdgeKind::Wire);
        let tree_latency = p.mult_stages + p.k.ilog2() as usize * p.adder_stages;
        fblas_core::topology::attach_gated_backlog(&mut t, tree, reducer, mult, tree_latency);
        fblas_core::topology::attach_reduction_loop(&mut t, reducer, p.adder_stages);
        t.edge(
            "y-write",
            reducer,
            y,
            EdgeKind::Channel {
                words_per_cycle: 1.0,
                flops_per_word: 0.0,
            },
        );
        t
    }

    /// Compute y = A·x with the paper's reduction circuit.
    pub fn run(&self, a: &CsrMatrix, x: &[f64]) -> SpmvOutcome {
        let mut reducer = SingleAdderReducer::new(self.params.adder_stages);
        self.run_full(&mut Harness::new(), a, x, None, &mut reducer)
    }

    /// [`SpmvDesign::run`] through a caller-supplied harness, so the
    /// run's stall attribution and occupancy waveforms land in the
    /// caller's probe.
    pub fn run_in(&self, harness: &mut Harness, a: &CsrMatrix, x: &[f64]) -> SpmvOutcome {
        let mut reducer = SingleAdderReducer::new(self.params.adder_stages);
        self.run_full(harness, a, x, None, &mut reducer)
    }

    /// Compute y = y0 + A·x: the blocked driver injects the previous
    /// panel's partials as one extra value into each row's reduction set.
    pub fn run_with_initial(&self, a: &CsrMatrix, x: &[f64], y0: &[f64]) -> SpmvOutcome {
        let mut reducer = SingleAdderReducer::new(self.params.adder_stages);
        self.run_full(&mut Harness::new(), a, x, Some(y0), &mut reducer)
    }

    /// Run with an explicit reduction circuit (ablation hook).
    pub fn run_with_reducer<R: Reducer>(
        &self,
        a: &CsrMatrix,
        x: &[f64],
        reducer: &mut R,
    ) -> SpmvOutcome {
        self.run_full(&mut Harness::new(), a, x, None, reducer)
    }

    fn run_full<R: Reducer>(
        &self,
        harness: &mut Harness,
        a: &CsrMatrix,
        x: &[f64],
        y0: Option<&[f64]>,
        reducer: &mut R,
    ) -> SpmvOutcome {
        assert_eq!(x.len(), a.n_cols(), "x must match the matrix width");
        if let Some(y0) = y0 {
            assert_eq!(y0.len(), a.n_rows(), "y0 must have one element per row");
        }
        let k = self.params.k;
        let n_rows = a.n_rows();

        // Rows with entries, as (row, its entries chunked into k-groups).
        // With an injected partial, empty rows pass y0 through directly.
        let y = match y0 {
            Some(y0) => y0.to_vec(),
            None => vec![0.0f64; n_rows],
        };
        let dense_rows: Vec<usize> = (0..n_rows).filter(|&i| a.row_nnz(i) > 0).collect();
        let expected = dense_rows.len();

        let mut run = SpmvRun {
            k,
            a,
            x,
            y0,
            y,
            expected,
            n_rows,
            tree: DelayLine::new(
                self.params.mult_stages + k.ilog2() as usize * self.params.adder_stages,
            ),
            backlog: std::collections::VecDeque::new(),
            // Entry stream throttle: entries_per_cycle CRS entries arrive
            // per cycle; a group of up to k same-row entries fires together.
            throttle: Throttle::new(self.params.entries_per_cycle),
            dense_rows,
            next_row: 0,
            current: None,
            row_start: vec![0; n_rows],
            done: 0,
            values_fed: 0,
            reducer,
            limit: (a.nnz() as u64 / k as u64 + n_rows as u64 + 1024) * 16 + 200_000,
            ids: None,
        };
        let report = harness.run(&mut run);
        let buffer_id = run.ids.expect("setup ran").reduction_buffer;

        // Bandwidth accounting. lint: allow(native-f64)
        let bw = self.params.entries_per_cycle * 16.0 * self.clock.hz();
        SpmvOutcome {
            y: run.y,
            report,
            clock: self.clock,
            peak_flops: io_bound_peak_mvm(bw / 2.0),
            reduction_buffer_high_water: harness.probe().high_water(buffer_id),
        }
    }
}

/// Probe components of one `SpMV` run.
#[derive(Debug, Clone, Copy)]
struct SpmvIds {
    front_end: ProbeId,
    entry_stream: ProbeId,
    backlog: ProbeId,
    reducer: ProbeId,
    reduction_buffer: ProbeId,
}

/// (row index, its entries, entries already consumed).
type ActiveRow = (usize, Vec<(usize, f64)>, usize);

/// One in-flight `SpMV` computation as a harness [`Design`].
struct SpmvRun<'a, R: Reducer> {
    k: usize,
    a: &'a CsrMatrix,
    x: &'a [f64],
    y0: Option<&'a [f64]>,
    y: Vec<f64>,
    expected: usize,
    n_rows: usize,
    tree: DelayLine<(u64, f64, bool)>,
    backlog: std::collections::VecDeque<(u64, f64, bool)>,
    throttle: Throttle,
    dense_rows: Vec<usize>,
    next_row: usize,
    current: Option<ActiveRow>,
    /// Run cycle each row's first group entered the tree (latency base).
    row_start: Vec<u64>,
    done: usize,
    values_fed: u64,
    reducer: &'a mut R,
    limit: u64,
    ids: Option<SpmvIds>,
}

impl<R: Reducer> Design for SpmvRun<'_, R> {
    fn name(&self) -> &str {
        "spmv"
    }

    fn setup(&mut self, probe: &mut Probe) {
        self.ids = Some(SpmvIds {
            front_end: probe.component("spmv/front-end"),
            entry_stream: probe.component("spmv/entry-stream"),
            backlog: probe.component("spmv/backlog"),
            reducer: probe.component("spmv/reducer"),
            reduction_buffer: probe.component("spmv/reduction-buffer"),
        });
    }

    fn cycle(&mut self, probe: &mut Probe) {
        let ids = self.ids.expect("setup registered components");
        self.throttle.tick();

        if self.current.is_none() {
            if let Some(&r) = self.dense_rows.get(self.next_row) {
                self.next_row += 1;
                let mut entries: Vec<(usize, f64)> = self.a.row(r).collect();
                if let Some(y0) = self.y0 {
                    // The carried-in partial rides as one extra set
                    // element (a multiply by 1.0 against a constant-1
                    // x extension in hardware). It streams from on-chip
                    // partial storage, so it costs no memory words and
                    // no fresh flops against the 2·nnz total.
                    entries.push((usize::MAX, y0[r]));
                }
                self.current = Some((r, entries, 0));
            }
        }

        let mut tree_in = None;
        if self.backlog.len() < 2 {
            if let Some((r, entries, consumed)) = self.current.as_mut() {
                let want = self.k.min(entries.len() - *consumed);
                if self.throttle.grant(want as u64) {
                    let group = &entries[*consumed..*consumed + want];
                    let real: u64 = group.iter().filter(|&&(c, _)| c != usize::MAX).count() as u64;
                    let mut prods: Vec<f64> = group
                        .iter()
                        .map(|&(c, v)| {
                            if c == usize::MAX {
                                v
                            } else {
                                mul_f64(v, self.x[c])
                            }
                        })
                        .collect();
                    prods.resize(self.k, 0.0);
                    let value = balanced(&prods);
                    if *consumed == 0 {
                        self.row_start[*r] = probe.run_cycle();
                    }
                    *consumed += want;
                    let last = *consumed == entries.len();
                    tree_in = Some((*r as u64, value, last));
                    probe.busy(ids.front_end);
                    // Each stored entry: one multiply plus one
                    // accumulation add (tree + reduction, amortized) and
                    // a value word + packed column-index word.
                    probe.flops(2 * real);
                    probe.io_in(2 * real);
                    self.values_fed += 1;
                    if last {
                        self.current = None;
                    }
                } else {
                    probe.stall(ids.front_end, StallCause::InputStarved);
                }
            } else if self.next_row >= self.dense_rows.len() {
                probe.stall(ids.front_end, StallCause::Drain);
            }
        } else if self.current.is_some() {
            probe.stall(ids.front_end, StallCause::OutputBackpressured);
        }

        if let Some(out) = self.tree.step(tree_in) {
            self.backlog.push_back(out);
        }
        let red_in = if self.reducer.ready() {
            self.backlog
                .pop_front()
                .map(|(set_id, value, last)| ReduceInput {
                    set_id,
                    value,
                    last,
                })
        } else {
            None
        };
        if red_in.is_some() {
            probe.busy(ids.reducer);
        } else if self.current.is_none() && self.next_row >= self.dense_rows.len() {
            probe.stall(ids.reducer, StallCause::Drain);
        } else if !self.backlog.is_empty() {
            probe.stall(ids.reducer, StallCause::OutputBackpressured);
        }
        if let Some(ev) = self.reducer.tick(red_in) {
            self.y[ev.set_id as usize] = ev.value;
            self.done += 1;
            probe.io_out(1);
            // Row completion latency: emission cycle minus the cycle the
            // row's first group entered the tree, inclusive.
            let rc = probe.run_cycle();
            probe.latency(ids.reducer, rc - self.row_start[ev.set_id as usize] + 1);
        }

        probe.sample_depth(ids.backlog, self.backlog.len());
        probe.sample_depth(ids.reduction_buffer, self.reducer.buffered());
        self.throttle.probe_utilization(probe, ids.entry_stream);
    }

    fn drain(&mut self, probe: &mut Probe) {
        // Empty rows bypass the datapath but still write their yᵢ (zero
        // or the carried partial) back to memory.
        probe.io_out((self.n_rows - self.expected) as u64);
    }

    fn done(&self) -> bool {
        self.done >= self.expected
    }

    fn cycle_limit(&self) -> u64 {
        self.limit
    }

    fn progress(&self) -> Option<u64> {
        Some(self.values_fed + self.reducer.adds_issued() + self.done as u64)
    }
}

/// Balanced-tree association of the k lane products.
fn balanced(vals: &[f64]) -> f64 {
    match vals.len() {
        0 => 0.0,
        1 => vals[0],
        n => {
            let mid = n / 2;
            add_f64(balanced(&vals[..mid]), balanced(&vals[mid..]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A banded test matrix with irregular row lengths and integer values.
    fn test_matrix(n: usize) -> CsrMatrix {
        let mut trip = Vec::new();
        for i in 0..n {
            trip.push((i, i, 4.0 + (i % 3) as f64));
            if i + 1 < n && i % 2 == 0 {
                trip.push((i, i + 1, 1.0));
            }
            if i >= 3 && i % 5 == 0 {
                trip.push((i, i - 3, 2.0));
            }
            if i % 7 == 0 {
                for d in 1..(i % 11).min(n - i.min(n)) {
                    if i + d < n {
                        trip.push((i, i + d, (d % 4) as f64));
                    }
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &trip)
    }

    #[test]
    fn matches_reference_on_irregular_matrix() {
        let a = test_matrix(100);
        let x: Vec<f64> = (0..100).map(|j| f64::from((j * 3 + 1) % 8)).collect();
        let d = SpmvDesign::new(SpmvParams::with_k(4));
        let out = d.run(&a, &x);
        assert_eq!(out.y, a.ref_spmv(&x));
    }

    #[test]
    fn empty_rows_produce_zero() {
        let a = CsrMatrix::from_triplets(4, 4, &[(1, 2, 3.0)]);
        let d = SpmvDesign::new(SpmvParams::with_k(2));
        let out = d.run(&a, &[1.0; 4]);
        assert_eq!(out.y, vec![0.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn single_entry_rows() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 1, 3.0), (2, 2, 4.0)]);
        let d = SpmvDesign::new(SpmvParams::with_k(4));
        let out = d.run(&a, &[1.0, 2.0, 3.0]);
        assert_eq!(out.y, vec![2.0, 6.0, 12.0]);
    }

    #[test]
    fn reduction_sets_of_arbitrary_size_never_stall() {
        // The circuit's buffer bound must hold under highly irregular row
        // lengths.
        let a = test_matrix(300);
        let x: Vec<f64> = (0..300).map(|j| f64::from((j * 5 + 2) % 8)).collect();
        let d = SpmvDesign::new(SpmvParams::with_k(4));
        let out = d.run(&a, &x);
        assert_eq!(out.y, a.ref_spmv(&x));
        assert!(out.reduction_buffer_high_water <= 2 * 14 * 14);
    }

    #[test]
    fn cycles_scale_with_nnz_not_n_squared() {
        let a = test_matrix(256);
        let x = vec![1.0; 256];
        let d = SpmvDesign::new(SpmvParams::with_k(4));
        let out = d.run(&a, &x);
        // nnz/k streaming cycles plus per-row pipeline overheads; far
        // below the dense n²/k.
        let dense_cycles = 256u64 * 256 / 4;
        assert!(
            out.report.cycles < dense_cycles / 4,
            "cycles {} should be far below dense {dense_cycles}",
            out.report.cycles
        );
    }

    #[test]
    fn k1_configuration() {
        let a = test_matrix(40);
        let x: Vec<f64> = (0..40).map(|j| f64::from(j % 5)).collect();
        let d = SpmvDesign::new(SpmvParams::with_k(1));
        let out = d.run(&a, &x);
        assert_eq!(out.y, a.ref_spmv(&x));
    }

    #[test]
    fn word_accounting_counts_value_and_index_words() {
        let a = test_matrix(60);
        let x = vec![1.0; 60];
        let d = SpmvDesign::new(SpmvParams::with_k(4));
        let out = d.run(&a, &x);
        assert_eq!(out.report.words_in, 2 * a.nnz() as u64);
        assert_eq!(out.report.words_out, 60);
        assert_eq!(out.report.flops, 2 * a.nnz() as u64);
    }
}
