//! The reduction circuit at work: accumulate many floating-point sets of
//! arbitrary size on ONE pipelined adder without ever stalling the input.
//!
//! ```sh
//! cargo run --release --example reduction_circuit
//! ```

use fpga_blas::blas::reduce::{
    run_sets, NiHwangReducer, Reducer, SingleAdderReducer, StallingReducer,
};

fn main() {
    // A stream of 60 sets with wildly varying sizes (1 .. 173), like the
    // rows of an irregular sparse matrix.
    let sizes: Vec<usize> = (0..60).map(|i| 1 + (i * i * 7 + 13) % 173).collect();
    let sets: Vec<Vec<f64>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| (0..s).map(|j| ((i + j * 3) % 32) as f64).collect())
        .collect();
    let total: u64 = sizes.iter().map(|&s| s as u64).sum();
    let alpha = 14;

    println!(
        "Workload: {} sets, {} values, sizes {}..{}",
        sets.len(),
        total,
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap()
    );
    println!("Adder pipeline depth α = {alpha}\n");

    let mut proposed = SingleAdderReducer::new(alpha);
    let run = run_sets(&mut proposed, &sets);
    println!("Proposed single-adder circuit (§4.3):");
    println!(
        "  total cycles : {} (bound Σsᵢ + 2α² = {})",
        run.total_cycles,
        total + 392
    );
    println!(
        "  input stalls : {} — the headline property",
        run.stall_cycles
    );
    println!(
        "  buffer peak  : {} words of the 2α² = {} budget",
        run.buffer_high_water,
        2 * alpha * alpha
    );
    println!("  adders used  : {}\n", proposed.adders());

    let mut ni = NiHwangReducer::new(alpha);
    let ni_run = run_sets(&mut ni, &sets);
    println!("Ni–Hwang single-adder method [21] (stalls between sets):");
    println!("  total cycles : {}", ni_run.total_cycles);
    println!("  input stalls : {}\n", ni_run.stall_cycles);

    let mut stalling = StallingReducer::new(alpha);
    let st_run = run_sets(&mut stalling, &sets);
    println!("Naive stalling accumulator:");
    println!("  total cycles : {} (~α per input)", st_run.total_cycles);
    println!("  input stalls : {}\n", st_run.stall_cycles);

    // Every circuit computes the same exact sums (integer values sum
    // exactly under any association).
    let reference: Vec<f64> = sets.iter().map(|s| s.iter().sum()).collect();
    for r in [&run, &ni_run, &st_run] {
        for ev in &r.results {
            assert_eq!(ev.value, reference[ev.set_id as usize]);
        }
    }
    println!(
        "All circuits agree with the reference sums; the proposed circuit is {:.1}× \
         faster than the stalling baseline and {:.1}× faster than Ni–Hwang, using one adder.",
        st_run.total_cycles as f64 / run.total_cycles as f64,
        ni_run.total_cycles as f64 / run.total_cycles as f64,
    );
}
