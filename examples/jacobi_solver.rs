//! Solve a sparse linear system with the Jacobi iterative solver running
//! on the simulated FPGA `SpMV` design (the paper's §7 extension).
//!
//! ```sh
//! cargo run --release --example jacobi_solver
//! ```

use fpga_blas::sim::clock::fmt;
use fpga_blas::sparse::{CsrMatrix, JacobiSolver, SpmvParams};

fn main() {
    // A 2-D five-point Laplacian-like system on a 20×20 grid (n = 400),
    // made strictly diagonally dominant so Jacobi converges.
    let grid = 20usize;
    let n = grid * grid;
    let mut trip = Vec::new();
    for r in 0..grid {
        for c in 0..grid {
            let i = r * grid + c;
            trip.push((i, i, 4.5));
            if r > 0 {
                trip.push((i, i - grid, -1.0));
            }
            if r + 1 < grid {
                trip.push((i, i + grid, -1.0));
            }
            if c > 0 {
                trip.push((i, i - 1, -1.0));
            }
            if c + 1 < grid {
                trip.push((i, i + 1, -1.0));
            }
        }
    }
    let a = CsrMatrix::from_triplets(n, n, &trip);
    assert!(a.is_strictly_diagonally_dominant());

    // Manufactured solution → right-hand side.
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) / 3.0).collect();
    let b = a.ref_spmv(&x_true);

    println!(
        "System: {n}×{n} five-point stencil, {} non-zeros ({:.2}% dense)",
        a.nnz(),
        a.nnz() as f64 / (n * n) as f64 * 100.0
    );

    let solver = JacobiSolver::new(SpmvParams::with_k(4), 1e-9, 1000);
    let out = solver.solve(&a, &b);

    let max_err = out
        .x
        .iter()
        .zip(&x_true)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);

    println!("Jacobi on the k = 4 FPGA SpMV design:");
    println!(
        "  converged      : {} in {} iterations",
        out.converged, out.iterations
    );
    println!("  residual ∞-norm: {:.2e}", out.residual);
    println!("  max error      : {max_err:.2e}");
    println!(
        "  hardware cost  : {} cycles = {} at {:.0} MHz ({} flops → {})",
        out.report.cycles,
        fmt::millis(out.report.latency_seconds(&out.clock)),
        out.clock.mhz(),
        out.report.flops,
        fmt::flops(out.report.sustained_flops(&out.clock)),
    );
    assert!(out.converged && max_err < 1e-7);
}
