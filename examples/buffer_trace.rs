//! Visualize the reduction circuit's buffer occupancy cycle by cycle, as
//! an ASCII trace: the paper's 2α² bound in action.
//!
//! ```sh
//! cargo run --release --example buffer_trace
//! ```

use fpga_blas::blas::reduce::{ReduceInput, Reducer, SingleAdderReducer};

const ALPHA: usize = 14;
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(series: &[usize], max: usize) -> String {
    series
        .iter()
        .map(|&v| {
            if max == 0 {
                SPARK[0]
            } else {
                SPARK[(v * (SPARK.len() - 1)).div_ceil(max).min(SPARK.len() - 1)]
            }
        })
        .collect()
}

fn trace(title: &str, sizes: &[usize]) {
    let sets: Vec<Vec<f64>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| (0..s).map(|j| ((i + j) % 8) as f64).collect())
        .collect();
    let mut inputs: Vec<ReduceInput> = sets
        .iter()
        .enumerate()
        .flat_map(|(id, s)| {
            let n = s.len();
            s.iter()
                .enumerate()
                .map(move |(j, &value)| ReduceInput {
                    set_id: id as u64,
                    value,
                    last: j + 1 == n,
                })
                .collect::<Vec<_>>()
        })
        .collect();
    inputs.reverse();

    let mut r = SingleAdderReducer::new(ALPHA);
    let mut series = Vec::new();
    let mut done = 0;
    while done < sets.len() {
        if r.tick(inputs.pop()).is_some() {
            done += 1;
        }
        series.push(r.buffered_words());
    }

    // Downsample to an 80-column terminal line.
    let bucket = series.len().div_ceil(80).max(1);
    let sampled: Vec<usize> = series
        .chunks(bucket)
        .map(|c| *c.iter().max().expect("non-empty chunk"))
        .collect();
    let peak = *series.iter().max().expect("non-empty series");

    println!("\n{title}");
    println!(
        "  {} cycles, peak occupancy {peak} of the 2α² = {} budget",
        series.len(),
        2 * ALPHA * ALPHA
    );
    println!("  {}", sparkline(&sampled, peak.max(1)));
}

fn main() {
    println!("Reduction-circuit buffer occupancy (α = {ALPHA}, one char ≈ many cycles)");

    trace(
        "Workload A: 32 uniform sets of 64 (matrix-vector rows)",
        &vec![64; 32],
    );
    trace(
        "Workload B: alternating tiny and large sets (1, 173, 1, 173, …)",
        &(0..24)
            .map(|i| if i % 2 == 0 { 1 } else { 173 })
            .collect::<Vec<_>>(),
    );
    trace(
        "Workload C: geometric sizes 1,2,4,…,256 then back down",
        &(0..9)
            .map(|i| 1usize << i)
            .chain((0..9).rev().map(|i| 1usize << i))
            .collect::<Vec<_>>(),
    );
    println!(
        "\nThe buffer breathes with set boundaries but never approaches the 2α² = {} \
         provisioning the paper proves sufficient.",
        2 * ALPHA * ALPHA
    );
}
