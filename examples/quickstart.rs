//! Quickstart: run all three BLAS operations on a simulated Cray XD1 node.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fpga_blas::blas::dot::{DotParams, DotProductDesign};
use fpga_blas::blas::mm::{HierarchicalMm, HierarchicalParams};
use fpga_blas::blas::mvm::{DenseMatrix, MvmParams, RowMajorMvm};
use fpga_blas::sim::clock::fmt;
use fpga_blas::system::xd1::Xd1Node;

fn main() {
    let node = Xd1Node::default();
    println!(
        "Simulated platform: {} on a Cray XD1 compute blade",
        node.device.name
    );
    println!(
        "  SRAM: {} banks, {} MB total; DRAM path: {}\n",
        node.sram_banks,
        node.mem.b.capacity_bytes >> 20,
        fmt::bandwidth(node.dram.bandwidth_bytes_per_s),
    );

    // ---- Level 1: dot product (§4.1) ----
    let n = 4096;
    let u: Vec<f64> = (0..n).map(|i| f64::from(i % 16)).collect();
    let v: Vec<f64> = (0..n).map(|i| f64::from((i * 3) % 16)).collect();
    let dot = DotProductDesign::new(DotParams::table3(), &node);
    let d = dot.run(&u, &v);
    let dref: f64 = u.iter().zip(&v).map(|(a, b)| a * b).sum();
    assert_eq!(d.result, dref);
    println!("Level 1  dot product, n = {n}, k = {}:", dot.params().k);
    println!(
        "  {} cycles → {} ({:.0}% of the I/O-bound peak)",
        d.report.cycles,
        fmt::flops(d.report.sustained_flops(&d.clock)),
        d.fraction_of_peak() * 100.0
    );

    // ---- Level 2: matrix-vector multiply (§4.2) ----
    let n = 1024;
    let a = DenseMatrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 8) as f64);
    let x: Vec<f64> = (0..n).map(|j| ((j * 7) % 8) as f64).collect();
    let mvm = RowMajorMvm::new(MvmParams::table3(), &node);
    let m = mvm.run(&a, &x);
    assert_eq!(m.y, a.ref_mvm(&x));
    println!("\nLevel 2  matrix-vector multiply, n = {n}, k = 4 (row-major tree):");
    println!(
        "  {} cycles → {} ({:.0}% of the 2·bw peak)",
        m.report.cycles,
        fmt::flops(m.report.sustained_flops(&m.clock)),
        m.fraction_of_peak() * 100.0
    );

    // ---- Level 3: matrix multiply (§5) ----
    let n = 128;
    let a = DenseMatrix::from_fn(n, n, |i, j| ((i + 2 * j) % 4) as f64);
    let b = DenseMatrix::from_fn(n, n, |i, j| ((3 * i + j) % 4) as f64);
    let mm = HierarchicalMm::new(HierarchicalParams {
        mm: fpga_blas::blas::mm::MmParams::table4(),
        l: 1,
        b: 128,
    });
    let c = mm.run(&a, &b);
    let expect = fpga_blas::sw::gemm_blocked(a.as_slice(), b.as_slice(), n, 32);
    assert_eq!(c.c.as_slice(), &expect[..]);
    println!("\nLevel 3  matrix multiply, n = {n}, k = m = 8, linear PE array:");
    println!(
        "  {} cycles → {:.2} GFLOPS sustained at {:.0} MHz",
        c.report.cycles,
        c.sustained_gflops(),
        c.clock.mhz()
    );

    println!("\nAll three results verified exactly against software references.");
}
