//! Scale the matrix multiplier from one FPGA to a full XD1 installation
//! (§5.2 / §6.4): the linear array grows, the SRAM blocking absorbs the
//! bandwidth, and sustained performance scales with l.
//!
//! ```sh
//! cargo run --release --example chassis_scaling
//! ```

use fpga_blas::blas::mm::{ref_matmul, HierarchicalMm, HierarchicalParams, MmParams};
use fpga_blas::blas::mvm::DenseMatrix;
use fpga_blas::system::projection::scaled_sustained_gflops;
use fpga_blas::system::{Xd1Chassis, Xd1Node, Xd1System};

fn main() {
    let node = Xd1Node::default();
    let chassis = Xd1Chassis::default();
    let system = Xd1System::default();

    // Functional scaling demo at a simulation-friendly size: the same
    // multiply on 1, 2 and 6 FPGAs.
    let n = 192usize;
    let a = DenseMatrix::from_fn(n, n, |i, j| ((i * 5 + j) % 4) as f64);
    let b = DenseMatrix::from_fn(n, n, |i, j| ((i + j * 7) % 4) as f64);
    let expect = ref_matmul(&a, &b);

    println!("Functional scaling, n = {n}, k = m = 8, b = 96:");
    let mut baseline = 0u64;
    for l in [1usize, 2, 6] {
        let mm = HierarchicalMm::new(HierarchicalParams {
            mm: MmParams::table4(),
            l,
            b: 96,
        });
        let out = mm.run(&a, &b);
        assert_eq!(out.c.as_slice(), expect.as_slice());
        if l == 1 {
            baseline = out.report.cycles;
        }
        println!(
            "  l = {l}: {:>9} cycles ({:.2}× vs one FPGA), fill penalty {} cycles, \
             SRAM {:>7} words/FPGA",
            out.report.cycles,
            baseline as f64 / out.report.cycles as f64,
            out.fill_penalty_cycles,
            out.sram_words_per_fpga,
        );
    }

    // Platform-level predictions at the paper's operating point.
    println!("\nXD1 predictions at the Table-4 operating point (2.06 GFLOPS per FPGA):");
    for (name, l, b) in [
        ("one compute blade", 1usize, 512usize),
        ("one chassis (6 FPGAs)", chassis.n_fpgas, 2048),
        ("12-chassis installation", system.total_fpgas(), 2048),
    ] {
        let mm = HierarchicalMm::new(HierarchicalParams {
            mm: MmParams::table4(),
            l,
            b,
        });
        let fits = mm.check_platform(&node, &chassis).is_ok();
        println!(
            "  {name:<24}: {:6.1} GFLOPS sustained, bandwidth check: {}",
            scaled_sustained_gflops(2.06, l),
            if fits { "met by XD1" } else { "EXCEEDED" }
        );
    }
    println!("\nPaper predictions: 2.06 → 12.4 → 148.3 GFLOPS.");
}
