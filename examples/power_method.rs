//! Dominant-eigenvalue estimation with the power method — "eigenvalue
//! problems" are one of the §1 applications the BLAS building blocks
//! exist for. Each iteration runs one matrix-vector multiply, one nrm2
//! and one scal on the simulated FPGA designs.
//!
//! ```sh
//! cargo run --release --example power_method
//! ```

use fpga_blas::blas::level1::{nrm2, nrm2_design, Level1Params, ScalDesign};
use fpga_blas::blas::mvm::{DenseMatrix, MvmParams, RowMajorMvm};
use fpga_blas::sim::clock::fmt;

fn main() {
    // A symmetric matrix with a well-separated dominant eigenvalue:
    // diag(10, 5, 5, …) plus a mild symmetric perturbation.
    let n = 128usize;
    let a = DenseMatrix::from_fn(n, n, |i, j| {
        let base = if i == j {
            if i == 0 {
                10.0
            } else {
                5.0 - (i as f64) / (n as f64)
            }
        } else {
            0.0
        };
        base + if i.abs_diff(j) == 1 { 0.1 } else { 0.0 }
    });

    let mvm = RowMajorMvm::standalone(MvmParams::table3(), 170.0);
    let dot = nrm2_design(2);
    let scal = ScalDesign::new(Level1Params::with_k(4));

    let mut v = vec![1.0f64; n];
    let mut lambda = 0.0f64;
    let mut fpga_cycles = 0u64;
    let mut iterations = 0usize;

    loop {
        // FPGA: w = A·v.
        let w = {
            let out = mvm.run(&a, &v);
            fpga_cycles += out.report.cycles;
            out.y
        };
        // FPGA: ‖w‖₂ (dot + host sqrt).
        let (norm, dout) = nrm2(&dot, &w);
        fpga_cycles += dout.report.cycles;
        // FPGA: v = w / ‖w‖ via scal.
        let sout = scal.run(1.0 / norm, &w);
        fpga_cycles += sout.report.cycles;
        let v_next = sout.result;

        let lambda_next = norm; // Rayleigh-ish estimate for normalized v
        iterations += 1;
        let converged = (lambda_next - lambda).abs() < 1e-12 * lambda_next.abs();
        lambda = lambda_next;
        v = v_next;
        if converged || iterations >= 500 {
            break;
        }
    }

    // Verify against the residual ‖A·v − λ·v‖.
    let av = a.ref_mvm(&v);
    let resid = av
        .iter()
        .zip(&v)
        .map(|(avi, vi)| (avi - lambda * vi).abs())
        .fold(0.0f64, f64::max);

    let clock = mvm.clock();
    println!("Power method on the FPGA BLAS (n = {n}):");
    println!("  dominant eigenvalue λ ≈ {lambda:.9}");
    println!("  iterations          : {iterations}");
    println!("  residual ‖Av − λv‖∞ : {resid:.2e}");
    println!(
        "  FPGA work           : {fpga_cycles} cycles = {} at {:.0} MHz",
        fmt::millis(clock.cycles_to_seconds(fpga_cycles)),
        clock.mhz()
    );
    assert!(resid < 1e-6, "power method failed to converge");
}
