//! Conjugate gradient built from the FPGA BLAS kernels — the paper's
//! motivating use case ("building blocks for ... the solution of linear
//! systems of equations") and its future-work direction of splitting work
//! between the FPGA and the host processor.
//!
//! Per iteration the FPGA designs execute one matrix-vector multiply and
//! two dot products; the O(n) vector updates run on the host processor,
//! as the XD1 programming model intends. The example accumulates the
//! simulated hardware cycles across the whole solve.
//!
//! ```sh
//! cargo run --release --example conjugate_gradient
//! ```

use fpga_blas::blas::dot::{DotParams, DotProductDesign};
use fpga_blas::blas::mvm::{DenseMatrix, MvmParams, RowMajorMvm};
use fpga_blas::sim::clock::fmt;

fn main() {
    // A symmetric positive-definite system: diagonally dominant tridiagonal.
    let n = 256usize;
    let a = DenseMatrix::from_fn(n, n, |i, j| {
        if i == j {
            4.0
        } else if i.abs_diff(j) == 1 {
            -1.0
        } else {
            0.0
        }
    });
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 9) as f64 - 4.0) / 2.0).collect();
    let b = a.ref_mvm(&x_true);

    let mvm = RowMajorMvm::standalone(MvmParams::table3(), 170.0);
    let dot = DotProductDesign::standalone(DotParams::table3(), 170.0);

    let mut x = vec![0.0f64; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut fpga_cycles = 0u64;
    let mut fpga_flops = 0u64;

    let mut rr = {
        let out = dot.run(&r, &r);
        fpga_cycles += out.report.cycles;
        fpga_flops += out.report.flops;
        out.result
    };
    let tol = 1e-12;
    let mut iterations = 0;

    while rr.sqrt() > tol && iterations < 2 * n {
        // FPGA: q = A·p.
        let q = {
            let out = mvm.run(&a, &p);
            fpga_cycles += out.report.cycles;
            fpga_flops += out.report.flops;
            out.y
        };
        // FPGA: p·q.
        let pq = {
            let out = dot.run(&p, &q);
            fpga_cycles += out.report.cycles;
            fpga_flops += out.report.flops;
            out.result
        };
        // Host: vector updates.
        let alpha = rr / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        // FPGA: r·r for the new residual.
        let rr_new = {
            let out = dot.run(&r, &r);
            fpga_cycles += out.report.cycles;
            fpga_flops += out.report.flops;
            out.result
        };
        let beta = rr_new / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
        iterations += 1;
    }

    let max_err = x
        .iter()
        .zip(&x_true)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    let clock = mvm.clock();

    println!("Conjugate gradient on the FPGA BLAS (n = {n}):");
    println!("  iterations     : {iterations}");
    println!("  residual ‖r‖   : {:.2e}", rr.sqrt());
    println!("  max error      : {max_err:.2e}");
    println!(
        "  FPGA work      : {fpga_flops} flops in {fpga_cycles} cycles = {} at {:.0} MHz → {}",
        fmt::millis(clock.cycles_to_seconds(fpga_cycles)),
        clock.mhz(),
        fmt::flops(clock.flops(fpga_flops, fpga_cycles)),
    );
    assert!(max_err < 1e-8, "CG failed to converge: {max_err}");
}
